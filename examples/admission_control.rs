//! Admission control: the paper's motivating application. A front-end
//! controller uses the capacity meter's online overload predictions to
//! regulate how many client sessions are admitted, and we compare response
//! times and throughput with and without control under a flash crowd.
//!
//! ```sh
//! cargo run --release --example admission_control
//! ```

use webcap::core::admission::{run_admission_experiment, AdmissionConfig};
use webcap::core::{CapacityMeter, MeterConfig};
use webcap::ml::FitError;
use webcap::tpcw::Mix;

fn main() -> Result<(), FitError> {
    println!("training the capacity meter...");
    let config = MeterConfig::small_for_tests(3);
    let mut meter = CapacityMeter::train(&config)?;

    // A flash crowd: 60% more sessions than the ordering-mix capacity.
    let mix = Mix::ordering();
    let offered = webcap::core::workloads::estimate_saturation_ebs(&config.sim, &mix) * 16 / 10;
    let cfg = AdmissionConfig::default();
    let segments = 14;

    println!("\nflash crowd of {offered} sessions against the ordering-mix capacity\n");

    println!("-- without admission control --");
    let uncontrolled =
        run_admission_experiment(&mut meter, cfg, &mix, offered, segments, false, 900);
    print_trace(&uncontrolled);

    println!("\n-- with AIMD admission control driven by the meter --");
    let controlled = run_admission_experiment(&mut meter, cfg, &mix, offered, segments, true, 900);
    print_trace(&controlled);

    println!("\n-- comparison --");
    println!(
        "mean response time : {:.2}s uncontrolled vs {:.2}s controlled",
        uncontrolled.mean_response_time_s(),
        controlled.mean_response_time_s()
    );
    println!(
        "mean throughput    : {:.1} req/s uncontrolled vs {:.1} req/s controlled",
        uncontrolled.mean_throughput(),
        controlled.mean_throughput()
    );
    println!(
        "overloaded segments: {:.0}% uncontrolled vs {:.0}% controlled",
        uncontrolled.overload_fraction() * 100.0,
        controlled.overload_fraction() * 100.0
    );
    Ok(())
}

fn print_trace(outcome: &webcap::core::admission::AdmissionOutcome) {
    println!(
        "{:<6} {:>9} {:>11} {:>10} {:>9} {:>9}",
        "seg", "admitted", "predicted", "actual", "thr", "mean rt"
    );
    for s in &outcome.segments {
        println!(
            "{:<6} {:>9} {:>11} {:>10} {:>9.1} {:>8.2}s",
            s.segment,
            s.admitted_ebs,
            if s.predicted_overload {
                "OVERLOAD"
            } else {
                "ok"
            },
            if s.actual_overload { "OVERLOAD" } else { "ok" },
            s.throughput,
            s.mean_response_time_s
        );
    }
}
