//! Counter explorer: watch the PerfCtr-style counter file and the sysstat
//! metrics of the DB tier side by side while the load crosses the knee —
//! the raw-data view behind everything else in this repository.
//!
//! ```sh
//! cargo run --release --example counter_explorer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use webcap::core::workloads;
use webcap::hpc::{counter_delta, CounterReader, DerivedMetrics, HpcEvent, HpcModel};
use webcap::os::OsCollector;
use webcap::sim::{SimConfig, Simulation, TierId};
use webcap::tpcw::{Mix, TrafficProgram};

fn main() {
    let cfg = SimConfig::testbed(23);
    let mix = Mix::browsing();
    let knee = workloads::estimate_saturation_ebs(&cfg, &mix);
    let program = TrafficProgram::ramp(mix, knee / 2, knee * 3 / 2, 300.0);
    println!(
        "ramping browsing mix {}→{} EBs over 300s (knee ≈ {knee})\n",
        knee / 2,
        knee * 3 / 2
    );
    let samples = Simulation::new(cfg, program).run().samples;

    let mut reader = CounterReader::open(HpcModel::testbed(), TierId::Db);
    let mut os = OsCollector::new(TierId::Db);
    let mut rng = StdRng::seed_from_u64(5);

    println!(
        "{:>5} {:>16} {:>16} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "t",
        "instr (raw reg)",
        "cycles (raw reg)",
        "ipc",
        "l2miss",
        "stall",
        "runq",
        "%user",
        "iowait"
    );
    let mut prev = reader.read();
    for (i, s) in samples.iter().enumerate() {
        let ts = s.tier(TierId::Db);
        reader.advance(ts, s.interval_s, &mut rng);
        let os_sample = os.sample(ts, s.interval_s, &mut rng);
        if (i + 1) % 30 != 0 {
            prev = reader.read();
            continue;
        }
        let cur = reader.read();
        let instr = counter_delta(
            prev[HpcEvent::InstructionsRetired.index()],
            cur[HpcEvent::InstructionsRetired.index()],
        );
        let derived = DerivedMetrics::from_sample(reader.last_interval().expect("advanced"));
        println!(
            "{:>5.0} {:>16} {:>16} {:>7.3} {:>7.4} {:>7.3} | {:>7.0} {:>7.1} {:>7.1}",
            s.t_s,
            cur[HpcEvent::InstructionsRetired.index()],
            cur[HpcEvent::CyclesUnhalted.index()],
            derived.ipc,
            derived.l2_miss_rate,
            derived.stall_fraction,
            os_sample.value("runq_sz"),
            os_sample.value("pct_user"),
            os_sample.value("pct_iowait"),
        );
        let _ = instr;
        prev = cur;
    }
    println!("\nnote how the hardware ratios (ipc, l2miss, stall) keep moving past the");
    println!("knee while %user pegs at ~100 and runq wanders — Table I's level gap.");
}
