//! Bottleneck dashboard: run an interleaved workload whose bottleneck
//! keeps shifting between the application and database tiers, and print a
//! live-style dashboard of the meter's online state and bottleneck calls
//! next to the ground truth.
//!
//! ```sh
//! cargo run --release --example bottleneck_dashboard
//! ```

use webcap::core::monitor::collect_run;
use webcap::core::workloads;
use webcap::core::{CapacityMeter, MeterConfig};
use webcap::ml::FitError;
use webcap::sim::TierId;

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn main() -> Result<(), FitError> {
    println!("training the capacity meter...");
    let config = MeterConfig::small_for_tests(5);
    let mut meter = CapacityMeter::train(&config)?;

    // An interleaved browsing/ordering program: the bottleneck shifts
    // between DB and APP as the mix changes.
    let program = workloads::interleaved_test(&config.sim, config.duration_scale);
    let mut sim = config.sim.clone();
    sim.seed = 31_337;
    let log = collect_run(&sim, &program, &config.hpc_model, 99);
    let instances = log.windows(config.window_len, config.window_len, &config.oracle);

    println!(
        "\ninterleaved workload: {:.0}s simulated, {} windows\n",
        program.duration_s(),
        instances.len()
    );
    println!(
        "{:<7} {:<10} {:<14} {:<14} {:<11} {:<11} {:<9}",
        "t(s)", "mix", "app util", "db util", "meter", "bottleneck", "truth"
    );
    meter.reset_history();
    let mut state_correct = 0;
    let mut bneck_correct = 0;
    let mut bneck_total = 0;
    for w in &instances {
        let out = meter.predict(w);
        let range =
            ((w.t_start_s as usize)..(w.t_end_s as usize).min(log.samples.len())).step_by(1);
        let (mut app_u, mut db_u, mut n) = (0.0f64, 0.0f64, 0.0f64);
        for i in range {
            app_u += log.samples[i].tier(TierId::App).utilization;
            db_u += log.samples[i].tier(TierId::Db).utilization;
            n += 1.0;
        }
        app_u /= n.max(1.0);
        db_u /= n.max(1.0);
        let truth = if w.overloaded() {
            format!("OVER/{}", w.label.bottleneck)
        } else {
            "ok".to_string()
        };
        if out.overloaded == w.overloaded() {
            state_correct += 1;
        }
        if w.overloaded() && out.overloaded {
            bneck_total += 1;
            if out.bottleneck == Some(w.label.bottleneck) {
                bneck_correct += 1;
            }
        }
        println!(
            "{:<7.0} {:<10} [{}] [{}] {:<11} {:<11} {:<9}",
            w.t_end_s,
            format!("{:?}", w.mix),
            bar(app_u, 10),
            bar(db_u, 10),
            if out.overloaded { "OVERLOAD" } else { "ok" },
            out.bottleneck.map_or("-".to_string(), |t| t.to_string()),
            truth
        );
    }
    println!(
        "\nstate accuracy: {}/{}   bottleneck accuracy: {}/{}",
        state_correct,
        instances.len(),
        bneck_correct,
        bneck_total
    );
    Ok(())
}
