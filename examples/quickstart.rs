//! Quickstart: train a capacity meter on the simulated two-tier bookstore
//! and watch it classify an unseen traffic ramp online.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use webcap::core::{CapacityMeter, MeterConfig};
use webcap::ml::FitError;
use webcap::tpcw::Mix;

fn main() -> Result<(), FitError> {
    // A reduced configuration keeps this example under a minute; drop the
    // `small_for_tests` for the paper-scale setup.
    println!("training the capacity meter (2 workloads x ~6 min simulated time)...");
    let config = MeterConfig::small_for_tests(7);
    let mut meter = CapacityMeter::train(&config)?;

    println!("\ntrained synopses:");
    for synopsis in meter.synopses() {
        println!(
            "  {:<28} cv-BA {:.3}  attributes: {}",
            synopsis.spec().to_string(),
            synopsis.cv_balanced_accuracy(),
            synopsis.selected_names().join(", ")
        );
    }

    // Evaluate online on a knee-crossing ordering-mix ramp the meter has
    // never seen (fresh simulation seed).
    println!("\nonline evaluation on an unseen ordering-mix ramp:");
    let report = meter.evaluate_mix(Mix::ordering(), 4242);
    println!(
        "  {:<8} {:<10} {:<10} {:<12} {:<10}",
        "t(s)", "actual", "predicted", "bottleneck", "confident"
    );
    for r in &report.results {
        println!(
            "  {:<8.0} {:<10} {:<10} {:<12} {:<10}",
            r.t_end_s,
            if r.actual { "OVERLOAD" } else { "ok" },
            if r.predicted { "OVERLOAD" } else { "ok" },
            r.predicted_bottleneck
                .map_or("-".to_string(), |t| t.to_string()),
            r.confident
        );
    }
    println!(
        "\nbalanced accuracy: {:.3}   bottleneck accuracy: {}",
        report.balanced_accuracy(),
        report
            .bottleneck_accuracy()
            .map_or("n/a".to_string(), |a| format!("{a:.3}"))
    );
    Ok(())
}
