//! Capacity planning: stress-test the simulated testbed under each TPC-W
//! mix, find the saturation knee, and report per-mix capacity with the
//! productivity-index evidence — the offline usage of the paper's
//! machinery.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use webcap::core::monitor::collect_run;
use webcap::core::oracle::{label_window, OracleConfig};
use webcap::core::pi::select_pi;
use webcap::core::workloads;
use webcap::hpc::{DerivedMetrics, HpcModel};
use webcap::sim::{SimConfig, TierId};
use webcap::tpcw::{Mix, TrafficProgram};

struct MixPlan {
    name: &'static str,
    mix: Mix,
}

fn main() {
    let cfg = SimConfig::testbed(11);
    let oracle = OracleConfig::default();
    let plans = [
        MixPlan {
            name: "Browsing (95/5)",
            mix: Mix::browsing(),
        },
        MixPlan {
            name: "Shopping (80/20)",
            mix: Mix::shopping(),
        },
        MixPlan {
            name: "Ordering (50/50)",
            mix: Mix::ordering(),
        },
    ];

    println!("capacity plan for the default two-tier testbed\n");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>10} {:>14}",
        "mix", "est req/s", "knee EBs", "meas. knee", "peak thr", "PI at knee"
    );

    for plan in &plans {
        let est_rps = workloads::estimate_capacity_rps(&cfg, &plan.mix);
        let est_knee = workloads::estimate_saturation_ebs(&cfg, &plan.mix);

        // Stress test: ramp from 30% to 170% of the estimated knee and
        // find the first overloaded window.
        let program = TrafficProgram::ramp(
            plan.mix.clone(),
            est_knee * 3 / 10,
            est_knee * 17 / 10,
            420.0,
        );
        let log = collect_run(&cfg, &program, &HpcModel::testbed(), 77);
        let mut measured_knee_ebs = None;
        let mut peak_thr: f64 = 0.0;
        for start in (0..log.samples.len().saturating_sub(30)).step_by(30) {
            let slice = &log.samples[start..start + 30];
            let label = label_window(slice, &oracle);
            let thr = slice.iter().map(|s| s.completed).sum::<u64>() as f64 / 30.0;
            peak_thr = peak_thr.max(thr);
            if label.overloaded && measured_knee_ebs.is_none() {
                measured_knee_ebs = Some(slice[0].ebs_target);
            }
        }

        // PI evidence on the bottleneck tier.
        let tier = if plan.mix.browse_fraction() > 0.7 {
            TierId::Db
        } else {
            TierId::App
        };
        let window = 30;
        let thr_series: Vec<f64> = log
            .throughput_series()
            .chunks(window)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let metrics: Vec<DerivedMetrics> = log.hpc[tier.index()]
            .chunks(window)
            .map(DerivedMetrics::mean)
            .collect();
        let pi_sel = select_pi(&metrics, &thr_series);

        println!(
            "{:<18} {:>10.1} {:>10} {:>12} {:>10.1} {:>14}",
            plan.name,
            est_rps,
            est_knee,
            measured_knee_ebs.map_or("none".to_string(), |e| e.to_string()),
            peak_thr,
            format!("{}", pi_sel.definition),
        );
    }

    println!("\nnotes:");
    println!("  - 'est req/s' is the analytic bottleneck service rate for the mix;");
    println!("  - 'meas. knee' is the EB population of the first overloaded 30s window;");
    println!("  - 'PI at knee' is the yield/cost pair selected by Corr (Eq. 2).");
}
