//! # webcap
//!
//! Online measurement of the capacity of multi-tier websites using hardware
//! performance counters — a full reproduction of Rao & Xu, ICDCS 2008.
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`tpcw`] — TPC-W workload model and traffic programs.
//! * [`sim`] — discrete-event simulator of a two-tier (app + DB) website.
//! * [`hpc`] — hardware-performance-counter synthesis for simulated tiers.
//! * [`os`] — sysstat-like OS-level metric synthesis.
//! * [`ml`] — from-scratch learners (LR, naive Bayes, TAN, SVM) and
//!   model-selection utilities.
//! * [`core`] — the paper's contribution: productivity index, performance
//!   synopses, and the two-level coordinated predictor.
//! * [`net`] — the distributed telemetry plane: per-tier agents, the
//!   framed wire protocol, and the fault-tolerant collector feeding the
//!   online meter.
//!
//! # Quick start
//!
//! ```no_run
//! use webcap::core::{CapacityMeter, MeterConfig};
//! use webcap::tpcw::Mix;
//!
//! # fn main() -> Result<(), webcap::ml::FitError> {
//! // Train a capacity meter on a small simulated testbed and classify the
//! // system state of a held-out run online.
//! let config = MeterConfig::small_for_tests(7);
//! let mut meter = CapacityMeter::train(&config)?;
//! let report = meter.evaluate_mix(Mix::ordering(), 42);
//! assert!(report.balanced_accuracy() > 0.5);
//! # Ok(())
//! # }
//! ```

pub use webcap_core as core;
pub use webcap_hpc as hpc;
pub use webcap_ml as ml;
pub use webcap_net as net;
pub use webcap_os as os;
pub use webcap_sim as sim;
pub use webcap_tpcw as tpcw;
