//! Property-based tests of the ML crate's numerical and protocol
//! invariants.

use proptest::prelude::*;
use webcap_ml::cv::{cross_validate, cross_validate_par, fold_assignment};
use webcap_ml::data::{Dataset, Scaler};
use webcap_ml::linalg::Matrix;
use webcap_ml::select::{forward_select, forward_select_par, SelectionOptions};
use webcap_ml::{Algorithm, Learner, Model, Parallelism};

fn dataset_from(rows: &[(Vec<f64>, bool)]) -> Dataset {
    let width = rows[0].0.len();
    let names = (0..width).map(|i| format!("f{i}")).collect();
    let mut data = Dataset::new(names);
    for (features, label) in rows {
        data.push(features.clone(), *label);
    }
    data
}

/// Strategy: a dataset with both classes present and fixed width.
fn two_class_rows(width: usize) -> impl Strategy<Value = Vec<(Vec<f64>, bool)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-100.0f64..100.0, width..=width),
            any::<bool>(),
        ),
        8..60,
    )
    .prop_filter("both classes", |rows| {
        rows.iter().any(|r| r.1) && rows.iter().any(|r| !r.1)
    })
}

proptest! {
    /// Solving a random well-conditioned system reproduces the known
    /// solution: build A·x for a random diagonally dominant A and x.
    #[test]
    fn linear_solver_recovers_known_solution(
        x in prop::collection::vec(-10.0f64..10.0, 1..6),
        noise in prop::collection::vec(-0.5f64..0.5, 36),
    ) {
        let n = x.len();
        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                rows[i][j] = if i == j { 10.0 } else { noise[i * 6 + j] };
            }
        }
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| rows[i][j] * x[j]).sum())
            .collect();
        let solved = a.solve(&b).expect("diagonally dominant");
        for (got, want) in solved.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-8, "{} vs {}", got, want);
        }
    }

    /// Scaler transform is exactly invertible in distribution: transformed
    /// data has zero mean and unit variance per non-constant column.
    #[test]
    fn scaler_standardizes_any_dataset(rows in two_class_rows(3)) {
        let data = dataset_from(&rows);
        let scaler = Scaler::fit(&data);
        let scaled = scaler.transform_dataset(&data);
        for (c, (_, sd)) in data.column_stats().iter().enumerate() {
            let stats = scaled.column_stats();
            prop_assert!(stats[c].0.abs() < 1e-6, "column {} mean {}", c, stats[c].0);
            if *sd > 1e-9 {
                prop_assert!((stats[c].1 - 1.0).abs() < 1e-6, "column {} sd {}", c, stats[c].1);
            }
        }
    }

    /// Every learner either fits or returns a typed error on arbitrary
    /// two-class data, and fitted models predict deterministically.
    #[test]
    fn learners_are_total_and_deterministic(rows in two_class_rows(2)) {
        let data = dataset_from(&rows);
        for alg in Algorithm::PAPER_ORDER {
            match (alg.fit(&data), alg.fit(&data)) {
                (Ok(m1), Ok(m2)) => {
                    for (features, _) in rows.iter().take(10) {
                        prop_assert_eq!(m1.predict(features), m2.predict(features), "{}", alg);
                        prop_assert!(m1.decision(features).is_finite() || alg == Algorithm::Svm,
                            "{} produced non-finite decision", alg);
                    }
                    prop_assert_eq!(m1.dimension(), 2);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "{} fit nondeterministically", alg),
            }
        }
    }

    /// Cross validation covers every instance exactly once.
    #[test]
    fn cv_validates_each_instance_once(rows in two_class_rows(2), k in 2usize..8) {
        let data = dataset_from(&rows);
        let learner = Algorithm::NaiveBayes.learner();
        if let Ok(out) = cross_validate(learner.as_ref(), &data, k, 7) {
            let validated = out.confusion.total();
            // Skipped folds lose their instances; with both classes and
            // stratification, usually none are skipped.
            prop_assert!(validated <= data.len());
            if out.folds_skipped == 0 {
                prop_assert_eq!(validated, data.len());
            }
        }
    }

    /// Parallel cross validation is bit-identical to sequential: same
    /// fold assignments, same aggregate confusion matrix, same skip
    /// counts — for any dataset, fold count, seed, and thread count.
    #[test]
    fn parallel_cv_equals_sequential(
        rows in two_class_rows(2),
        k in 2usize..8,
        seed in any::<u64>(),
        threads in 2usize..9,
    ) {
        let data = dataset_from(&rows);
        let assignment = fold_assignment(&data, k.min(data.len()), seed);
        prop_assert_eq!(&assignment, &fold_assignment(&data, k.min(data.len()), seed));
        let learner = Algorithm::NaiveBayes.learner();
        let seq = cross_validate(learner.as_ref(), &data, k, seed);
        let par = cross_validate_par(
            learner.as_ref(), &data, k, seed, Parallelism::Threads(threads),
        );
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.confusion, b.confusion);
                prop_assert_eq!(a.folds_run, b.folds_run);
                prop_assert_eq!(a.folds_skipped, b.folds_skipped);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Parallel forward selection returns the same selected attribute
    /// set, gains, and balanced accuracy as the sequential greedy loop.
    #[test]
    fn parallel_selection_equals_sequential(
        rows in two_class_rows(4),
        threads in 2usize..9,
        max_attributes in 1usize..5,
    ) {
        let data = dataset_from(&rows);
        let opts = SelectionOptions {
            folds: 3,
            max_attributes,
            max_candidates: 4,
            ..SelectionOptions::default()
        };
        let learner = Algorithm::NaiveBayes.learner();
        let seq = forward_select(learner.as_ref(), &data, &opts);
        let par = forward_select_par(
            learner.as_ref(), &data, &opts, Parallelism::Threads(threads),
        );
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.selected, b.selected);
                prop_assert_eq!(
                    a.cv_balanced_accuracy.to_bits(),
                    b.cv_balanced_accuracy.to_bits()
                );
                let ga: Vec<u64> = a.gains.iter().map(|g| g.to_bits()).collect();
                let gb: Vec<u64> = b.gains.iter().map(|g| g.to_bits()).collect();
                prop_assert_eq!(ga, gb);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// The perfectly-separable invariant: when classes are split by a
    /// margin on feature 0, every learner classifies far points correctly.
    #[test]
    fn margin_separated_data_is_learned(
        gap in 5.0f64..50.0,
        n in 10usize..40,
        seed_jitter in prop::collection::vec(0.0f64..1.0, 80),
    ) {
        let mut rows = Vec::new();
        for i in 0..n {
            let j = seed_jitter[i % seed_jitter.len()];
            rows.push((vec![j, seed_jitter[(i + 7) % seed_jitter.len()]], false));
            rows.push((vec![gap + j, seed_jitter[(i + 3) % seed_jitter.len()]], true));
        }
        let data = dataset_from(&rows);
        for alg in Algorithm::PAPER_ORDER {
            let model = alg.fit(&data).unwrap_or_else(|e| panic!("{alg}: {e}"));
            if alg == Algorithm::Tan {
                // TAN discretizes; with tiny adversarial datasets its bins
                // can degenerate near the boundary. Require near-perfect
                // in-sample accuracy instead of exact probe answers.
                let correct = data
                    .iter()
                    .filter(|inst| model.predict(&inst.features) == inst.label)
                    .count();
                prop_assert!(
                    correct * 10 >= data.len() * 9,
                    "TAN in-sample accuracy {}/{}",
                    correct,
                    data.len()
                );
            } else {
                prop_assert!(model.predict(&[gap + 0.5, 0.5]), "{} missed positive", alg);
                prop_assert!(!model.predict(&[0.5, 0.5]), "{} missed negative", alg);
            }
        }
    }
}
