//! Support vector machine trained with sequential minimal optimization
//! (Platt's SMO, simplified pair-selection variant).
//!
//! Features are standardized before training. The default configuration
//! (`C = 1`, RBF kernel with `γ = 1/d`) mirrors the WEKA SMO defaults the
//! paper used. SMO's repeated full passes over the α vector make this by
//! far the costliest learner — reproducing the paper's observation that
//! SVM synopsis construction takes ~20–170× longer than the others.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Scaler};
use crate::linalg::{dot, squared_distance, Matrix};
use crate::{FitError, Learner, Model};

/// Kernel functions supported by [`SmoSvm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(x, z) = x · z`.
    Linear,
    /// `K(x, z) = exp(−γ ‖x − z‖²)`.
    Rbf {
        /// Width parameter γ; `None` means `1 / n_features` at fit time.
        gamma: Option<f64>,
    },
}

impl Kernel {
    fn eval(&self, gamma: f64, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { .. } => (-gamma * squared_distance(a, b)).exp(),
        }
    }
}

/// Fill the dense `n × n` training kernel matrix from contiguous feature
/// rows. Linear caches each pairwise dot product directly; RBF derives the
/// squared distance from cached squared norms and the same dot-product
/// cache (`‖xᵢ − xⱼ‖² = ‖xᵢ‖² + ‖xⱼ‖² − 2·xᵢ·xⱼ`), so both kernels walk
/// each row pair exactly once over contiguous memory.
pub(crate) fn kernel_matrix(kernel: Kernel, gamma: f64, x: &Matrix) -> Vec<f64> {
    let n = x.rows();
    let mut k = vec![0.0f64; n * n];
    match kernel {
        Kernel::Linear => {
            for i in 0..n {
                let ri = x.row(i);
                for j in i..n {
                    let v = dot(ri, x.row(j));
                    k[i * n + j] = v;
                    k[j * n + i] = v;
                }
            }
        }
        Kernel::Rbf { .. } => {
            let norms: Vec<f64> = (0..n).map(|i| dot(x.row(i), x.row(i))).collect();
            for i in 0..n {
                let ri = x.row(i);
                for j in i..n {
                    let d2 = (norms[i] + norms[j] - 2.0 * dot(ri, x.row(j))).max(0.0);
                    let v = (-gamma * d2).exp();
                    k[i * n + j] = v;
                    k[j * n + i] = v;
                }
            }
        }
    }
    k
}

/// SMO-trained soft-margin SVM learner.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoSvm {
    c: f64,
    kernel: Kernel,
    tolerance: f64,
    max_passes: usize,
    seed: u64,
}

impl SmoSvm {
    /// Create an SVM learner.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0` or `tolerance <= 0`.
    pub fn new(c: f64, kernel: Kernel) -> SmoSvm {
        assert!(c > 0.0 && c.is_finite(), "C must be positive");
        SmoSvm {
            c,
            kernel,
            tolerance: 1e-3,
            max_passes: 5,
            seed: 0x5eed,
        }
    }

    /// Override the KKT tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance <= 0`.
    pub fn with_tolerance(mut self, tolerance: f64) -> SmoSvm {
        assert!(tolerance > 0.0, "tolerance must be positive");
        self.tolerance = tolerance;
        self
    }

    /// Override the RNG seed used for SMO's random second-index choice.
    pub fn with_seed(mut self, seed: u64) -> SmoSvm {
        self.seed = seed;
        self
    }

    /// The soft-margin parameter C.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The configured kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

impl Default for SmoSvm {
    /// WEKA-like defaults: `C = 1`, RBF with `γ = 1/d`.
    fn default() -> SmoSvm {
        SmoSvm::new(1.0, Kernel::Rbf { gamma: None })
    }
}

impl SmoSvm {
    /// Fit and return the concrete (serializable) model.
    ///
    /// # Errors
    ///
    /// Same as [`Learner::fit`].
    pub fn fit_model(&self, data: &Dataset) -> Result<SvmModel, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let classes = data.classes();
        if classes.len() < 2 {
            return Err(FitError::SingleClass(classes[0]));
        }
        let scaler = Scaler::fit(data);
        let x = scaler.transform_matrix(data);
        let y: Vec<f64> = data
            .iter()
            .map(|i| if i.label { 1.0 } else { -1.0 })
            .collect();
        let n = x.rows();
        let d = data.n_features();
        let gamma = match self.kernel {
            Kernel::Rbf { gamma } => gamma.unwrap_or(1.0 / d as f64),
            Kernel::Linear => 0.0,
        };

        // Precompute the kernel matrix; training sets here are at most a
        // few thousand instances, so O(n²) memory is acceptable.
        let k = kernel_matrix(self.kernel, gamma, &x);
        let kij = |i: usize, j: usize| k[i * n + j];

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let f = |alpha: &[f64], b: f64, idx: usize| -> f64 {
            let mut s = b;
            for t in 0..n {
                if alpha[t] != 0.0 {
                    s += alpha[t] * y[t] * kij(t, idx);
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut iters = 0usize;
        let max_iters = 200 * n.max(100);
        while passes < self.max_passes && iters < max_iters {
            iters += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = f(&alpha, b, i) - y[i];
                let r_i = e_i * y[i];
                if (r_i < -self.tolerance && alpha[i] < self.c)
                    || (r_i > self.tolerance && alpha[i] > 0.0)
                {
                    // Pick j ≠ i at random (simplified heuristic).
                    let mut j = rng.random_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let e_j = f(&alpha, b, j) - y[j];
                    let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                    let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                        (
                            (alpha[j] - alpha[i]).max(0.0),
                            (self.c + alpha[j] - alpha[i]).min(self.c),
                        )
                    } else {
                        (
                            (alpha[i] + alpha[j] - self.c).max(0.0),
                            (alpha[i] + alpha[j]).min(self.c),
                        )
                    };
                    if hi - lo < 1e-12 {
                        continue;
                    }
                    let eta = 2.0 * kij(i, j) - kij(i, i) - kij(j, j);
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                    a_j = a_j.clamp(lo, hi);
                    if (a_j - a_j_old).abs() < 1e-5 {
                        continue;
                    }
                    let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
                    alpha[i] = a_i;
                    alpha[j] = a_j;
                    let b1 = b
                        - e_i
                        - y[i] * (a_i - a_i_old) * kij(i, i)
                        - y[j] * (a_j - a_j_old) * kij(i, j);
                    let b2 = b
                        - e_j
                        - y[i] * (a_i - a_i_old) * kij(i, j)
                        - y[j] * (a_j - a_j_old) * kij(j, j);
                    b = if a_i > 0.0 && a_i < self.c {
                        b1
                    } else if a_j > 0.0 && a_j < self.c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support.push(SupportVector {
                    x: x.row(i).to_vec(),
                    coef: alpha[i] * y[i],
                });
            }
        }
        if support.is_empty() {
            return Err(FitError::Numeric("SMO produced no support vectors".into()));
        }
        Ok(SvmModel {
            scaler,
            kernel: self.kernel,
            gamma,
            bias: b,
            support,
            dim: d,
        })
    }
}

impl Learner for SmoSvm {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Model>, FitError> {
        Ok(Box::new(self.fit_model(data)?))
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SupportVector {
    x: Vec<f64>,
    /// `α_i · y_i`.
    coef: f64,
}

/// A fitted SVM classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    scaler: Scaler,
    kernel: Kernel,
    gamma: f64,
    bias: f64,
    support: Vec<SupportVector>,
    dim: usize,
}

impl Model for SvmModel {
    fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dim, "feature width mismatch");
        let z = self.scaler.transform(features);
        let mut s = self.bias;
        for sv in &self.support {
            s += sv.coef * self.kernel.eval(self.gamma, &sv.x, &z);
        }
        s
    }

    fn dimension(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_dataset(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(vec!["a".into(), "b".into()]);
        for _ in 0..n {
            let a: f64 = rng.random::<f64>() * 10.0;
            let b: f64 = rng.random::<f64>() * 10.0;
            data.push(vec![a, b], a + b > 10.0);
        }
        data
    }

    #[test]
    fn linear_kernel_separates_linear_data() {
        let data = linear_dataset(5, 150);
        let model = SmoSvm::new(1.0, Kernel::Linear).fit(&data).unwrap();
        assert!(model.predict(&[9.0, 9.0]));
        assert!(!model.predict(&[1.0, 1.0]));
    }

    #[test]
    fn rbf_kernel_separates_ring_data() {
        // Inner disk negative, outer ring positive — not linearly separable.
        let mut rng = StdRng::seed_from_u64(6);
        let mut data = Dataset::new(vec!["x".into(), "y".into()]);
        for _ in 0..300 {
            let angle = rng.random::<f64>() * std::f64::consts::TAU;
            let inner: bool = rng.random();
            let r = if inner {
                rng.random::<f64>() * 1.0
            } else {
                2.0 + rng.random::<f64>()
            };
            data.push(vec![r * angle.cos(), r * angle.sin()], !inner);
        }
        let model = SmoSvm::new(1.0, Kernel::Rbf { gamma: Some(1.0) })
            .fit(&data)
            .unwrap();
        assert!(model.predict(&[2.5, 0.0]));
        assert!(model.predict(&[0.0, -2.5]));
        assert!(!model.predict(&[0.1, 0.1]));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = linear_dataset(7, 80);
        let m1 = SmoSvm::new(1.0, Kernel::Linear)
            .with_seed(9)
            .fit(&data)
            .unwrap();
        let m2 = SmoSvm::new(1.0, Kernel::Linear)
            .with_seed(9)
            .fit(&data)
            .unwrap();
        for probe in [[0.0, 0.0], [5.0, 5.1], [10.0, 10.0]] {
            assert_eq!(m1.decision(&probe), m2.decision(&probe));
        }
    }

    #[test]
    fn decision_sign_matches_predict() {
        let data = linear_dataset(8, 100);
        let model = SmoSvm::default().fit(&data).unwrap();
        for probe in [[1.0, 2.0], [8.0, 9.0], [5.0, 5.0]] {
            assert_eq!(model.predict(&probe), model.decision(&probe) > 0.0);
        }
    }

    #[test]
    fn tolerates_label_noise() {
        let mut data = linear_dataset(9, 200);
        // Flip a few labels.
        let mut noisy = Dataset::new(data.feature_names().to_vec());
        for (i, inst) in data.iter().enumerate() {
            let label = if i % 29 == 0 { !inst.label } else { inst.label };
            noisy.push(inst.features.clone(), label);
        }
        data = noisy;
        let model = SmoSvm::default().fit(&data).unwrap();
        assert!(model.predict(&[9.5, 9.5]));
        assert!(!model.predict(&[0.5, 0.5]));
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn zero_c_rejected() {
        let _ = SmoSvm::new(0.0, Kernel::Linear);
    }

    mod kernel_equivalence {
        //! The cached-dot-product kernel fill must agree with the original
        //! per-pair `Kernel::eval` over `Vec<Vec<f64>>` rows.
        use super::super::*;
        use proptest::prelude::*;

        fn reference_kernel(kernel: Kernel, gamma: f64, rows: &[Vec<f64>]) -> Vec<f64> {
            let n = rows.len();
            let mut k = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    k[i * n + j] = kernel.eval(gamma, &rows[i], &rows[j]);
                }
            }
            k
        }

        fn row_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
            (1usize..6).prop_flat_map(|cols| {
                prop::collection::vec(prop::collection::vec(-50.0f64..50.0, cols), 1..12)
            })
        }

        proptest! {
            #[test]
            fn linear_kernel_rows_match_reference(rows in row_strategy()) {
                let x = Matrix::from_rows(&rows);
                let fast = kernel_matrix(Kernel::Linear, 0.0, &x);
                let slow = reference_kernel(Kernel::Linear, 0.0, &rows);
                for (f, s) in fast.iter().zip(&slow) {
                    prop_assert_eq!(f, s, "linear kernel entry drifted");
                }
            }

            #[test]
            fn rbf_kernel_rows_match_reference(rows in row_strategy(), gamma in 0.01f64..2.0) {
                let x = Matrix::from_rows(&rows);
                let fast = kernel_matrix(Kernel::Rbf { gamma: Some(gamma) }, gamma, &x);
                let slow = reference_kernel(Kernel::Rbf { gamma: Some(gamma) }, gamma, &rows);
                for (&f, &s) in fast.iter().zip(&slow) {
                    prop_assert!((f - s).abs() <= 1e-9, "rbf entry {f} vs {s}");
                }
            }
        }

        #[test]
        fn rbf_diagonal_is_exactly_one() {
            let x = Matrix::from_rows(&[vec![1.5, -2.0], vec![0.25, 7.0], vec![3.0, 3.0]]);
            let k = kernel_matrix(Kernel::Rbf { gamma: Some(0.5) }, 0.5, &x);
            for i in 0..3 {
                assert_eq!(k[i * 3 + i], 1.0);
            }
        }
    }
}
