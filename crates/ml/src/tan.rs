//! Tree-augmented naive Bayes (TAN).
//!
//! TAN relaxes naive Bayes' independence assumption by allowing each
//! attribute one extra parent beside the class, chosen by building a
//! maximum-weight spanning tree over conditional mutual information
//! (Friedman et al.'s Chow–Liu construction). The paper finds TAN the best
//! accuracy/cost compromise among the four learners (Section V-B).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::discretize::{fit_cached, EqualFrequencyDiscretizer};
use crate::info::conditional_mutual_information;
use crate::{FitError, Learner, Model};

/// TAN learner over equal-frequency-discretized attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeAugmentedNaiveBayes {
    n_bins: usize,
}

impl TreeAugmentedNaiveBayes {
    /// Create a TAN learner discretizing each attribute into `n_bins`
    /// equal-frequency bins.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins < 2`.
    pub fn new(n_bins: usize) -> TreeAugmentedNaiveBayes {
        assert!(n_bins >= 2, "TAN needs at least 2 bins");
        TreeAugmentedNaiveBayes { n_bins }
    }

    /// Bin count per attribute.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }
}

impl Default for TreeAugmentedNaiveBayes {
    /// Five bins: enough resolution for counter distributions while keeping
    /// conditional tables well populated at the paper's training-set sizes.
    fn default() -> TreeAugmentedNaiveBayes {
        TreeAugmentedNaiveBayes::new(5)
    }
}

impl TreeAugmentedNaiveBayes {
    /// Fit and return the concrete (serializable) model.
    ///
    /// # Errors
    ///
    /// Same as [`Learner::fit`].
    pub fn fit_model(&self, data: &Dataset) -> Result<TanModel, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let classes = data.classes();
        if classes.len() < 2 {
            return Err(FitError::SingleClass(classes[0]));
        }
        let d = data.n_features();
        let labels: Vec<bool> = data.iter().map(|i| i.label).collect();

        // 1. Discretize each column. Bin-edge fits are memoized: forward
        // selection refits identical fold columns for every candidate
        // attribute set, and each column is extracted once and reused for
        // both the fit and the binning pass.
        let mut discretizers: Vec<EqualFrequencyDiscretizer> = Vec::with_capacity(d);
        let mut bins: Vec<Vec<usize>> = Vec::with_capacity(d);
        for c in 0..d {
            let col = data.column(c);
            let disc = fit_cached(&col, self.n_bins);
            bins.push(col.iter().map(|&v| disc.bin(v)).collect());
            discretizers.push(disc);
        }

        // 2. Chow–Liu maximum spanning tree over CMI weights (Prim).
        let parents = chow_liu_parents(&bins, &labels);

        // 3. Conditional probability tables with Laplace smoothing.
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n = labels.len();
        // Laplace-smoothed class prior.
        let log_prior = [
            (((n - n_pos) as f64 + 1.0) / (n as f64 + 2.0)).ln(),
            ((n_pos as f64 + 1.0) / (n as f64 + 2.0)).ln(),
        ];
        let mut tables = Vec::with_capacity(d);
        for i in 0..d {
            let k_i = discretizers[i].n_bins();
            let k_p = parents[i].map_or(1, |p| discretizers[p].n_bins());
            // counts[class][parent_bin][own_bin]
            let mut counts = vec![vec![vec![1.0f64; k_i]; k_p]; 2]; // Laplace prior 1
            for (row, &label) in labels.iter().enumerate() {
                let c = usize::from(label);
                let pb = parents[i].map_or(0, |p| bins[p][row]);
                counts[c][pb][bins[i][row]] += 1.0;
            }
            // Normalize to log-probabilities.
            for class_counts in &mut counts {
                for parent_slice in class_counts.iter_mut() {
                    let total: f64 = parent_slice.iter().sum();
                    for v in parent_slice.iter_mut() {
                        *v = (*v / total).ln();
                    }
                }
            }
            tables.push(Cpt {
                parent: parents[i],
                log_prob: counts,
            });
        }

        Ok(TanModel {
            discretizers,
            log_prior,
            tables,
        })
    }
}

impl Learner for TreeAugmentedNaiveBayes {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Model>, FitError> {
        Ok(Box::new(self.fit_model(data)?))
    }

    fn name(&self) -> &'static str {
        "TAN"
    }
}

/// Compute each attribute's tree parent via Prim's algorithm on the
/// complete CMI graph. Attribute 0 is the root (`None` parent); with a
/// single attribute the result is trivially `[None]`.
fn chow_liu_parents(bins: &[Vec<usize>], labels: &[bool]) -> Vec<Option<usize>> {
    let d = bins.len();
    let mut parents: Vec<Option<usize>> = vec![None; d];
    if d <= 1 {
        return parents;
    }
    // Pairwise CMI (symmetric).
    let mut weight = vec![vec![0.0f64; d]; d];
    for i in 0..d {
        for j in (i + 1)..d {
            let w = conditional_mutual_information(&bins[i], &bins[j], labels);
            weight[i][j] = w;
            weight[j][i] = w;
        }
    }
    // Prim from node 0, always taking the heaviest crossing edge.
    let mut in_tree = vec![false; d];
    in_tree[0] = true;
    let mut best_edge: Vec<(f64, usize)> = (0..d).map(|i| (weight[0][i], 0)).collect();
    for _ in 1..d {
        let mut next = usize::MAX;
        let mut next_w = f64::NEG_INFINITY;
        for i in 0..d {
            if !in_tree[i] && best_edge[i].0 > next_w {
                next_w = best_edge[i].0;
                next = i;
            }
        }
        debug_assert_ne!(next, usize::MAX);
        in_tree[next] = true;
        parents[next] = Some(best_edge[next].1);
        for i in 0..d {
            if !in_tree[i] && weight[next][i] > best_edge[i].0 {
                best_edge[i] = (weight[next][i], next);
            }
        }
    }
    parents
}

/// Conditional probability table for one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Cpt {
    parent: Option<usize>,
    /// `log_prob[class][parent_bin][own_bin]`.
    log_prob: Vec<Vec<Vec<f64>>>,
}

/// A fitted TAN classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TanModel {
    discretizers: Vec<EqualFrequencyDiscretizer>,
    log_prior: [f64; 2],
    tables: Vec<Cpt>,
}

impl TanModel {
    fn class_log_posterior(&self, class: usize, bins: &[usize]) -> f64 {
        let mut lp = self.log_prior[class];
        for (i, cpt) in self.tables.iter().enumerate() {
            let pb = cpt.parent.map_or(0, |p| bins[p]);
            lp += cpt.log_prob[class][pb][bins[i]];
        }
        lp
    }
}

impl Model for TanModel {
    fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dimension(), "feature width mismatch");
        let bins: Vec<usize> = features
            .iter()
            .zip(&self.discretizers)
            .map(|(&v, d)| d.bin(v))
            .collect();
        self.class_log_posterior(1, &bins) - self.class_log_posterior(0, &bins)
    }

    fn dimension(&self) -> usize {
        self.discretizers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn separates_threshold_data() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            let x = f64::from(i);
            data.push(vec![x], x >= 50.0);
        }
        let model = TreeAugmentedNaiveBayes::default().fit(&data).unwrap();
        assert!(model.predict(&[90.0]));
        assert!(!model.predict(&[5.0]));
    }

    #[test]
    fn captures_attribute_dependence_xor_like() {
        // Label = (a > 0.5) XOR (b > 0.5) is not naive-Bayes separable on
        // marginals alone, but with two attributes TAN links b to a and the
        // joint CPT captures the interaction.
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = Dataset::new(vec!["a".into(), "b".into()]);
        for _ in 0..600 {
            let a: f64 = rng.random();
            let b: f64 = rng.random();
            data.push(vec![a, b], (a > 0.5) != (b > 0.5));
        }
        let model = TreeAugmentedNaiveBayes::new(2).fit(&data).unwrap();
        let mut correct = 0;
        let cases = [
            (0.2, 0.2, false),
            (0.8, 0.8, false),
            (0.2, 0.8, true),
            (0.8, 0.2, true),
        ];
        for (a, b, want) in cases {
            if model.predict(&[a, b]) == want {
                correct += 1;
            }
        }
        assert_eq!(correct, 4, "TAN should solve XOR with a tree edge");
    }

    #[test]
    fn chow_liu_builds_spanning_tree() {
        let bins = vec![vec![0, 1, 0, 1], vec![0, 1, 0, 1], vec![1, 0, 1, 0]];
        let labels = vec![false, false, true, true];
        let parents = chow_liu_parents(&bins, &labels);
        assert_eq!(parents.len(), 3);
        assert_eq!(parents[0], None, "root has no parent");
        // Every non-root has exactly one parent and the graph is acyclic by
        // construction (parents point toward already-inserted nodes).
        for (i, p) in parents.iter().enumerate().skip(1) {
            let p = p.expect("non-root must have a parent");
            assert_ne!(p, i);
            assert!(p < 3);
        }
    }

    #[test]
    fn single_attribute_degenerates_to_naive_bayes() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..60 {
            data.push(vec![f64::from(i % 30)], i % 30 >= 15);
        }
        let model = TreeAugmentedNaiveBayes::default().fit(&data).unwrap();
        assert!(model.predict(&[29.0]));
        assert!(!model.predict(&[1.0]));
    }

    #[test]
    fn unseen_extreme_values_clamp_to_outer_bins() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..50 {
            data.push(vec![f64::from(i)], i >= 25);
        }
        let model = TreeAugmentedNaiveBayes::default().fit(&data).unwrap();
        assert!(model.predict(&[1e9]));
        assert!(!model.predict(&[-1e9]));
        assert!(model.decision(&[f64::NAN]).is_finite());
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn one_bin_rejected() {
        let _ = TreeAugmentedNaiveBayes::new(1);
    }
}
