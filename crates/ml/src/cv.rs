//! Stratified k-fold cross validation — the paper's synopsis-accuracy
//! validation protocol (10-fold, Section II-B.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::{FitError, Learner};

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// Aggregated confusion matrix over all folds.
    pub confusion: ConfusionMatrix,
    /// Number of folds that fitted successfully.
    pub folds_run: usize,
    /// Number of folds skipped because their training split was
    /// single-class or otherwise unfittable.
    pub folds_skipped: usize,
}

impl CvOutcome {
    /// Balanced accuracy over all validated instances; 0.0 if none ran.
    pub fn balanced_accuracy(&self) -> f64 {
        self.confusion.balanced_accuracy().unwrap_or(0.0)
    }
}

/// Run stratified k-fold cross validation of `learner` on `data`.
///
/// Instances of each class are shuffled (seeded) and dealt round-robin into
/// `k` folds so every fold preserves the class balance. Folds whose
/// training portion cannot be fitted (e.g. single-class) are skipped and
/// counted in [`CvOutcome::folds_skipped`].
///
/// # Errors
///
/// Returns [`FitError::EmptyDataset`] for an empty dataset. Per-fold fit
/// errors are not fatal — they only skip folds — but if *every* fold fails,
/// the last error is returned.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn cross_validate(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<CvOutcome, FitError> {
    assert!(k >= 2, "need at least 2 folds");
    if data.is_empty() {
        return Err(FitError::EmptyDataset);
    }
    let k = k.min(data.len());

    // Stratified assignment: shuffle indices of each class, deal them out.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; data.len()];
    for class in [false, true] {
        let mut idx: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.label == class)
            .map(|(i, _)| i)
            .collect();
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        for (pos, &i) in idx.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }

    let mut confusion = ConfusionMatrix::new();
    let mut folds_run = 0;
    let mut folds_skipped = 0;
    let mut last_err = None;
    for fold in 0..k {
        let train_rows: Vec<usize> =
            (0..data.len()).filter(|&i| fold_of[i] != fold).collect();
        let test_rows: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] == fold).collect();
        if train_rows.is_empty() || test_rows.is_empty() {
            folds_skipped += 1;
            continue;
        }
        let train = data.select_rows(&train_rows);
        match learner.fit(&train) {
            Ok(model) => {
                for &r in &test_rows {
                    let inst = &data.instances()[r];
                    confusion.record(inst.label, model.predict(&inst.features));
                }
                folds_run += 1;
            }
            Err(e) => {
                folds_skipped += 1;
                last_err = Some(e);
            }
        }
    }
    if folds_run == 0 {
        return Err(last_err.unwrap_or(FitError::EmptyDataset));
    }
    Ok(CvOutcome { confusion, folds_run, folds_skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;

    fn separable(n: usize) -> Dataset {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..n {
            data.push(vec![i as f64], i >= n / 2);
        }
        data
    }

    #[test]
    fn ten_fold_on_separable_data_is_accurate() {
        let data = separable(200);
        let out =
            cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 10, 1).unwrap();
        assert_eq!(out.folds_run, 10);
        assert_eq!(out.folds_skipped, 0);
        assert!(out.balanced_accuracy() > 0.9, "ba {}", out.balanced_accuracy());
        assert_eq!(out.confusion.total(), 200);
    }

    #[test]
    fn stratification_keeps_minority_class_in_folds() {
        // 10% positives: stratified 5-fold must still run all folds.
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            data.push(vec![i as f64], i >= 90);
        }
        let out =
            cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 5, 2).unwrap();
        assert_eq!(out.folds_run, 5);
    }

    #[test]
    fn k_clamps_to_dataset_size() {
        let data = separable(4);
        let out =
            cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 10, 3).unwrap();
        assert!(out.folds_run + out.folds_skipped <= 4);
    }

    #[test]
    fn empty_dataset_errors() {
        let data = Dataset::new(vec!["x".into()]);
        let res = cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 5, 4);
        assert_eq!(res.err(), Some(FitError::EmptyDataset));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = separable(100);
        let a = cross_validate(Algorithm::Tan.learner().as_ref(), &data, 10, 9).unwrap();
        let b = cross_validate(Algorithm::Tan.learner().as_ref(), &data, 10, 9).unwrap();
        assert_eq!(a.confusion, b.confusion);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_rejected() {
        let data = separable(10);
        let _ = cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 1, 0);
    }
}
