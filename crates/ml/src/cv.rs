//! Stratified k-fold cross validation — the paper's synopsis-accuracy
//! validation protocol (10-fold, Section II-B.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webcap_parallel::{par_map, Parallelism};

use crate::data::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::{FitError, Learner};

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// Aggregated confusion matrix over all folds.
    pub confusion: ConfusionMatrix,
    /// Number of folds that fitted successfully.
    pub folds_run: usize,
    /// Number of folds skipped because their training split was
    /// single-class or otherwise unfittable.
    pub folds_skipped: usize,
}

impl CvOutcome {
    /// Balanced accuracy over all validated instances; 0.0 if none ran.
    pub fn balanced_accuracy(&self) -> f64 {
        self.confusion.balanced_accuracy().unwrap_or(0.0)
    }
}

/// Stratified fold assignment: instances of each class are shuffled
/// (seeded Fisher–Yates) and dealt round-robin into `k` folds so every
/// fold preserves the class balance. Returns the fold index of every
/// instance, position-aligned with `data`.
///
/// The assignment is a pure function of `(data, k, seed)` — it is
/// computed once, up front, on the calling thread, which is what lets the
/// fold loop itself run on any number of workers without changing which
/// instance lands in which fold.
pub fn fold_assignment(data: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; data.len()];
    for class in [false, true] {
        let mut idx: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.label == class)
            .map(|(i, _)| i)
            .collect();
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        for (pos, &i) in idx.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    fold_of
}

/// What one fold produced; merged in fold order so the aggregate outcome
/// is independent of execution order.
enum FoldOutcome {
    Ran(ConfusionMatrix),
    Skipped(Option<FitError>),
}

/// Run stratified k-fold cross validation of `learner` on `data`.
///
/// Folds whose training portion cannot be fitted (e.g. single-class) are
/// skipped and counted in [`CvOutcome::folds_skipped`]. Equivalent to
/// [`cross_validate_par`] with [`Parallelism::Sequential`].
///
/// # Errors
///
/// Returns [`FitError::EmptyDataset`] for an empty dataset. Per-fold fit
/// errors are not fatal — they only skip folds — but if *every* fold fails,
/// the last error is returned.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn cross_validate(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<CvOutcome, FitError> {
    cross_validate_par(learner, data, k, seed, Parallelism::Sequential)
}

/// [`cross_validate`] with the fold loop fanned out over `par` worker
/// threads.
///
/// The stratified fold assignment is pre-computed on the calling thread
/// ([`fold_assignment`]) and each fold's fit/validate is a pure function
/// of `(data, assignment, fold)`, so the outcome — fold assignments,
/// aggregate confusion matrix, skip counts, and error choice — is
/// identical at every thread count.
///
/// # Errors
///
/// Identical to [`cross_validate`]: the *last* failing fold's error (in
/// fold order) when every fold fails.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn cross_validate_par(
    learner: &dyn Learner,
    data: &Dataset,
    k: usize,
    seed: u64,
    par: Parallelism,
) -> Result<CvOutcome, FitError> {
    assert!(k >= 2, "need at least 2 folds");
    if data.is_empty() {
        return Err(FitError::EmptyDataset);
    }
    let k = k.min(data.len());
    let fold_of = fold_assignment(data, k, seed);

    let outcomes: Vec<FoldOutcome> = par_map(par, (0..k).collect(), |fold| {
        let train_rows: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] != fold).collect();
        let test_rows: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] == fold).collect();
        if train_rows.is_empty() || test_rows.is_empty() {
            return FoldOutcome::Skipped(None);
        }
        let train = data.select_rows(&train_rows);
        match learner.fit(&train) {
            Ok(model) => {
                let mut confusion = ConfusionMatrix::new();
                for &r in &test_rows {
                    let inst = &data.instances()[r];
                    confusion.record(inst.label, model.predict(&inst.features));
                }
                FoldOutcome::Ran(confusion)
            }
            Err(e) => FoldOutcome::Skipped(Some(e)),
        }
    });

    // Merge in fold order — same aggregation the sequential loop performs.
    let mut confusion = ConfusionMatrix::new();
    let mut folds_run = 0;
    let mut folds_skipped = 0;
    let mut last_err = None;
    for outcome in outcomes {
        match outcome {
            FoldOutcome::Ran(fold_confusion) => {
                confusion.merge(&fold_confusion);
                folds_run += 1;
            }
            FoldOutcome::Skipped(err) => {
                folds_skipped += 1;
                if err.is_some() {
                    last_err = err;
                }
            }
        }
    }
    if folds_run == 0 {
        return Err(last_err.unwrap_or(FitError::EmptyDataset));
    }
    Ok(CvOutcome {
        confusion,
        folds_run,
        folds_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;

    fn separable(n: usize) -> Dataset {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..n {
            data.push(vec![i as f64], i >= n / 2);
        }
        data
    }

    #[test]
    fn ten_fold_on_separable_data_is_accurate() {
        let data = separable(200);
        let out = cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 10, 1).unwrap();
        assert_eq!(out.folds_run, 10);
        assert_eq!(out.folds_skipped, 0);
        assert!(
            out.balanced_accuracy() > 0.9,
            "ba {}",
            out.balanced_accuracy()
        );
        assert_eq!(out.confusion.total(), 200);
    }

    #[test]
    fn stratification_keeps_minority_class_in_folds() {
        // 10% positives: stratified 5-fold must still run all folds.
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            data.push(vec![i as f64], i >= 90);
        }
        let out = cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 5, 2).unwrap();
        assert_eq!(out.folds_run, 5);
    }

    #[test]
    fn k_clamps_to_dataset_size() {
        let data = separable(4);
        let out = cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 10, 3).unwrap();
        assert!(out.folds_run + out.folds_skipped <= 4);
    }

    #[test]
    fn empty_dataset_errors() {
        let data = Dataset::new(vec!["x".into()]);
        let res = cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 5, 4);
        assert_eq!(res.err(), Some(FitError::EmptyDataset));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = separable(100);
        let a = cross_validate(Algorithm::Tan.learner().as_ref(), &data, 10, 9).unwrap();
        let b = cross_validate(Algorithm::Tan.learner().as_ref(), &data, 10, 9).unwrap();
        assert_eq!(a.confusion, b.confusion);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_rejected() {
        let data = separable(10);
        let _ = cross_validate(Algorithm::NaiveBayes.learner().as_ref(), &data, 1, 0);
    }

    #[test]
    fn parallel_folds_match_sequential_exactly() {
        let data = separable(120);
        let learner = Algorithm::Tan.learner();
        let seq = cross_validate(learner.as_ref(), &data, 10, 77).unwrap();
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let out = cross_validate_par(learner.as_ref(), &data, 10, 77, par).unwrap();
            assert_eq!(out.confusion, seq.confusion, "{par}");
            assert_eq!(out.folds_run, seq.folds_run, "{par}");
            assert_eq!(out.folds_skipped, seq.folds_skipped, "{par}");
        }
    }

    #[test]
    fn fold_assignment_is_stratified_and_deterministic() {
        let data = separable(100);
        let a = fold_assignment(&data, 10, 5);
        let b = fold_assignment(&data, 10, 5);
        assert_eq!(a, b, "same seed, same assignment");
        for fold in 0..10 {
            let members: Vec<usize> = (0..data.len()).filter(|&i| a[i] == fold).collect();
            let positives = members
                .iter()
                .filter(|&&i| data.instances()[i].label)
                .count();
            assert_eq!(members.len(), 10);
            assert_eq!(positives, 5, "fold {fold} keeps the class balance");
        }
    }
}
