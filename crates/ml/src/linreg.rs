//! Linear regression on the class indicator, with a ridge term.
//!
//! The paper's LR synopsis regresses the {0,1} class variable on the
//! selected metrics and thresholds the fitted value at 1/2. A small ridge
//! term keeps the normal equations well conditioned when counters are
//! nearly collinear (as hardware counters often are); this mirrors WEKA's
//! `LinearRegression -R 1e-8`.

use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Scaler};
use crate::linalg::{dot, Matrix};
use crate::{FitError, Learner, Model};

/// Ridge-regularized least-squares learner.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    ridge: f64,
}

impl RidgeRegression {
    /// Create a learner with the given ridge coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `ridge` is negative or non-finite.
    pub fn new(ridge: f64) -> RidgeRegression {
        assert!(
            ridge.is_finite() && ridge >= 0.0,
            "ridge must be a nonnegative finite value"
        );
        RidgeRegression { ridge }
    }

    /// The ridge coefficient.
    pub fn ridge(&self) -> f64 {
        self.ridge
    }
}

impl Default for RidgeRegression {
    /// WEKA's default ridge of `1e-8`.
    fn default() -> RidgeRegression {
        RidgeRegression::new(1e-8)
    }
}

impl RidgeRegression {
    /// Fit and return the concrete (serializable) model.
    ///
    /// # Errors
    ///
    /// Same as [`Learner::fit`].
    pub fn fit_model(&self, data: &Dataset) -> Result<LinearModel, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let classes = data.classes();
        if classes.len() < 2 {
            return Err(FitError::SingleClass(classes[0]));
        }
        let scaler = Scaler::fit(data);
        let scaled = scaler.transform_dataset(data);
        let d = data.n_features();

        // Design matrix with an intercept column.
        let rows: Vec<Vec<f64>> = scaled
            .iter()
            .map(|inst| {
                let mut r = Vec::with_capacity(d + 1);
                r.push(1.0);
                r.extend_from_slice(&inst.features);
                r
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = scaled
            .iter()
            .map(|i| if i.label { 1.0 } else { 0.0 })
            .collect();

        // (XᵀX + λI) w = Xᵀy ; do not penalize the intercept.
        let mut gram = x.gram();
        for i in 1..=d {
            gram[(i, i)] += self.ridge.max(1e-10) * x.rows() as f64;
        }
        let xty = x.transpose_mul_vec(&y);
        let weights = match gram.solve(&xty) {
            Ok(w) => w,
            Err(_) => {
                // Escalate the ridge until the system is solvable; counters
                // can be exactly collinear in degenerate workloads.
                let mut lambda = (self.ridge.max(1e-10)) * 1e4;
                loop {
                    let mut g = x.gram();
                    for i in 1..=d {
                        g[(i, i)] += lambda * x.rows() as f64;
                    }
                    match g.solve(&xty) {
                        Ok(w) => break w,
                        Err(e) if lambda < 1e6 => {
                            lambda *= 1e3;
                            let _ = e;
                        }
                        Err(e) => return Err(FitError::Numeric(e.to_string())),
                    }
                }
            }
        };
        Ok(LinearModel { scaler, weights })
    }
}

impl Learner for RidgeRegression {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Model>, FitError> {
        Ok(Box::new(self.fit_model(data)?))
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

/// A fitted linear-regression classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    scaler: Scaler,
    /// `weights[0]` is the intercept.
    weights: Vec<f64>,
}

impl Model for LinearModel {
    fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dimension(), "feature width mismatch");
        let z = self.scaler.transform(features);
        // Fitted indicator value minus the 1/2 threshold.
        self.weights[0] + dot(&self.weights[1..], &z) - 0.5
    }

    fn dimension(&self) -> usize {
        self.weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_linear_data() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            let x = f64::from(i) * 0.1;
            data.push(vec![x], x > 5.0);
        }
        let model = RidgeRegression::default().fit(&data).unwrap();
        assert!(model.predict(&[9.0]));
        assert!(!model.predict(&[1.0]));
        // Decision midpoint should be near the boundary.
        assert!(model.decision(&[5.0]).abs() < 0.3);
    }

    #[test]
    fn collinear_features_still_fit() {
        let mut data = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..50 {
            let a = f64::from(i);
            data.push(vec![a, 2.0 * a], a > 25.0); // b = 2a exactly
        }
        let model = RidgeRegression::default().fit(&data).unwrap();
        assert!(model.predict(&[40.0, 80.0]));
        assert!(!model.predict(&[5.0, 10.0]));
    }

    #[test]
    fn constant_feature_is_harmless() {
        let mut data = Dataset::new(vec!["x".into(), "k".into()]);
        for i in 0..40 {
            data.push(vec![f64::from(i), 7.0], i >= 20);
        }
        let model = RidgeRegression::default().fit(&data).unwrap();
        assert!(model.predict(&[35.0, 7.0]));
        assert!(!model.predict(&[2.0, 7.0]));
    }

    #[test]
    fn decision_is_monotone_in_informative_feature() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..60 {
            data.push(vec![f64::from(i)], i > 30);
        }
        let model = RidgeRegression::default().fit(&data).unwrap();
        assert!(model.decision(&[50.0]) > model.decision(&[10.0]));
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            data.push(vec![f64::from(i)], i >= 5);
        }
        let model = RidgeRegression::default().fit(&data).unwrap();
        let _ = model.predict(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_ridge_panics() {
        let _ = RidgeRegression::new(-1.0);
    }
}
