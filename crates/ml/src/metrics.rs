//! Evaluation metrics: confusion matrices and balanced accuracy, the
//! paper's prediction-quality measure (Section IV-A).

use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix for the binary overload/underload problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Overloaded intervals predicted overloaded.
    pub true_positive: usize,
    /// Underloaded intervals predicted overloaded.
    pub false_positive: usize,
    /// Overloaded intervals predicted underloaded.
    pub false_negative: usize,
    /// Underloaded intervals predicted underloaded.
    pub true_negative: usize,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix::default()
    }

    /// Tally one (actual, predicted) pair.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.true_positive += 1,
            (false, true) => self.false_positive += 1,
            (true, false) => self.false_negative += 1,
            (false, false) => self.true_negative += 1,
        }
    }

    /// Build from parallel slices of actual and predicted labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(actual: &[bool], predicted: &[bool]) -> ConfusionMatrix {
        assert_eq!(
            actual.len(),
            predicted.len(),
            "label slices differ in length"
        );
        let mut m = ConfusionMatrix::new();
        for (&a, &p) in actual.iter().zip(predicted) {
            m.record(a, p);
        }
        m
    }

    /// Total number of recorded pairs.
    pub fn total(&self) -> usize {
        self.true_positive + self.false_positive + self.false_negative + self.true_negative
    }

    /// True-positive rate (sensitivity). `None` if no positives seen.
    pub fn true_positive_rate(&self) -> Option<f64> {
        let p = self.true_positive + self.false_negative;
        (p > 0).then(|| self.true_positive as f64 / p as f64)
    }

    /// True-negative rate (specificity). `None` if no negatives seen.
    pub fn true_negative_rate(&self) -> Option<f64> {
        let n = self.true_negative + self.false_positive;
        (n > 0).then(|| self.true_negative as f64 / n as f64)
    }

    /// Plain accuracy. `None` when empty.
    pub fn accuracy(&self) -> Option<f64> {
        let t = self.total();
        (t > 0).then(|| (self.true_positive + self.true_negative) as f64 / t as f64)
    }

    /// Balanced accuracy: the mean of the true-positive and true-negative
    /// rates — the paper's BA metric. If only one class is present, falls
    /// back to that class's rate; `None` when empty.
    pub fn balanced_accuracy(&self) -> Option<f64> {
        match (self.true_positive_rate(), self.true_negative_rate()) {
            (Some(tp), Some(tn)) => Some((tp + tn) / 2.0),
            (Some(tp), None) => Some(tp),
            (None, Some(tn)) => Some(tn),
            (None, None) => None,
        }
    }

    /// Precision over predicted positives. `None` if nothing was predicted
    /// positive.
    pub fn precision(&self) -> Option<f64> {
        let p = self.true_positive + self.false_positive;
        (p > 0).then(|| self.true_positive as f64 / p as f64)
    }

    /// F1 score. `None` when precision or recall is undefined.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.true_positive_rate()?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Merge another matrix's tallies into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
        self.false_negative += other.false_negative;
        self.true_negative += other.true_negative;
    }
}

/// Convenience: balanced accuracy straight from label slices.
///
/// Returns 0.0 for empty input (a deliberately pessimistic default so that
/// selection loops never favour an unevaluated candidate).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn balanced_accuracy(actual: &[bool], predicted: &[bool]) -> f64 {
    ConfusionMatrix::from_labels(actual, predicted)
        .balanced_accuracy()
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let a = [true, false, true, false];
        let m = ConfusionMatrix::from_labels(&a, &a);
        assert_eq!(m.balanced_accuracy(), Some(1.0));
        assert_eq!(m.accuracy(), Some(1.0));
        assert_eq!(m.f1(), Some(1.0));
    }

    #[test]
    fn constant_predictor_gets_half() {
        let actual = [true, true, false, false];
        let predicted = [true, true, true, true];
        let m = ConfusionMatrix::from_labels(&actual, &predicted);
        // TPR = 1, TNR = 0 → BA = 0.5. This is why useless synopses score
        // ≈ 0.5 in the paper's Table I.
        assert_eq!(m.balanced_accuracy(), Some(0.5));
    }

    #[test]
    fn imbalance_does_not_inflate_ba() {
        // 90 negatives correctly classified, 10 positives all missed:
        // plain accuracy 0.9 but BA 0.5.
        let mut m = ConfusionMatrix::new();
        m.true_negative = 90;
        m.false_negative = 10;
        assert_eq!(m.accuracy(), Some(0.9));
        assert_eq!(m.balanced_accuracy(), Some(0.5));
    }

    #[test]
    fn single_class_falls_back() {
        let m = ConfusionMatrix::from_labels(&[false, false], &[false, true]);
        assert_eq!(m.balanced_accuracy(), Some(0.5));
        let m = ConfusionMatrix::from_labels(&[true, true], &[true, true]);
        assert_eq!(m.balanced_accuracy(), Some(1.0));
    }

    #[test]
    fn empty_is_none_and_helper_zero() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.balanced_accuracy(), None);
        assert_eq!(balanced_accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::from_labels(&[true], &[true]);
        let b = ConfusionMatrix::from_labels(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.true_positive, 1);
        assert_eq!(a.false_positive, 1);
    }

    #[test]
    fn rates_match_hand_computation() {
        let actual = [true, true, true, false, false];
        let predicted = [true, false, true, false, true];
        let m = ConfusionMatrix::from_labels(&actual, &predicted);
        assert_eq!(m.true_positive, 2);
        assert_eq!(m.false_negative, 1);
        assert_eq!(m.true_negative, 1);
        assert_eq!(m.false_positive, 1);
        let ba = m.balanced_accuracy().unwrap();
        assert!((ba - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
    }
}
