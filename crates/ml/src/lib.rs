//! From-scratch machine learning for the webcap capacity-measurement system.
//!
//! The paper builds *performance synopses* — binary classifiers mapping a
//! vector of low-level performance metrics to a high-level system state
//! (`underload` / `overload`) — with four learners adapted from WEKA:
//! linear regression, naive Bayes, tree-augmented naive Bayes (TAN), and a
//! support vector machine. This crate reimplements those learners, plus the
//! supporting machinery the paper's protocol requires:
//!
//! * [`Dataset`] / [`Instance`] — labeled feature vectors ([`data`]).
//! * [`Learner`] / [`Model`] — the common fit/predict interface.
//! * [`Algorithm`] — enumerates the four paper learners uniformly.
//! * Information-theoretic attribute scoring ([`info`]) and forward
//!   attribute selection validated by cross validation ([`select`]).
//! * Stratified k-fold cross validation ([`cv`]) and balanced accuracy
//!   ([`metrics`]), the paper's evaluation metric.
//!
//! # Example
//!
//! ```
//! use webcap_ml::{Algorithm, Dataset, Learner};
//!
//! # fn main() -> Result<(), webcap_ml::FitError> {
//! // A linearly separable toy problem: x0 > 1.0 means overload.
//! let mut data = Dataset::new(vec!["x0".into(), "x1".into()]);
//! for i in 0..40 {
//!     let x0 = i as f64 * 0.05;
//!     data.push(vec![x0, 0.3], x0 > 1.0);
//! }
//! let model = Algorithm::Tan.fit(&data)?;
//! assert!(model.predict(&[1.8, 0.3]));
//! assert!(!model.predict(&[0.2, 0.3]));
//! # Ok(())
//! # }
//! ```

pub mod cv;
pub mod data;
pub mod discretize;
pub mod info;
pub mod linalg;
pub mod linreg;
pub mod metrics;
pub mod naive_bayes;
pub mod select;
pub mod svm;
pub mod tan;

use std::fmt;

pub use cv::{cross_validate, cross_validate_par, fold_assignment, CvOutcome};
pub use data::{Dataset, Instance};
pub use discretize::EqualFrequencyDiscretizer;
pub use linreg::LinearModel;
pub use linreg::RidgeRegression;
pub use metrics::{balanced_accuracy, ConfusionMatrix};
pub use naive_bayes::GaussianNaiveBayes;
pub use naive_bayes::NaiveBayesModel;
pub use select::{forward_select, forward_select_par, SelectionReport};
pub use svm::SvmModel;
pub use svm::{Kernel, SmoSvm};
pub use tan::TanModel;
pub use tan::TreeAugmentedNaiveBayes;
pub use webcap_parallel::Parallelism;

/// Error returned when a learner cannot be fitted to a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set was empty.
    EmptyDataset,
    /// The training set contained only one class; a discriminative model
    /// cannot be induced. The contained value is the single class present.
    SingleClass(bool),
    /// A numeric failure occurred (singular system, non-finite values).
    Numeric(String),
    /// Instances have inconsistent dimensionality.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Number of features found.
        found: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDataset => write!(f, "training set is empty"),
            FitError::SingleClass(c) => {
                write!(f, "training set contains a single class ({c})")
            }
            FitError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            FitError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} features, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted binary classifier.
///
/// Models are immutable once fitted; prediction never fails (out-of-range
/// inputs are clamped or extrapolated by each learner as documented).
pub trait Model: Send + Sync + fmt::Debug {
    /// Predict the class of a feature vector (`true` = overload).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training dimensionality.
    fn predict(&self, features: &[f64]) -> bool {
        self.decision(features) > 0.0
    }

    /// A signed decision value; positive means the positive (overload)
    /// class, and larger magnitudes mean higher confidence.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training dimensionality.
    fn decision(&self, features: &[f64]) -> f64;

    /// Number of features the model was trained on.
    fn dimension(&self) -> usize;
}

/// A learning algorithm: fits a [`Model`] from a [`Dataset`].
///
/// Learners are stateless hyper-parameter bundles; the `Send + Sync`
/// bound lets one learner be shared by the parallel cross-validation and
/// attribute-selection paths ([`cv::cross_validate_par`],
/// [`select::forward_select_par`]).
pub trait Learner: Send + Sync {
    /// Fit a model to the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the dataset is empty, single-class, or
    /// numerically degenerate.
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Model>, FitError>;

    /// Human-readable name of the algorithm (for report rows).
    fn name(&self) -> &'static str;
}

/// The four learners evaluated in the paper, with their default
/// hyper-parameters, as a uniform handle.
///
/// The defaults mirror the WEKA defaults the paper used: ridge 1e-8 for
/// linear regression, Gaussian class-conditional densities for naive Bayes,
/// equal-frequency discretization for TAN, and `C = 1` with a linear kernel
/// for the SVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// Least-squares linear regression on the {0,1} class indicator with a
    /// small ridge term; classify by thresholding at 1/2.
    LinearRegression,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Tree-augmented naive Bayes over equal-frequency-discretized
    /// attributes (Chow–Liu tree on conditional mutual information).
    Tan,
    /// Support vector machine trained with sequential minimal optimization.
    Svm,
}

impl Algorithm {
    /// All four algorithms in the order the paper's tables list them:
    /// LR, Naive, SVM, TAN.
    pub const PAPER_ORDER: [Algorithm; 4] = [
        Algorithm::LinearRegression,
        Algorithm::NaiveBayes,
        Algorithm::Svm,
        Algorithm::Tan,
    ];

    /// Instantiate the learner with its default hyper-parameters.
    pub fn learner(&self) -> Box<dyn Learner> {
        match self {
            Algorithm::LinearRegression => Box::new(RidgeRegression::default()),
            Algorithm::NaiveBayes => Box::new(GaussianNaiveBayes::default()),
            Algorithm::Tan => Box::new(TreeAugmentedNaiveBayes::default()),
            Algorithm::Svm => Box::new(SmoSvm::default()),
        }
    }

    /// Fit a model with default hyper-parameters.
    ///
    /// # Errors
    ///
    /// Propagates the learner's [`FitError`].
    pub fn fit(&self, data: &Dataset) -> Result<Box<dyn Model>, FitError> {
        self.learner().fit(data)
    }

    /// Fit a model with default hyper-parameters and return it as a
    /// concrete, serializable [`TrainedModel`].
    ///
    /// # Errors
    ///
    /// Propagates the learner's [`FitError`].
    pub fn fit_trained(&self, data: &Dataset) -> Result<TrainedModel, FitError> {
        Ok(match self {
            Algorithm::LinearRegression => {
                TrainedModel::Linear(RidgeRegression::default().fit_model(data)?)
            }
            Algorithm::NaiveBayes => TrainedModel::NaiveBayes(GaussianNaiveBayes.fit_model(data)?),
            Algorithm::Tan => {
                TrainedModel::Tan(TreeAugmentedNaiveBayes::default().fit_model(data)?)
            }
            Algorithm::Svm => TrainedModel::Svm(SmoSvm::default().fit_model(data)?),
        })
    }

    /// The short name used in the paper's tables.
    pub fn paper_name(&self) -> &'static str {
        match self {
            Algorithm::LinearRegression => "LR",
            Algorithm::NaiveBayes => "Naive",
            Algorithm::Tan => "TAN",
            Algorithm::Svm => "SVM",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A fitted model as a concrete, serializable value — the persistence
/// counterpart of the `Box<dyn Model>` the [`Learner`] trait returns.
/// Train once, serialize with serde, and deploy the deserialized model
/// online.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TrainedModel {
    /// Ridge linear regression.
    Linear(LinearModel),
    /// Gaussian naive Bayes.
    NaiveBayes(NaiveBayesModel),
    /// Tree-augmented naive Bayes.
    Tan(TanModel),
    /// SMO support vector machine.
    Svm(SvmModel),
}

impl TrainedModel {
    /// Which algorithm produced this model.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            TrainedModel::Linear(_) => Algorithm::LinearRegression,
            TrainedModel::NaiveBayes(_) => Algorithm::NaiveBayes,
            TrainedModel::Tan(_) => Algorithm::Tan,
            TrainedModel::Svm(_) => Algorithm::Svm,
        }
    }

    fn inner(&self) -> &dyn Model {
        match self {
            TrainedModel::Linear(m) => m,
            TrainedModel::NaiveBayes(m) => m,
            TrainedModel::Tan(m) => m,
            TrainedModel::Svm(m) => m,
        }
    }
}

impl Model for TrainedModel {
    fn decision(&self, features: &[f64]) -> f64 {
        self.inner().decision(features)
    }

    fn dimension(&self) -> usize {
        self.inner().dimension()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let mut data = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..50 {
            let a = f64::from(i) / 10.0;
            let b = 5.0 - f64::from(i) / 10.0;
            data.push(vec![a, b], a > 2.5);
        }
        data
    }

    #[test]
    fn all_algorithms_fit_and_predict_separable_data() {
        let data = toy_dataset();
        for alg in Algorithm::PAPER_ORDER {
            let model = alg.fit(&data).unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(model.predict(&[4.5, 0.5]), "{alg} misclassified overload");
            assert!(!model.predict(&[0.5, 4.5]), "{alg} misclassified underload");
            assert_eq!(model.dimension(), 2);
        }
    }

    #[test]
    fn fit_error_on_empty() {
        let data = Dataset::new(vec!["a".into()]);
        for alg in Algorithm::PAPER_ORDER {
            assert_eq!(alg.fit(&data).err(), Some(FitError::EmptyDataset), "{alg}");
        }
    }

    #[test]
    fn fit_error_on_single_class() {
        let mut data = Dataset::new(vec!["a".into()]);
        for i in 0..10 {
            data.push(vec![f64::from(i)], false);
        }
        for alg in Algorithm::PAPER_ORDER {
            assert_eq!(
                alg.fit(&data).err(),
                Some(FitError::SingleClass(false)),
                "{alg}"
            );
        }
    }

    #[test]
    fn paper_names_match() {
        assert_eq!(Algorithm::LinearRegression.to_string(), "LR");
        assert_eq!(Algorithm::NaiveBayes.to_string(), "Naive");
        assert_eq!(Algorithm::Tan.to_string(), "TAN");
        assert_eq!(Algorithm::Svm.to_string(), "SVM");
    }

    #[test]
    fn trained_model_matches_dyn_model() {
        let data = toy_dataset();
        for alg in Algorithm::PAPER_ORDER {
            let dynamic = alg.fit(&data).unwrap();
            let typed = alg.fit_trained(&data).unwrap();
            assert_eq!(typed.algorithm(), alg);
            for probe in [[4.5, 0.5], [0.5, 4.5], [2.5, 2.5]] {
                assert_eq!(dynamic.predict(&probe), typed.predict(&probe), "{alg}");
            }
        }
    }

    #[test]
    fn fit_error_display_is_informative() {
        let e = FitError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(FitError::EmptyDataset.to_string().contains("empty"));
        assert!(FitError::SingleClass(true).to_string().contains("true"));
    }
}
