//! Gaussian naive Bayes.
//!
//! Models each attribute as class-conditionally Gaussian and independent —
//! the strong independence assumption the paper credits for Naive Bayes
//! trailing TAN in accuracy (Section V-B, observation 3).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::{FitError, Learner, Model};

/// Gaussian naive Bayes learner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaussianNaiveBayes;

/// Variance floor: counters can be exactly constant within a class, and a
/// zero variance would produce a degenerate density.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNaiveBayes {
    /// Fit and return the concrete (serializable) model.
    ///
    /// # Errors
    ///
    /// Same as [`Learner::fit`].
    pub fn fit_model(&self, data: &Dataset) -> Result<NaiveBayesModel, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let classes = data.classes();
        if classes.len() < 2 {
            return Err(FitError::SingleClass(classes[0]));
        }
        let d = data.n_features();
        let mut stats = [ClassStats::new(d), ClassStats::new(d)];
        if d > 0 {
            // One contiguous row-major pass. The accumulation visits the
            // same values in the same instance order as iterating the
            // per-instance `Vec`s, so the fitted parameters are
            // bit-identical; only the memory layout changes.
            let x = data.to_matrix();
            for (row, inst) in x.row_iter().zip(data) {
                stats[usize::from(inst.label)].accumulate(row);
            }
        } else {
            for inst in data {
                stats[usize::from(inst.label)].count += 1;
            }
        }
        let n = data.len() as f64;
        let priors = [stats[0].count as f64 / n, stats[1].count as f64 / n];
        let params: [Vec<(f64, f64)>; 2] = [stats[0].finish(), stats[1].finish()];
        Ok(NaiveBayesModel {
            log_priors: [priors[0].ln(), priors[1].ln()],
            params,
        })
    }
}

impl Learner for GaussianNaiveBayes {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Model>, FitError> {
        Ok(Box::new(self.fit_model(data)?))
    }

    fn name(&self) -> &'static str {
        "Naive"
    }
}

#[derive(Debug)]
struct ClassStats {
    count: usize,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl ClassStats {
    fn new(d: usize) -> ClassStats {
        ClassStats {
            count: 0,
            sum: vec![0.0; d],
            sum_sq: vec![0.0; d],
        }
    }

    fn accumulate(&mut self, features: &[f64]) {
        self.count += 1;
        for (i, &v) in features.iter().enumerate() {
            self.sum[i] += v;
            self.sum_sq[i] += v * v;
        }
    }

    /// Per-feature `(mean, variance)` with a variance floor.
    fn finish(&self) -> Vec<(f64, f64)> {
        let n = self.count.max(1) as f64;
        self.sum
            .iter()
            .zip(&self.sum_sq)
            .map(|(&s, &sq)| {
                let mean = s / n;
                let var = (sq / n - mean * mean).max(VAR_FLOOR);
                (mean, var)
            })
            .collect()
    }
}

/// A fitted Gaussian naive Bayes classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayesModel {
    log_priors: [f64; 2],
    /// Per class, per feature: `(mean, variance)`.
    params: [Vec<(f64, f64)>; 2],
}

impl NaiveBayesModel {
    fn class_log_likelihood(&self, class: usize, features: &[f64]) -> f64 {
        let mut ll = self.log_priors[class];
        for (i, &v) in features.iter().enumerate() {
            let (mean, var) = self.params[class][i];
            // log N(v; mean, var), dropping the shared 2π constant.
            ll += -0.5 * var.ln() - (v - mean).powi(2) / (2.0 * var);
        }
        ll
    }
}

impl Model for NaiveBayesModel {
    fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dimension(), "feature width mismatch");
        self.class_log_likelihood(1, features) - self.class_log_likelihood(0, features)
    }

    fn dimension(&self) -> usize {
        self.params[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
        // Box–Muller.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn two_blob_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(vec!["x".into(), "y".into()]);
        for _ in 0..200 {
            data.push(
                vec![gaussian(&mut rng, 0.0, 1.0), gaussian(&mut rng, 0.0, 1.0)],
                false,
            );
            data.push(
                vec![gaussian(&mut rng, 4.0, 1.0), gaussian(&mut rng, 4.0, 1.0)],
                true,
            );
        }
        data
    }

    #[test]
    fn separates_gaussian_blobs() {
        let data = two_blob_dataset(1);
        let model = GaussianNaiveBayes.fit(&data).unwrap();
        assert!(model.predict(&[4.0, 4.0]));
        assert!(!model.predict(&[0.0, 0.0]));
    }

    #[test]
    fn decision_sign_flips_across_midpoint() {
        let data = two_blob_dataset(2);
        let model = GaussianNaiveBayes.fit(&data).unwrap();
        assert!(model.decision(&[-1.0, -1.0]) < 0.0);
        assert!(model.decision(&[5.0, 5.0]) > 0.0);
    }

    #[test]
    fn respects_class_prior() {
        // 90% negative: an ambiguous point should lean negative.
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Dataset::new(vec!["x".into()]);
        for _ in 0..180 {
            data.push(vec![gaussian(&mut rng, 0.0, 2.0)], false);
        }
        for _ in 0..20 {
            data.push(vec![gaussian(&mut rng, 1.0, 2.0)], true);
        }
        let model = GaussianNaiveBayes.fit(&data).unwrap();
        assert!(!model.predict(&[0.5]));
    }

    #[test]
    fn constant_feature_within_class_does_not_crash() {
        let mut data = Dataset::new(vec!["x".into(), "k".into()]);
        for i in 0..40 {
            data.push(vec![f64::from(i), 3.0], i >= 20);
        }
        let model = GaussianNaiveBayes.fit(&data).unwrap();
        assert!(model.predict(&[35.0, 3.0]));
        assert!(!model.predict(&[1.0, 3.0]));
    }

    #[test]
    fn extreme_inputs_stay_finite() {
        let data = two_blob_dataset(4);
        let model = GaussianNaiveBayes.fit(&data).unwrap();
        assert!(model.decision(&[1e9, -1e9]).is_finite());
    }

    mod matrix_equivalence {
        //! The contiguous-matrix fit must produce bit-identical parameters
        //! and log-likelihoods to the original `Vec<Vec<f64>>` row path.
        use super::super::*;
        use proptest::prelude::*;

        /// The pre-matrix fit path: accumulate per-instance rows directly.
        fn reference_model(rows: &[Vec<f64>], labels: &[bool]) -> NaiveBayesModel {
            let d = rows[0].len();
            let mut stats = [ClassStats::new(d), ClassStats::new(d)];
            for (r, &l) in rows.iter().zip(labels) {
                stats[usize::from(l)].accumulate(r);
            }
            let n = rows.len() as f64;
            NaiveBayesModel {
                log_priors: [
                    (stats[0].count as f64 / n).ln(),
                    (stats[1].count as f64 / n).ln(),
                ],
                params: [stats[0].finish(), stats[1].finish()],
            }
        }

        proptest! {
            #[test]
            fn matrix_fit_matches_vec_of_vec_reference(
                rows in (1usize..5).prop_flat_map(|cols| {
                    prop::collection::vec(
                        prop::collection::vec(-100.0f64..100.0, cols),
                        2..30,
                    )
                }),
                flips in prop::collection::vec(any::<bool>(), 30),
            ) {
                let n = rows.len();
                let mut labels: Vec<bool> = flips[..n].to_vec();
                // Guarantee both classes are present.
                labels[0] = false;
                labels[n - 1] = true;
                let names = (0..rows[0].len()).map(|i| format!("f{i}")).collect();
                let mut data = Dataset::new(names);
                for (r, &l) in rows.iter().zip(&labels) {
                    data.push(r.clone(), l);
                }
                let model = GaussianNaiveBayes.fit_model(&data).unwrap();
                let reference = reference_model(&rows, &labels);
                prop_assert_eq!(&model.log_priors, &reference.log_priors);
                prop_assert_eq!(&model.params, &reference.params);
                for probe in rows.iter().take(3) {
                    prop_assert_eq!(model.decision(probe), reference.decision(probe));
                }
            }
        }
    }
}
