//! Labeled datasets of numeric feature vectors.

use serde::{Deserialize, Serialize};

use crate::linalg::Matrix;

/// A single labeled observation: one aggregated sampling interval in the
/// paper's protocol (a 30-second average of per-second metric snapshots
/// plus the high-level state of that interval).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Feature values, aligned with [`Dataset::feature_names`].
    pub features: Vec<f64>,
    /// High-level state: `true` = overload, `false` = underload.
    pub label: bool,
}

/// A collection of [`Instance`]s sharing one feature schema.
///
/// This is the training/testing set `D = {u*_1, …, u*_N}` of the paper's
/// Section II-B.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    instances: Vec<Instance>,
}

impl Dataset {
    /// Create an empty dataset with the given feature schema.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            instances: Vec::new(),
        }
    }

    /// Append an instance.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` does not match the schema width.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "instance width {} != schema width {}",
            features.len(),
            self.feature_names.len()
        );
        self.instances.push(Instance { features, label });
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of features (columns).
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of instances (rows).
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` if the dataset holds no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instances as a slice.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Iterate over instances.
    pub fn iter(&self) -> std::slice::Iter<'_, Instance> {
        self.instances.iter()
    }

    /// Count of positive (overload) instances.
    pub fn n_positive(&self) -> usize {
        self.instances.iter().filter(|i| i.label).count()
    }

    /// Fraction of positive instances, or `None` when empty.
    pub fn positive_rate(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.n_positive() as f64 / self.len() as f64)
        }
    }

    /// The distinct labels present.
    pub fn classes(&self) -> Vec<bool> {
        let pos = self.instances.iter().any(|i| i.label);
        let neg = self.instances.iter().any(|i| !i.label);
        match (neg, pos) {
            (true, true) => vec![false, true],
            (true, false) => vec![false],
            (false, true) => vec![true],
            (false, false) => vec![],
        }
    }

    /// Values of one feature column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.n_features(), "column {col} out of range");
        self.instances.iter().map(|i| i.features[col]).collect()
    }

    /// A new dataset restricted to the given feature columns (in the given
    /// order). Used by attribute selection.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn project(&self, columns: &[usize]) -> Dataset {
        let names = columns
            .iter()
            .map(|&c| {
                assert!(c < self.n_features(), "column {c} out of range");
                self.feature_names[c].clone()
            })
            .collect();
        let mut out = Dataset::new(names);
        for inst in &self.instances {
            out.push(
                columns.iter().map(|&c| inst.features[c]).collect(),
                inst.label,
            );
        }
        out
    }

    /// A new dataset containing the rows at `rows` (in order).
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone());
        for &r in rows {
            let inst = &self.instances[r];
            out.push(inst.features.clone(), inst.label);
        }
        out
    }

    /// Concatenate another dataset with the same schema onto this one.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.feature_names, other.feature_names, "schema mismatch");
        self.instances.extend(other.instances.iter().cloned());
    }

    /// Copy the feature vectors into one contiguous row-major [`Matrix`]
    /// (row `r` = instance `r`). Hot paths iterate this instead of chasing
    /// one heap pointer per instance.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no instances or no features.
    pub fn to_matrix(&self) -> Matrix {
        let cols = self.n_features();
        let mut data = Vec::with_capacity(self.len() * cols);
        for inst in &self.instances {
            data.extend_from_slice(&inst.features);
        }
        Matrix::from_flat(self.len(), cols, data)
    }

    /// Per-column mean and standard deviation (population), used for
    /// feature standardization. Columns with zero variance get σ = 1 so
    /// that scaling is a no-op for them.
    pub fn column_stats(&self) -> Vec<(f64, f64)> {
        let n = self.len().max(1) as f64;
        (0..self.n_features())
            .map(|c| {
                let col = self.column(c);
                let mean = col.iter().sum::<f64>() / n;
                let var = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                let sd = var.sqrt();
                (mean, if sd > 1e-12 { sd } else { 1.0 })
            })
            .collect()
    }
}

impl Extend<Instance> for Dataset {
    fn extend<T: IntoIterator<Item = Instance>>(&mut self, iter: T) {
        for inst in iter {
            assert_eq!(
                inst.features.len(),
                self.feature_names.len(),
                "instance width mismatch in extend"
            );
            self.instances.push(inst);
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Instance;
    type IntoIter = std::slice::Iter<'a, Instance>;

    fn into_iter(self) -> Self::IntoIter {
        self.instances.iter()
    }
}

/// A per-column affine standardizer (z-scoring) fitted on a training set
/// and applied to both training and test features, as required by the SVM
/// and useful for linear regression conditioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    stats: Vec<(f64, f64)>,
}

impl Scaler {
    /// Fit a scaler to a dataset's columns.
    pub fn fit(data: &Dataset) -> Scaler {
        Scaler {
            stats: data.column_stats(),
        }
    }

    /// Standardize one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the fitted width.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(
            features.len(),
            self.stats.len(),
            "width mismatch in transform"
        );
        features
            .iter()
            .zip(&self.stats)
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardize a whole dataset.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.feature_names().to_vec());
        for inst in data {
            out.push(self.transform(&inst.features), inst.label);
        }
        out
    }

    /// Standardize a whole dataset directly into a contiguous row-major
    /// [`Matrix`], skipping the per-instance `Vec` allocations of
    /// [`Scaler::transform_dataset`].
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its width differs from the
    /// fitted width.
    pub fn transform_matrix(&self, data: &Dataset) -> Matrix {
        let mut out = Vec::with_capacity(data.len() * self.stats.len());
        for inst in data {
            assert_eq!(
                inst.features.len(),
                self.stats.len(),
                "width mismatch in transform"
            );
            for (v, (m, s)) in inst.features.iter().zip(&self.stats) {
                out.push((v - m) / s);
            }
        }
        Matrix::from_flat(data.len(), self.stats.len(), out)
    }

    /// Number of columns the scaler was fitted on.
    pub fn dimension(&self) -> usize {
        self.stats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        d.push(vec![1.0, 10.0], false);
        d.push(vec![2.0, 20.0], true);
        d.push(vec![3.0, 30.0], true);
        d
    }

    #[test]
    fn push_and_counts() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_positive(), 2);
        assert_eq!(d.positive_rate(), Some(2.0 / 3.0));
        assert_eq!(d.classes(), vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "instance width")]
    fn push_wrong_width_panics() {
        let mut d = sample();
        d.push(vec![1.0], false);
    }

    #[test]
    fn column_extraction() {
        let d = sample();
        assert_eq!(d.column(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.column(1), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn projection_keeps_order_and_labels() {
        let d = sample();
        let p = d.project(&[1]);
        assert_eq!(p.feature_names(), &["y".to_string()]);
        assert_eq!(p.column(0), vec![10.0, 20.0, 30.0]);
        assert_eq!(p.n_positive(), 2);
    }

    #[test]
    fn select_rows_subsets() {
        let d = sample();
        let s = d.select_rows(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0), vec![3.0, 1.0]);
        assert_eq!(s.instances()[0].label, true);
    }

    #[test]
    fn column_stats_zero_variance_guard() {
        let mut d = Dataset::new(vec!["c".into()]);
        d.push(vec![5.0], false);
        d.push(vec![5.0], true);
        let stats = d.column_stats();
        assert_eq!(stats[0].0, 5.0);
        assert_eq!(stats[0].1, 1.0);
    }

    #[test]
    fn scaler_round_trip_zero_mean_unit_var() {
        let d = sample();
        let scaler = Scaler::fit(&d);
        let t = scaler.transform_dataset(&d);
        let stats = t.column_stats();
        for (m, s) in stats {
            assert!(m.abs() < 1e-9, "mean {m}");
            assert!((s - 1.0).abs() < 1e-9, "sd {s}");
        }
    }

    #[test]
    fn classes_single_and_empty() {
        let mut d = Dataset::new(vec!["x".into()]);
        assert!(d.classes().is_empty());
        assert_eq!(d.positive_rate(), None);
        d.push(vec![0.0], true);
        assert_eq!(d.classes(), vec![true]);
    }

    #[test]
    fn to_matrix_preserves_rows() {
        let d = sample();
        let m = d.to_matrix();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        for (r, inst) in d.iter().enumerate() {
            assert_eq!(m.row(r), inst.features.as_slice());
        }
    }

    #[test]
    fn transform_matrix_matches_transform_dataset() {
        let d = sample();
        let scaler = Scaler::fit(&d);
        let m = scaler.transform_matrix(&d);
        let t = scaler.transform_dataset(&d);
        for (r, inst) in t.iter().enumerate() {
            assert_eq!(m.row(r), inst.features.as_slice());
        }
    }

    #[test]
    fn extend_from_matches_schema() {
        let mut a = sample();
        let b = sample();
        a.extend_from(&b);
        assert_eq!(a.len(), 6);
    }
}
