//! Minimal dense linear algebra: just enough for ridge regression's normal
//! equations. Row-major, f64 only.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].len();
        assert!(cols > 0, "empty rows");
        let mut m = Matrix::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "ragged row {i}");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build from a flat row-major buffer (`data[r * cols + c]`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over the rows as contiguous slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `Aᵀ · A`, the Gram matrix (used by the normal equations).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }

    /// `Aᵀ · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c] += self[(r, c)] * v[r];
            }
        }
        out
    }

    /// Solve `self · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the matrix is singular (pivot below `1e-12`) or not
    /// square, or if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrix> {
        if self.rows != self.cols {
            return Err(SingularMatrix::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(SingularMatrix::BadRhs {
                expected: self.rows,
                found: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(SingularMatrix::Singular { column: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for c in (col + 1)..n {
                s -= a[col * n + c] * x[c];
            }
            x[col] = s / a[col * n + col];
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SingularMatrix::NonFinite);
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

/// Error from [`Matrix::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SingularMatrix {
    /// The system matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// The right-hand side has the wrong length.
    BadRhs {
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// A pivot vanished at the given column.
    Singular {
        /// Column at which elimination failed.
        column: usize,
    },
    /// The solution contained NaN or infinity.
    NonFinite,
}

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SingularMatrix::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, not square")
            }
            SingularMatrix::BadRhs { expected, found } => {
                write!(f, "rhs length {found}, expected {expected}")
            }
            SingularMatrix::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SingularMatrix::NonFinite => write!(f, "solution is not finite"),
        }
    }
}

impl std::error::Error for SingularMatrix {}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let i = Matrix::identity(3);
        let x = i.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10 => x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero in the top-left needs a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SingularMatrix::Singular { .. })
        ));
    }

    #[test]
    fn not_square_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert!(matches!(
            a.solve(&[1.0]),
            Err(SingularMatrix::NotSquare { .. })
        ));
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        assert_eq!(g[(0, 1)], g[(1, 0)]);
        assert!(g[(0, 0)] >= 0.0 && g[(1, 1)] >= 0.0);
        assert_eq!(g[(0, 0)], 1.0 + 9.0 + 25.0);
    }

    #[test]
    fn transpose_mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = a.transpose_mul_vec(&[1.0, 1.0]);
        assert_eq!(v, vec![4.0, 6.0]);
    }

    #[test]
    fn dot_and_distance() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn rows_are_contiguous_views() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.row(0), &[1.0, 2.0]);
        assert_eq!(a.row(2), &[5.0, 6.0]);
        let collected: Vec<&[f64]> = a.row_iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], &[3.0, 4.0]);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let flat = Matrix::from_flat(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let rows = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(flat, rows);
    }

    #[test]
    #[should_panic(expected = "flat buffer length mismatch")]
    fn from_flat_rejects_bad_lengths() {
        let _ = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_bounds_checked() {
        let a = Matrix::from_rows(&[vec![1.0]]);
        let _ = a.row(1);
    }
}
