//! Information-theoretic quantities over discretized attributes: entropy,
//! information gain (the paper's attribute-relevance score, Section II-B.2)
//! and conditional mutual information (the TAN tree weight).
//!
//! Bin indices are small (equal-frequency discretization produces at most
//! a handful of bins), so all counting uses dense bin-indexed arrays:
//! no hashing on the hot path, and summation order is a fixed function of
//! the bin indices rather than of a hash map's iteration order.

/// Shannon entropy (base 2) of a discrete distribution given by counts.
///
/// Zero-count symbols contribute nothing; an empty or all-zero histogram
/// has entropy 0.
pub fn entropy_from_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Shannon entropy (base 2) of a boolean label sequence.
pub fn label_entropy(labels: &[bool]) -> f64 {
    let pos = labels.iter().filter(|&&l| l).count();
    entropy_from_counts(&[pos, labels.len() - pos])
}

/// Information gain `IG(C; A) = H(C) − H(C | A)` of a discretized
/// attribute `A` (bin indices) about the boolean class `C`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn information_gain(bins: &[usize], labels: &[bool]) -> f64 {
    assert_eq!(bins.len(), labels.len(), "attribute/label length mismatch");
    if bins.is_empty() {
        return 0.0;
    }
    let h_c = label_entropy(labels);
    // Dense (pos, neg) label counts per bin, indexed by bin.
    let k = bins.iter().copied().max().unwrap_or(0) + 1;
    let mut groups: Vec<(usize, usize)> = vec![(0, 0); k];
    for (&b, &l) in bins.iter().zip(labels) {
        if l {
            groups[b].0 += 1;
        } else {
            groups[b].1 += 1;
        }
    }
    let n = bins.len() as f64;
    let h_c_given_a: f64 = groups
        .iter()
        .filter(|&&(pos, neg)| pos + neg > 0)
        .map(|&(pos, neg)| {
            let w = (pos + neg) as f64 / n;
            w * entropy_from_counts(&[pos, neg])
        })
        .sum();
    (h_c - h_c_given_a).max(0.0)
}

/// Conditional mutual information `I(A; B | C)` between two discretized
/// attributes given the boolean class, in bits. This is the edge weight of
/// the Chow–Liu tree TAN builds.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn conditional_mutual_information(a: &[usize], b: &[usize], labels: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "attribute length mismatch");
    assert_eq!(a.len(), labels.len(), "attribute/label length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    // Dense joint and marginal counts, indexed by (class, bin).
    let ka = a.iter().copied().max().unwrap_or(0) + 1;
    let kb = b.iter().copied().max().unwrap_or(0) + 1;
    let mut joint: Vec<usize> = vec![0; 2 * ka * kb];
    let mut marg_a: Vec<usize> = vec![0; 2 * ka];
    let mut marg_b: Vec<usize> = vec![0; 2 * kb];
    let mut class_count = [0usize; 2];
    for ((&ai, &bi), &l) in a.iter().zip(b).zip(labels) {
        let c = usize::from(l);
        joint[(c * ka + ai) * kb + bi] += 1;
        marg_a[c * ka + ai] += 1;
        marg_b[c * kb + bi] += 1;
        class_count[c] += 1;
    }
    let n_f = n as f64;
    let mut cmi = 0.0;
    for (c, &cc) in class_count.iter().enumerate() {
        if cc == 0 {
            continue;
        }
        let p_c = cc as f64 / n_f;
        for ai in 0..ka {
            let ac = marg_a[c * ka + ai];
            if ac == 0 {
                continue;
            }
            let p_ac = ac as f64 / n_f;
            for bi in 0..kb {
                let count = joint[(c * ka + ai) * kb + bi];
                if count == 0 {
                    continue;
                }
                let p_abc = count as f64 / n_f;
                let p_bc = marg_b[c * kb + bi] as f64 / n_f;
                // I = Σ p(a,b,c) log2( p(a,b,c)·p(c) / (p(a,c)·p(b,c)) )
                cmi += p_abc * ((p_abc * p_c) / (p_ac * p_bc)).log2();
            }
        }
    }
    cmi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_of_fair_coin_is_one() {
        assert!((entropy_from_counts(&[5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_certainty_is_zero() {
        assert_eq!(entropy_from_counts(&[10, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[]), 0.0);
    }

    #[test]
    fn perfect_attribute_gains_full_entropy() {
        let bins = vec![0, 0, 0, 1, 1, 1];
        let labels = vec![false, false, false, true, true, true];
        let ig = information_gain(&bins, &labels);
        assert!((ig - 1.0).abs() < 1e-12);
    }

    #[test]
    fn irrelevant_attribute_gains_nothing() {
        let bins = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let labels = vec![false, false, true, true, false, false, true, true];
        let ig = information_gain(&bins, &labels);
        assert!(ig.abs() < 1e-12);
    }

    #[test]
    fn cmi_zero_for_conditionally_independent() {
        // Given the class, A and B are both constant → CMI 0.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 0, 1, 1];
        let labels = vec![false, false, true, true];
        // A and B are copies, but they are constant *within* each class,
        // so conditioned on C there is no residual information.
        let cmi = conditional_mutual_information(&a, &b, &labels);
        assert!(cmi.abs() < 1e-12);
    }

    #[test]
    fn cmi_positive_for_dependent_within_class() {
        // Within each class, B copies A while A varies → strong CMI.
        let a = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let labels = vec![false, false, false, false, true, true, true, true];
        let cmi = conditional_mutual_information(&a, &b, &labels);
        assert!(cmi > 0.9, "cmi {cmi}");
    }

    #[test]
    fn label_entropy_matches_counts() {
        assert!((label_entropy(&[true, false]) - 1.0).abs() < 1e-12);
        assert_eq!(label_entropy(&[true, true]), 0.0);
        assert_eq!(label_entropy(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn information_gain_bounded_by_class_entropy(
            data in prop::collection::vec((0usize..4, any::<bool>()), 1..200)
        ) {
            let bins: Vec<usize> = data.iter().map(|d| d.0).collect();
            let labels: Vec<bool> = data.iter().map(|d| d.1).collect();
            let ig = information_gain(&bins, &labels);
            let h = label_entropy(&labels);
            prop_assert!(ig >= 0.0);
            prop_assert!(ig <= h + 1e-9, "ig {} > H(C) {}", ig, h);
        }

        #[test]
        fn cmi_is_nonnegative_and_symmetric(
            data in prop::collection::vec((0usize..3, 0usize..3, any::<bool>()), 1..200)
        ) {
            let a: Vec<usize> = data.iter().map(|d| d.0).collect();
            let b: Vec<usize> = data.iter().map(|d| d.1).collect();
            let labels: Vec<bool> = data.iter().map(|d| d.2).collect();
            let ab = conditional_mutual_information(&a, &b, &labels);
            let ba = conditional_mutual_information(&b, &a, &labels);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() < 1e-9, "asymmetric: {} vs {}", ab, ba);
        }
    }

    mod dense_counting_equivalence {
        //! The dense bin-indexed counters must agree with the original
        //! hash-map-grouped implementations (up to summation-order ulps).
        use super::super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// The pre-optimization information gain: group label counts per
        /// bin in a hash map.
        fn reference_information_gain(bins: &[usize], labels: &[bool]) -> f64 {
            if bins.is_empty() {
                return 0.0;
            }
            let h_c = label_entropy(labels);
            let mut groups: HashMap<usize, (usize, usize)> = HashMap::new();
            for (&b, &l) in bins.iter().zip(labels) {
                let e = groups.entry(b).or_insert((0, 0));
                if l {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
            let n = bins.len() as f64;
            let h_c_given_a: f64 = groups
                .values()
                .map(|&(pos, neg)| {
                    let w = (pos + neg) as f64 / n;
                    w * entropy_from_counts(&[pos, neg])
                })
                .sum();
            (h_c - h_c_given_a).max(0.0)
        }

        /// The pre-optimization CMI: joint and marginal counts in hash
        /// maps, summing over the joint entries.
        fn reference_cmi(a: &[usize], b: &[usize], labels: &[bool]) -> f64 {
            let n = a.len();
            if n == 0 {
                return 0.0;
            }
            let mut joint: HashMap<(usize, usize, usize), usize> = HashMap::new();
            let mut marg_a: HashMap<(usize, usize), usize> = HashMap::new();
            let mut marg_b: HashMap<(usize, usize), usize> = HashMap::new();
            let mut class_count = [0usize; 2];
            for ((&ai, &bi), &l) in a.iter().zip(b).zip(labels) {
                let c = usize::from(l);
                *joint.entry((c, ai, bi)).or_insert(0) += 1;
                *marg_a.entry((c, ai)).or_insert(0) += 1;
                *marg_b.entry((c, bi)).or_insert(0) += 1;
                class_count[c] += 1;
            }
            let n_f = n as f64;
            let mut cmi = 0.0;
            for (&(c, ai, bi), &count) in &joint {
                let p_abc = count as f64 / n_f;
                let p_c = class_count[c] as f64 / n_f;
                let p_ac = marg_a[&(c, ai)] as f64 / n_f;
                let p_bc = marg_b[&(c, bi)] as f64 / n_f;
                cmi += p_abc * ((p_abc * p_c) / (p_ac * p_bc)).log2();
            }
            cmi.max(0.0)
        }

        proptest! {
            #[test]
            fn information_gain_matches_hashmap_reference(
                data in prop::collection::vec((0usize..6, any::<bool>()), 0..200)
            ) {
                let bins: Vec<usize> = data.iter().map(|d| d.0).collect();
                let labels: Vec<bool> = data.iter().map(|d| d.1).collect();
                let dense = information_gain(&bins, &labels);
                let reference = reference_information_gain(&bins, &labels);
                prop_assert!((dense - reference).abs() < 1e-9,
                             "ig {} vs {}", dense, reference);
            }

            #[test]
            fn cmi_matches_hashmap_reference(
                data in prop::collection::vec((0usize..4, 0usize..4, any::<bool>()), 0..200)
            ) {
                let a: Vec<usize> = data.iter().map(|d| d.0).collect();
                let b: Vec<usize> = data.iter().map(|d| d.1).collect();
                let labels: Vec<bool> = data.iter().map(|d| d.2).collect();
                let dense = conditional_mutual_information(&a, &b, &labels);
                let reference = reference_cmi(&a, &b, &labels);
                prop_assert!((dense - reference).abs() < 1e-9,
                             "cmi {} vs {}", dense, reference);
            }
        }
    }
}
