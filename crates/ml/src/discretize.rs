//! Equal-frequency discretization of continuous attributes.
//!
//! TAN and the information-theoretic attribute scores operate on discrete
//! attributes; the paper's WEKA pipeline discretizes continuous counters
//! first. Bin boundaries are fitted on training data only and then applied
//! to unseen values (clamping to the outer bins).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Discretizer for one continuous column: maps a value to a bin index in
/// `0..n_bins` using cut points chosen so each bin holds roughly the same
/// number of training values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EqualFrequencyDiscretizer {
    /// Ascending cut points; value `v` falls in the first bin whose cut
    /// exceeds it. `cuts.len() + 1` bins exist conceptually, but duplicate
    /// cuts are removed so the realized bin count may be smaller than
    /// requested.
    cuts: Vec<f64>,
}

impl EqualFrequencyDiscretizer {
    /// Fit cut points from training values.
    ///
    /// `n_bins` is a target; ties in the data can reduce the realized
    /// number of bins. With fewer distinct values than bins, one bin per
    /// distinct value is produced.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins == 0` or `values` is empty.
    pub fn fit(values: &[f64], n_bins: usize) -> EqualFrequencyDiscretizer {
        assert!(n_bins > 0, "n_bins must be positive");
        assert!(!values.is_empty(), "cannot fit discretizer on no values");
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            // All non-finite: degenerate single bin.
            return EqualFrequencyDiscretizer { cuts: Vec::new() };
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = sorted.len();
        let mut cuts = Vec::with_capacity(n_bins.saturating_sub(1));
        for k in 1..n_bins {
            let idx = (k * n) / n_bins;
            if idx == 0 || idx >= n {
                continue;
            }
            // Midpoint between neighbours gives stable boundaries. A cut
            // between equal values separates nothing — skip it (this also
            // collapses constant columns to a single bin).
            if sorted[idx - 1] < sorted[idx] {
                cuts.push((sorted[idx - 1] + sorted[idx]) / 2.0);
            }
        }
        cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        EqualFrequencyDiscretizer { cuts }
    }

    /// Number of bins this discretizer can emit.
    pub fn n_bins(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Map a value to its bin index in `0..self.n_bins()`. Infinities
    /// clamp to the outer bins; NaN maps to bin 0.
    pub fn bin(&self, value: f64) -> usize {
        if value.is_nan() {
            return 0;
        }
        // cuts are ascending; count how many cuts the value passes.
        self.cuts.iter().take_while(|&&c| value > c).count()
    }

    /// The fitted cut points.
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }
}

/// Cache key for [`fit_cached`]: the exact bit patterns of the training
/// values plus the bin target. A hit can only occur for bit-identical
/// input, so the cached discretizer is exactly what a fresh fit would
/// produce — the cache can never change results, only skip work.
#[derive(PartialEq, Eq, Hash)]
struct FitKey {
    n_bins: usize,
    value_bits: Vec<u64>,
}

static FIT_CACHE: OnceLock<Mutex<HashMap<FitKey, EqualFrequencyDiscretizer>>> = OnceLock::new();

/// Entry cap for the fit memo; on overflow the memo resets rather than
/// growing without bound (a refit is cheap, unbounded memory is not).
const FIT_CACHE_CAP: usize = 1024;

/// Memoized [`EqualFrequencyDiscretizer::fit`].
///
/// Cross-validated forward selection re-discretizes identical fold
/// columns once per candidate attribute set (dozens of times per round);
/// this turns every repeat into a hash lookup. Safe under concurrency:
/// the key is the full input, so hits are referentially transparent.
///
/// # Panics
///
/// Same as [`EqualFrequencyDiscretizer::fit`].
pub fn fit_cached(values: &[f64], n_bins: usize) -> EqualFrequencyDiscretizer {
    let key = FitKey {
        n_bins,
        value_bits: values.iter().map(|v| v.to_bits()).collect(),
    };
    let cache = FIT_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("fit cache poisoned").get(&key) {
        return hit.clone();
    }
    let fitted = EqualFrequencyDiscretizer::fit(values, n_bins);
    let mut map = cache.lock().expect("fit cache poisoned");
    if map.len() >= FIT_CACHE_CAP {
        map.clear();
    }
    map.insert(key, fitted.clone());
    fitted
}

/// Fit one discretizer per column of a feature matrix.
///
/// # Panics
///
/// Panics if `rows` is empty or ragged, or `n_bins == 0`.
pub fn fit_columns(rows: &[Vec<f64>], n_bins: usize) -> Vec<EqualFrequencyDiscretizer> {
    assert!(!rows.is_empty(), "no rows to discretize");
    let width = rows[0].len();
    (0..width)
        .map(|c| {
            let col: Vec<f64> = rows
                .iter()
                .map(|r| {
                    assert_eq!(r.len(), width, "ragged feature rows");
                    r[c]
                })
                .collect();
            EqualFrequencyDiscretizer::fit(&col, n_bins)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn four_bins_quartiles() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let d = EqualFrequencyDiscretizer::fit(&values, 4);
        assert_eq!(d.n_bins(), 4);
        assert_eq!(d.bin(0.0), 0);
        assert_eq!(d.bin(30.0), 1);
        assert_eq!(d.bin(60.0), 2);
        assert_eq!(d.bin(99.0), 3);
    }

    #[test]
    fn out_of_range_clamps() {
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        let d = EqualFrequencyDiscretizer::fit(&values, 3);
        assert_eq!(d.bin(-100.0), 0);
        assert_eq!(d.bin(100.0), d.n_bins() - 1);
    }

    #[test]
    fn constant_column_single_bin() {
        let d = EqualFrequencyDiscretizer::fit(&[5.0; 20], 5);
        assert_eq!(d.n_bins(), 1);
        assert_eq!(d.bin(5.0), 0);
        assert_eq!(d.bin(-1.0), 0);
    }

    #[test]
    fn non_finite_values_go_to_bin_zero() {
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        let d = EqualFrequencyDiscretizer::fit(&values, 3);
        assert_eq!(d.bin(f64::NAN), 0);
        assert_eq!(d.bin(f64::INFINITY), d.n_bins() - 1); // +inf passes all cuts
    }

    #[test]
    fn fit_ignores_non_finite_training_values() {
        let mut values: Vec<f64> = (0..50).map(f64::from).collect();
        values.push(f64::NAN);
        let d = EqualFrequencyDiscretizer::fit(&values, 2);
        assert_eq!(d.n_bins(), 2);
    }

    #[test]
    fn fit_columns_width() {
        let rows = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let ds = fit_columns(&rows, 2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].bin(1.0), 0);
        assert_eq!(ds[0].bin(4.0), 1);
        assert_eq!(ds[1].bin(40.0), 1);
    }

    #[test]
    fn fit_cached_repeat_calls_agree() {
        let values: Vec<f64> = (0..40).map(|i| f64::from(i % 13)).collect();
        let first = fit_cached(&values, 4);
        let second = fit_cached(&values, 4);
        assert_eq!(first, second);
        assert_eq!(first, EqualFrequencyDiscretizer::fit(&values, 4));
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn fit_cached_rejects_empty_input() {
        let _ = fit_cached(&[], 3);
    }

    proptest! {
        #[test]
        fn fit_cached_matches_fit(values in prop::collection::vec(-1e6f64..1e6, 1..120),
                                  n_bins in 1usize..10) {
            prop_assert_eq!(
                fit_cached(&values, n_bins),
                EqualFrequencyDiscretizer::fit(&values, n_bins)
            );
        }

        #[test]
        fn bins_always_in_range(values in prop::collection::vec(-1e6f64..1e6, 1..200),
                                probes in prop::collection::vec(-1e7f64..1e7, 1..50),
                                n_bins in 1usize..10) {
            let d = EqualFrequencyDiscretizer::fit(&values, n_bins);
            prop_assert!(d.n_bins() >= 1 && d.n_bins() <= n_bins);
            for p in probes {
                prop_assert!(d.bin(p) < d.n_bins());
            }
        }

        #[test]
        fn binning_is_monotone(values in prop::collection::vec(-1e3f64..1e3, 2..100),
                               n_bins in 2usize..8) {
            let d = EqualFrequencyDiscretizer::fit(&values, n_bins);
            let mut probes = values.clone();
            probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = 0usize;
            for p in probes {
                let b = d.bin(p);
                prop_assert!(b >= last, "bin decreased for increasing value");
                last = b;
            }
        }

        #[test]
        fn cuts_are_strictly_ascending(values in prop::collection::vec(-1e3f64..1e3, 1..100),
                                       n_bins in 1usize..10) {
            let d = EqualFrequencyDiscretizer::fit(&values, n_bins);
            for w in d.cuts().windows(2) {
                prop_assert!(w[0] < w[1] + 1e-12);
            }
        }
    }
}
