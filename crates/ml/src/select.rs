//! Attribute selection: rank attributes by information gain, then add them
//! greedily while 10-fold cross-validated accuracy improves — the paper's
//! iterative selection procedure (Section II-B.2).

use webcap_parallel::{par_map, Parallelism};

use crate::cv::cross_validate;
use crate::data::Dataset;
use crate::discretize::EqualFrequencyDiscretizer;
use crate::info::information_gain;
use crate::{FitError, Learner};

/// Outcome of forward attribute selection.
#[derive(Debug, Clone)]
pub struct SelectionReport {
    /// Indices (into the original dataset) of the selected attributes, in
    /// selection order.
    pub selected: Vec<usize>,
    /// Cross-validated balanced accuracy of the final attribute set.
    pub cv_balanced_accuracy: f64,
    /// Information gain of every original attribute (index-aligned).
    pub gains: Vec<f64>,
}

impl SelectionReport {
    /// Selected attribute names resolved against the dataset schema.
    pub fn selected_names(&self, data: &Dataset) -> Vec<String> {
        self.selected
            .iter()
            .map(|&i| data.feature_names()[i].clone())
            .collect()
    }
}

/// Options for [`forward_select`].
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct SelectionOptions {
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Bins used when discretizing attributes for the information-gain
    /// ranking.
    pub gain_bins: usize,
    /// Upper bound on the number of attributes to keep.
    pub max_attributes: usize,
    /// Upper bound on the number of ranked candidates to *try* (each trial
    /// costs a full cross validation); only the top-ranked candidates by
    /// information gain are considered.
    pub max_candidates: usize,
    /// Minimum cross-validated improvement required to keep an attribute.
    pub min_improvement: f64,
    /// RNG seed for fold assignment.
    pub seed: u64,
}

impl Default for SelectionOptions {
    fn default() -> SelectionOptions {
        SelectionOptions {
            folds: 10,
            gain_bins: 5,
            max_attributes: 8,
            max_candidates: 24,
            min_improvement: 1e-3,
            seed: 0xa77,
        }
    }
}

/// Greedy forward selection of attributes by information-gain order.
///
/// Attributes are ranked once by information gain, then considered in
/// descending order; each candidate is kept only if adding it improves the
/// cross-validated balanced accuracy by at least
/// [`SelectionOptions::min_improvement`]. The first-ranked attribute is
/// always kept so the result is never empty.
///
/// Equivalent to [`forward_select_par`] with
/// [`Parallelism::Sequential`].
///
/// # Errors
///
/// Returns a [`FitError`] if the dataset is empty or single-class, or if
/// even the best single attribute cannot be cross-validated.
pub fn forward_select(
    learner: &dyn Learner,
    data: &Dataset,
    options: &SelectionOptions,
) -> Result<SelectionReport, FitError> {
    forward_select_par(learner, data, options, Parallelism::Sequential)
}

/// [`forward_select`] with the two expensive inner loops fanned out over
/// `par` worker threads: the per-attribute information-gain ranking, and
/// the per-candidate cross-validation trials.
///
/// The greedy accept/reject scan is inherently sequential (each trial set
/// contains every previously accepted attribute), so candidates are
/// scored **speculatively in chunks** of one per worker against the
/// current accepted set; the scan then walks the chunk in rank order and,
/// at the first acceptance, discards the remaining speculative scores and
/// starts a fresh chunk after the accepted candidate. Every decision is
/// therefore made on a score computed against exactly the accepted set
/// the sequential loop would have used — the selected attribute set, the
/// reported balanced accuracy, and the error behaviour are bit-identical
/// at every thread count, and at one worker the chunk size is 1, which
/// *is* the sequential loop (no speculative waste).
///
/// # Errors
///
/// Identical to [`forward_select`].
pub fn forward_select_par(
    learner: &dyn Learner,
    data: &Dataset,
    options: &SelectionOptions,
    par: Parallelism,
) -> Result<SelectionReport, FitError> {
    if data.is_empty() {
        return Err(FitError::EmptyDataset);
    }
    let classes = data.classes();
    if classes.len() < 2 {
        return Err(FitError::SingleClass(classes[0]));
    }
    let labels: Vec<bool> = data.iter().map(|i| i.label).collect();

    // Rank attributes by information gain over discretized values. Each
    // column's gain is independent of the others — a pure fan-out.
    let gains: Vec<f64> = par_map(par, (0..data.n_features()).collect(), |c| {
        let col = data.column(c);
        let disc = EqualFrequencyDiscretizer::fit(&col, options.gain_bins);
        let bins: Vec<usize> = col.iter().map(|&v| disc.bin(v)).collect();
        information_gain(&bins, &labels)
    });
    let mut order: Vec<usize> = (0..data.n_features()).collect();
    order.sort_by(|&a, &b| gains[b].partial_cmp(&gains[a]).expect("gains are finite"));

    let candidates: Vec<usize> = order
        .iter()
        .take(options.max_candidates.max(1))
        .copied()
        .collect();
    let mut selected: Vec<usize> = Vec::new();
    let mut best_ba = 0.0f64;
    let mut pos = 0;
    'outer: while pos < candidates.len() && selected.len() < options.max_attributes {
        // Score the next chunk of candidates speculatively against the
        // current accepted set. Chunk size = worker count, so sequential
        // execution degenerates to scoring exactly one candidate at a time.
        let remaining = candidates.len() - pos;
        let chunk_len = par.worker_count(remaining).min(remaining);
        let chunk = candidates[pos..pos + chunk_len].to_vec();
        let scores: Vec<Result<f64, FitError>> = par_map(par, chunk, |candidate| {
            let mut trial = selected.clone();
            trial.push(candidate);
            let projected = data.project(&trial);
            // Inner CV stays sequential: the fan-out lives at the
            // candidate level here.
            cross_validate(learner, &projected, options.folds, options.seed)
                .map(|outcome| outcome.balanced_accuracy())
        });

        // Sequential accept/reject scan over the chunk, in rank order.
        for (offset, score) in scores.into_iter().enumerate() {
            let candidate = candidates[pos + offset];
            match score {
                Err(e) => {
                    if selected.is_empty() {
                        return Err(e);
                    }
                    // Unfittable trial: skip this candidate.
                }
                Ok(ba) => {
                    if selected.is_empty() || ba >= best_ba + options.min_improvement {
                        selected.push(candidate);
                        best_ba = best_ba.max(ba);
                        if selected.len() == 1 {
                            best_ba = ba;
                        }
                        // Accepted: scores for the rest of the chunk were
                        // computed against a stale accepted set — discard
                        // them and rescore from the next candidate.
                        pos += offset + 1;
                        continue 'outer;
                    }
                }
            }
        }
        // Whole chunk rejected: move past it.
        pos += chunk_len;
    }
    Ok(SelectionReport {
        selected,
        cv_balanced_accuracy: best_ba,
        gains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dataset where feature 0 is decisive, feature 1 is weakly
    /// informative, and features 2..5 are pure noise.
    fn informative_plus_noise(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let names = (0..5).map(|i| format!("f{i}")).collect();
        let mut data = Dataset::new(names);
        for _ in 0..n {
            let label: bool = rng.random();
            let f0 = if label { 2.0 } else { 0.0 } + rng.random::<f64>() * 0.5;
            let f1 = if label { 1.0 } else { 0.6 } + rng.random::<f64>();
            let noise: Vec<f64> = (0..3).map(|_| rng.random::<f64>() * 10.0).collect();
            data.push(vec![f0, f1, noise[0], noise[1], noise[2]], label);
        }
        data
    }

    #[test]
    fn picks_the_decisive_attribute_first() {
        let data = informative_plus_noise(1, 300);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        assert_eq!(
            report.selected[0], 0,
            "decisive attribute should rank first"
        );
        assert!(report.cv_balanced_accuracy > 0.95);
    }

    #[test]
    fn noise_attributes_are_rejected() {
        let data = informative_plus_noise(2, 300);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        // Pure-noise columns (2, 3, 4) should rarely survive; allow at most
        // one slipping in by chance.
        let noise_kept = report.selected.iter().filter(|&&i| i >= 2).count();
        assert!(noise_kept <= 1, "kept noise columns: {:?}", report.selected);
    }

    #[test]
    fn gains_are_index_aligned_and_ranked() {
        let data = informative_plus_noise(3, 300);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        assert_eq!(report.gains.len(), 5);
        assert!(
            report.gains[0] > report.gains[2],
            "decisive gain should beat noise"
        );
    }

    #[test]
    fn never_returns_empty_selection() {
        let data = informative_plus_noise(4, 100);
        let report = forward_select(
            Algorithm::LinearRegression.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        assert!(!report.selected.is_empty());
    }

    #[test]
    fn respects_max_attributes() {
        let data = informative_plus_noise(5, 200);
        let opts = SelectionOptions {
            max_attributes: 2,
            ..SelectionOptions::default()
        };
        let report =
            forward_select(Algorithm::NaiveBayes.learner().as_ref(), &data, &opts).unwrap();
        assert!(report.selected.len() <= 2);
    }

    #[test]
    fn selected_names_resolve() {
        let data = informative_plus_noise(6, 150);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        let names = report.selected_names(&data);
        assert_eq!(names.len(), report.selected.len());
        assert!(names.contains(&"f0".to_string()));
    }

    #[test]
    fn parallel_selection_matches_sequential_exactly() {
        let data = informative_plus_noise(9, 250);
        let opts = SelectionOptions::default();
        let learner = Algorithm::NaiveBayes.learner();
        let seq = forward_select(learner.as_ref(), &data, &opts).unwrap();
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let out = forward_select_par(learner.as_ref(), &data, &opts, par).unwrap();
            assert_eq!(out.selected, seq.selected, "{par}");
            assert_eq!(
                out.cv_balanced_accuracy.to_bits(),
                seq.cv_balanced_accuracy.to_bits(),
                "{par}"
            );
            assert_eq!(
                out.gains.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                seq.gains.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                "{par}"
            );
        }
    }

    #[test]
    fn single_class_errors() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..20 {
            data.push(vec![f64::from(i)], true);
        }
        let res = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        );
        assert_eq!(res.err(), Some(FitError::SingleClass(true)));
    }
}
