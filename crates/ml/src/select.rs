//! Attribute selection: rank attributes by information gain, then add them
//! greedily while 10-fold cross-validated accuracy improves — the paper's
//! iterative selection procedure (Section II-B.2).

use crate::cv::cross_validate;
use crate::data::Dataset;
use crate::discretize::EqualFrequencyDiscretizer;
use crate::info::information_gain;
use crate::{FitError, Learner};

/// Outcome of forward attribute selection.
#[derive(Debug, Clone)]
pub struct SelectionReport {
    /// Indices (into the original dataset) of the selected attributes, in
    /// selection order.
    pub selected: Vec<usize>,
    /// Cross-validated balanced accuracy of the final attribute set.
    pub cv_balanced_accuracy: f64,
    /// Information gain of every original attribute (index-aligned).
    pub gains: Vec<f64>,
}

impl SelectionReport {
    /// Selected attribute names resolved against the dataset schema.
    pub fn selected_names(&self, data: &Dataset) -> Vec<String> {
        self.selected.iter().map(|&i| data.feature_names()[i].clone()).collect()
    }
}

/// Options for [`forward_select`].
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct SelectionOptions {
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Bins used when discretizing attributes for the information-gain
    /// ranking.
    pub gain_bins: usize,
    /// Upper bound on the number of attributes to keep.
    pub max_attributes: usize,
    /// Upper bound on the number of ranked candidates to *try* (each trial
    /// costs a full cross validation); only the top-ranked candidates by
    /// information gain are considered.
    pub max_candidates: usize,
    /// Minimum cross-validated improvement required to keep an attribute.
    pub min_improvement: f64,
    /// RNG seed for fold assignment.
    pub seed: u64,
}

impl Default for SelectionOptions {
    fn default() -> SelectionOptions {
        SelectionOptions {
            folds: 10,
            gain_bins: 5,
            max_attributes: 8,
            max_candidates: 24,
            min_improvement: 1e-3,
            seed: 0xa77,
        }
    }
}

/// Greedy forward selection of attributes by information-gain order.
///
/// Attributes are ranked once by information gain, then considered in
/// descending order; each candidate is kept only if adding it improves the
/// cross-validated balanced accuracy by at least
/// [`SelectionOptions::min_improvement`]. The first-ranked attribute is
/// always kept so the result is never empty.
///
/// # Errors
///
/// Returns a [`FitError`] if the dataset is empty or single-class, or if
/// even the best single attribute cannot be cross-validated.
pub fn forward_select(
    learner: &dyn Learner,
    data: &Dataset,
    options: &SelectionOptions,
) -> Result<SelectionReport, FitError> {
    if data.is_empty() {
        return Err(FitError::EmptyDataset);
    }
    let classes = data.classes();
    if classes.len() < 2 {
        return Err(FitError::SingleClass(classes[0]));
    }
    let labels: Vec<bool> = data.iter().map(|i| i.label).collect();

    // Rank attributes by information gain over discretized values.
    let gains: Vec<f64> = (0..data.n_features())
        .map(|c| {
            let col = data.column(c);
            let disc = EqualFrequencyDiscretizer::fit(&col, options.gain_bins);
            let bins: Vec<usize> = col.iter().map(|&v| disc.bin(v)).collect();
            information_gain(&bins, &labels)
        })
        .collect();
    let mut order: Vec<usize> = (0..data.n_features()).collect();
    order.sort_by(|&a, &b| {
        gains[b].partial_cmp(&gains[a]).expect("gains are finite")
    });

    let mut selected: Vec<usize> = Vec::new();
    let mut best_ba = 0.0f64;
    for &candidate in order.iter().take(options.max_candidates.max(1)) {
        if selected.len() >= options.max_attributes {
            break;
        }
        let mut trial = selected.clone();
        trial.push(candidate);
        let projected = data.project(&trial);
        let outcome = match cross_validate(learner, &projected, options.folds, options.seed) {
            Ok(o) => o,
            Err(e) => {
                if selected.is_empty() {
                    return Err(e);
                }
                continue;
            }
        };
        let ba = outcome.balanced_accuracy();
        if selected.is_empty() || ba >= best_ba + options.min_improvement {
            selected = trial;
            best_ba = best_ba.max(ba);
            if selected.len() == 1 {
                best_ba = ba;
            }
        }
    }
    Ok(SelectionReport { selected, cv_balanced_accuracy: best_ba, gains })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dataset where feature 0 is decisive, feature 1 is weakly
    /// informative, and features 2..5 are pure noise.
    fn informative_plus_noise(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let names = (0..5).map(|i| format!("f{i}")).collect();
        let mut data = Dataset::new(names);
        for _ in 0..n {
            let label: bool = rng.random();
            let f0 = if label { 2.0 } else { 0.0 } + rng.random::<f64>() * 0.5;
            let f1 = if label { 1.0 } else { 0.6 } + rng.random::<f64>();
            let noise: Vec<f64> = (0..3).map(|_| rng.random::<f64>() * 10.0).collect();
            data.push(vec![f0, f1, noise[0], noise[1], noise[2]], label);
        }
        data
    }

    #[test]
    fn picks_the_decisive_attribute_first() {
        let data = informative_plus_noise(1, 300);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        assert_eq!(report.selected[0], 0, "decisive attribute should rank first");
        assert!(report.cv_balanced_accuracy > 0.95);
    }

    #[test]
    fn noise_attributes_are_rejected() {
        let data = informative_plus_noise(2, 300);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        // Pure-noise columns (2, 3, 4) should rarely survive; allow at most
        // one slipping in by chance.
        let noise_kept = report.selected.iter().filter(|&&i| i >= 2).count();
        assert!(noise_kept <= 1, "kept noise columns: {:?}", report.selected);
    }

    #[test]
    fn gains_are_index_aligned_and_ranked() {
        let data = informative_plus_noise(3, 300);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        assert_eq!(report.gains.len(), 5);
        assert!(report.gains[0] > report.gains[2], "decisive gain should beat noise");
    }

    #[test]
    fn never_returns_empty_selection() {
        let data = informative_plus_noise(4, 100);
        let report = forward_select(
            Algorithm::LinearRegression.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        assert!(!report.selected.is_empty());
    }

    #[test]
    fn respects_max_attributes() {
        let data = informative_plus_noise(5, 200);
        let opts = SelectionOptions { max_attributes: 2, ..SelectionOptions::default() };
        let report =
            forward_select(Algorithm::NaiveBayes.learner().as_ref(), &data, &opts).unwrap();
        assert!(report.selected.len() <= 2);
    }

    #[test]
    fn selected_names_resolve() {
        let data = informative_plus_noise(6, 150);
        let report = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        )
        .unwrap();
        let names = report.selected_names(&data);
        assert_eq!(names.len(), report.selected.len());
        assert!(names.contains(&"f0".to_string()));
    }

    #[test]
    fn single_class_errors() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..20 {
            data.push(vec![f64::from(i)], true);
        }
        let res = forward_select(
            Algorithm::NaiveBayes.learner().as_ref(),
            &data,
            &SelectionOptions::default(),
        );
        assert_eq!(res.err(), Some(FitError::SingleClass(true)));
    }
}
