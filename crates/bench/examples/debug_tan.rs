//! Debug: why does TAN underperform on the ordering/APP/HPC synopsis?
use webcap_bench::{test_instances, training_instances, TestWorkload};
use webcap_core::monitor::MetricLevel;
use webcap_core::synopsis::{PerformanceSynopsis, SynopsisSpec};
use webcap_ml::select::SelectionOptions;
use webcap_ml::Algorithm;
use webcap_sim::{SimConfig, TierId};
use webcap_tpcw::MixId;

fn main() {
    let cfg = SimConfig::testbed(101);
    let train = training_instances(MixId::Ordering, &cfg, 1.0, 0x7AB1 ^ MixId::Ordering as u64);
    let test = test_instances(TestWorkload::Ordering, &cfg, 1.0, 0xB1);
    for alg in [Algorithm::Tan, Algorithm::NaiveBayes] {
        let spec = SynopsisSpec {
            tier: TierId::App,
            workload: MixId::Ordering,
            level: MetricLevel::Hpc,
            algorithm: alg,
        };
        let syn = PerformanceSynopsis::train(spec, &train, &SelectionOptions::default()).unwrap();
        println!(
            "{alg}: cv {:.3} attrs {:?}",
            syn.cv_balanced_accuracy(),
            syn.selected_names()
        );
        let names = webcap_core::monitor::feature_names(MetricLevel::Hpc, TierId::App);
        let idx: Vec<usize> = syn
            .selected_names()
            .iter()
            .map(|n| names.iter().position(|x| x == n).unwrap())
            .collect();
        for w in &test {
            let f = w.features(MetricLevel::Hpc, TierId::App);
            let sel: Vec<String> = idx.iter().map(|&i| format!("{:.4}", f[i])).collect();
            let pred = syn.predict_instance(w);
            if pred != w.overloaded() {
                println!(
                    "  MISS t={:.0} actual={} vals={:?} thr={:.1} rt={:.2}",
                    w.t_end_s,
                    w.overloaded(),
                    sel,
                    w.throughput,
                    w.label.mean_response_time_s
                );
            }
        }
    }
}
