//! Debug: coordinated predictor behaviour on the browsing test.
use webcap_bench::{test_instances, TestWorkload};
use webcap_core::meter::{CapacityMeter, MeterConfig};
use webcap_core::monitor::MetricLevel;
use webcap_sim::SimConfig;

fn main() {
    let base = SimConfig::testbed(202);
    let mut cfg = MeterConfig::new(base.seed);
    cfg.sim = base.clone();
    cfg.level = MetricLevel::Hpc;
    cfg.duration_scale = 1.0;
    let mut meter = CapacityMeter::train(&cfg).unwrap();
    for syn in meter.synopses() {
        println!(
            "{} cv {:.3} {:?}",
            syn.spec(),
            syn.cv_balanced_accuracy(),
            syn.selected_names()
        );
    }
    let instances = test_instances(
        TestWorkload::Browsing,
        &base,
        1.0,
        0xF4 ^ TestWorkload::Browsing as u64,
    );
    meter.reset_history();
    println!(
        "{:>6} {:>6} {:>6} {:>8} {:>5} {:>5}",
        "t", "actual", "pred", "votes", "gpv", "hc"
    );
    for w in &instances {
        let votes: Vec<bool> = meter
            .synopses()
            .iter()
            .map(|s| s.predict_instance(w))
            .collect();
        let out = meter.predict(w);
        let vs: String = votes.iter().map(|&v| if v { '1' } else { '0' }).collect();
        if out.overloaded != w.overloaded() {
            println!(
                "{:>6.0} {:>6} {:>6} {:>8} {:>5} {:>5}  MISS",
                w.t_end_s,
                w.overloaded(),
                out.overloaded,
                vs,
                out.gpv,
                out.hc
            );
        } else {
            println!(
                "{:>6.0} {:>6} {:>6} {:>8} {:>5} {:>5}",
                w.t_end_s,
                w.overloaded(),
                out.overloaded,
                vs,
                out.gpv,
                out.hc
            );
        }
    }
}
