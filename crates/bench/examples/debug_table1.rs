//! Debug: browsing-test label balance and DB features.
use webcap_bench::{test_instances, training_instances, TestWorkload};
use webcap_core::monitor::MetricLevel;
use webcap_sim::{SimConfig, TierId};
use webcap_tpcw::MixId;

fn main() {
    let cfg = SimConfig::testbed(101);
    let scale = 1.0;
    let train = training_instances(
        MixId::Browsing,
        &cfg,
        scale,
        0x7AB1 ^ MixId::Browsing as u64,
    );
    let test = test_instances(TestWorkload::Browsing, &cfg, scale, 0xB0);
    let names = webcap_core::monitor::feature_names(MetricLevel::Hpc, TierId::Db);
    let miss_idx = names
        .iter()
        .position(|n| n.ends_with("l2_miss_rate"))
        .unwrap();
    let instr_idx = names
        .iter()
        .position(|n| n.ends_with("instr_per_s"))
        .unwrap();
    println!(
        "train: {} instances, {} overloaded",
        train.len(),
        train.iter().filter(|w| w.overloaded()).count()
    );
    println!(
        "test:  {} instances, {} overloaded",
        test.len(),
        test.iter().filter(|w| w.overloaded()).count()
    );
    println!(
        "{:>6} {:>5} {:>8} {:>8} {:>10} {:>8}",
        "t", "over", "thr", "miss", "instr/s", "rt"
    );
    for w in &test {
        let f = w.features(MetricLevel::Hpc, TierId::Db);
        println!(
            "{:>6.0} {:>5} {:>8.2} {:>8.4} {:>10.3e} {:>8.2}",
            w.t_end_s,
            w.overloaded(),
            w.throughput,
            f[miss_idx],
            f[instr_idx],
            w.label.mean_response_time_s
        );
    }
}
