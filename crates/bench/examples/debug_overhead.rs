//! Debug: why doesn't app collector overhead cost throughput at 500 EBs?
use webcap_sim::{run, SimConfig};
use webcap_tpcw::{Mix, TrafficProgram};

fn main() {
    for oh in [0.0, 0.10] {
        let mut cfg = SimConfig::testbed(8);
        cfg.app.collector_overhead = oh;
        let out = run(cfg, TrafficProgram::steady(Mix::ordering(), 500, 300.0));
        let tail = &out.samples[120..];
        let thr: f64 = tail.iter().map(|s| s.throughput()).sum::<f64>() / tail.len() as f64;
        let app_util: f64 = tail.iter().map(|s| s.app.utilization).sum::<f64>() / tail.len() as f64;
        let runnable: f64 =
            tail.iter().map(|s| s.app.avg_runnable).sum::<f64>() / tail.len() as f64;
        let pool: f64 = tail.iter().map(|s| s.app.pool_in_use_avg).sum::<f64>() / tail.len() as f64;
        let work: f64 =
            tail.iter().map(|s| s.app.delivered_work_s).sum::<f64>() / tail.len() as f64;
        println!("overhead {oh}: thr {thr:.2} app_util {app_util:.3} runnable {runnable:.1} pool {pool:.1} work {work:.3}");
    }
}
