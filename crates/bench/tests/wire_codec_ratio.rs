//! Acceptance gate for the binary wire codec: at the agent's default
//! batch size (32 samples per `SampleBatch`), binary encode+decode must
//! beat JSON by at least 3× on the median round-trip.
//!
//! Medians are taken over many interleaved repetitions so scheduling
//! noise hits both codecs alike; each repetition round-trips the same
//! frames through one reused buffer pair, mirroring the agent's and
//! collector's steady paths.

use std::hint::black_box;
use std::time::Instant;

use webcap_bench::harness::WIRE_BATCH;
use webcap_net::{read_frame, write_frame_codec, AppStats, Frame, WireCodec, WireSample};
use webcap_sim::{RtHistogram, TierSample};
use webcap_tpcw::MixId;

fn sample(seq: u64) -> WireSample {
    WireSample {
        seq,
        t_s: seq as f64 + 1.0,
        interval_s: 1.0,
        tier: TierSample {
            utilization: 0.3,
            delivered_work_s: 0.3,
            arrivals: 20,
            completions: 20,
            ..TierSample::default()
        },
        hpc: vec![0.5; 12],
        os: vec![0.1; 64],
        app: Some(AppStats {
            ebs_target: 10,
            ebs_active: 10,
            mix_id: MixId::Ordering,
            issued: 20,
            issued_browse: 10,
            completed: 20,
            completed_browse: 10,
            response_time_sum_s: 2.0,
            response_time_max_s: 0.4,
            in_flight: 1,
            response_times: RtHistogram::new(),
        }),
    }
}

fn batches(n: u64) -> Vec<Frame> {
    (0..n)
        .map(|f| {
            Frame::SampleBatch(
                (0..WIRE_BATCH as u64)
                    .map(|i| sample(f * WIRE_BATCH as u64 + i))
                    .collect(),
            )
        })
        .collect()
}

/// One timed repetition: encode every frame into a reused wire buffer,
/// then decode them all back. Returns nanoseconds.
fn round_trip_ns(
    frames: &[Frame],
    codec: WireCodec,
    wire: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
) -> u128 {
    wire.clear();
    let t0 = Instant::now();
    for frame in frames {
        write_frame_codec(&mut *wire, frame, codec, scratch).expect("bench frames encode");
    }
    let mut cursor: &[u8] = wire;
    for _ in 0..frames.len() {
        let frame = read_frame(&mut cursor).expect("bench frames decode");
        black_box(&frame);
    }
    let dt = t0.elapsed().as_nanos();
    assert!(cursor.is_empty(), "every byte consumed");
    dt
}

#[test]
fn binary_beats_json_by_3x_at_batch_32() {
    const FRAMES: u64 = 24;
    const REPS: usize = 31;
    let frames = batches(FRAMES);
    let mut wire: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();

    // Warm-up: touch both paths so first-use costs (allocator growth,
    // lazy serde machinery) land outside the measured repetitions.
    for codec in [WireCodec::Json, WireCodec::Binary] {
        round_trip_ns(&frames, codec, &mut wire, &mut scratch);
    }

    let mut json_ns: Vec<u128> = Vec::with_capacity(REPS);
    let mut bin_ns: Vec<u128> = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        json_ns.push(round_trip_ns(
            &frames,
            WireCodec::Json,
            &mut wire,
            &mut scratch,
        ));
        bin_ns.push(round_trip_ns(
            &frames,
            WireCodec::Binary,
            &mut wire,
            &mut scratch,
        ));
    }
    json_ns.sort_unstable();
    bin_ns.sort_unstable();
    let json_med = json_ns[REPS / 2];
    let bin_med = bin_ns[REPS / 2];

    assert!(bin_med > 0, "binary round trip is measurable");
    let ratio = json_med as f64 / bin_med as f64;
    assert!(
        ratio >= 3.0,
        "binary codec must beat JSON >= 3x at batch {WIRE_BATCH}: \
         json median {json_med} ns / binary median {bin_med} ns = {ratio:.2}x"
    );

    // And the frames had better be smaller, not just faster.
    wire.clear();
    for frame in &frames {
        write_frame_codec(&mut wire, frame, WireCodec::Json, &mut scratch).expect("encodes");
    }
    let json_bytes = wire.len();
    wire.clear();
    for frame in &frames {
        write_frame_codec(&mut wire, frame, WireCodec::Binary, &mut scratch).expect("encodes");
    }
    let bin_bytes = wire.len();
    assert!(
        bin_bytes * 2 < json_bytes,
        "binary wire size ({bin_bytes} B) must be under half of JSON ({json_bytes} B)"
    );
}
