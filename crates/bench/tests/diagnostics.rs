//! One-off diagnostics promoted from `examples/debug_*.rs` into real
//! (but `#[ignore]`d) integration tests.
//!
//! Each test replays one investigation behind the calibration notes in
//! EXPERIMENTS.md, with assertions pinning what it established, so the
//! probes stay compilable and re-runnable instead of rotting as unused
//! examples. They are ignored by default because each one replays
//! multi-minute simulated runs; run them on demand with
//!
//! ```sh
//! cargo test -p webcap-bench --test diagnostics -- --ignored --nocapture
//! ```

use webcap_bench::{test_instances, training_instances, TestWorkload};
use webcap_core::meter::{CapacityMeter, MeterConfig};
use webcap_core::monitor::MetricLevel;
use webcap_core::synopsis::{PerformanceSynopsis, SynopsisSpec};
use webcap_ml::select::SelectionOptions;
use webcap_ml::Algorithm;
use webcap_sim::{run, SimConfig, TierId};
use webcap_tpcw::{Mix, MixId, TrafficProgram};

/// Coordinated predictor behaviour on the browsing test (was
/// `debug_fig4`): prints every window's votes and checks that the
/// HPC-level meter stays well clear of coin-flipping — the Figure 4
/// measurement for this cell is ~86 % balanced accuracy.
#[test]
#[ignore = "replays a full training + test workload; minutes, not seconds"]
fn coordinated_predictor_tracks_the_browsing_test() {
    let base = SimConfig::testbed(202);
    let mut cfg = MeterConfig::new(base.seed);
    cfg.sim = base.clone();
    cfg.level = MetricLevel::Hpc;
    cfg.duration_scale = 1.0;
    let mut meter = CapacityMeter::train(&cfg).unwrap();
    for syn in meter.synopses() {
        println!(
            "{} cv {:.3} {:?}",
            syn.spec(),
            syn.cv_balanced_accuracy(),
            syn.selected_names()
        );
        let cv = syn.cv_balanced_accuracy();
        assert!((0.0..=1.0).contains(&cv), "cv accuracy out of range: {cv}");
    }
    let instances = test_instances(
        TestWorkload::Browsing,
        &base,
        1.0,
        0xF4 ^ TestWorkload::Browsing as u64,
    );
    assert!(!instances.is_empty(), "browsing test produced no windows");
    meter.reset_history();
    println!(
        "{:>6} {:>6} {:>6} {:>8} {:>5} {:>5}",
        "t", "actual", "pred", "votes", "gpv", "hc"
    );
    let mut hits = 0usize;
    for w in &instances {
        let votes: Vec<bool> = meter
            .synopses()
            .iter()
            .map(|s| s.predict_instance(w))
            .collect();
        let out = meter.predict(w);
        let vs: String = votes.iter().map(|&v| if v { '1' } else { '0' }).collect();
        let miss = if out.overloaded == w.overloaded() {
            hits += 1;
            ""
        } else {
            "  MISS"
        };
        println!(
            "{:>6.0} {:>6} {:>6} {:>8} {:>5} {:>5}{miss}",
            w.t_end_s,
            w.overloaded(),
            out.overloaded,
            vs,
            out.gpv,
            out.hc
        );
    }
    let accuracy = hits as f64 / instances.len() as f64;
    println!("window accuracy {accuracy:.3}");
    assert!(
        accuracy > 0.6,
        "HPC meter should beat coin-flipping on browsing; got {accuracy:.3}"
    );
}

/// TAN vs naive Bayes on the ordering/APP/HPC synopsis (was
/// `debug_tan`): both must train, select resolvable attributes, and
/// clear the 0.5 coin-flip floor in cross-validation; every miss is
/// printed with the selected feature values for inspection.
#[test]
#[ignore = "replays a full training + test workload; minutes, not seconds"]
fn tan_and_naive_bayes_train_the_ordering_app_synopsis() {
    let cfg = SimConfig::testbed(101);
    let train = training_instances(MixId::Ordering, &cfg, 1.0, 0x7AB1 ^ MixId::Ordering as u64);
    let test = test_instances(TestWorkload::Ordering, &cfg, 1.0, 0xB1);
    assert!(!test.is_empty(), "ordering test produced no windows");
    for alg in [Algorithm::Tan, Algorithm::NaiveBayes] {
        let spec = SynopsisSpec {
            tier: TierId::App,
            workload: MixId::Ordering,
            level: MetricLevel::Hpc,
            algorithm: alg,
        };
        let syn = PerformanceSynopsis::train(spec, &train, &SelectionOptions::default()).unwrap();
        println!(
            "{alg}: cv {:.3} attrs {:?}",
            syn.cv_balanced_accuracy(),
            syn.selected_names()
        );
        assert!(
            !syn.selected_names().is_empty(),
            "{alg}: forward selection kept no attributes"
        );
        assert!(
            syn.cv_balanced_accuracy() >= 0.5,
            "{alg}: below the coin-flip floor"
        );
        let names = webcap_core::monitor::feature_names(MetricLevel::Hpc, TierId::App);
        let idx: Vec<usize> = syn
            .selected_names()
            .iter()
            .map(|n| {
                names
                    .iter()
                    .position(|x| x == n)
                    .unwrap_or_else(|| panic!("{alg}: selected unknown feature {n}"))
            })
            .collect();
        for w in &test {
            let f = w.features(MetricLevel::Hpc, TierId::App);
            let sel: Vec<String> = idx.iter().map(|&i| format!("{:.4}", f[i])).collect();
            if syn.predict_instance(w) != w.overloaded() {
                println!(
                    "  MISS t={:.0} actual={} vals={:?} thr={:.1} rt={:.2}",
                    w.t_end_s,
                    w.overloaded(),
                    sel,
                    w.throughput,
                    w.label.mean_response_time_s
                );
            }
        }
    }
}

/// Browsing-test label balance and DB features (was `debug_table1`):
/// the Table I(a) browsing/DB cell is only meaningful if both classes
/// actually occur in training and the probed DB counters exist.
#[test]
#[ignore = "replays a full training + test workload; minutes, not seconds"]
fn browsing_instances_carry_both_classes_and_db_counters() {
    let cfg = SimConfig::testbed(101);
    let scale = 1.0;
    let train = training_instances(
        MixId::Browsing,
        &cfg,
        scale,
        0x7AB1 ^ MixId::Browsing as u64,
    );
    let test = test_instances(TestWorkload::Browsing, &cfg, scale, 0xB0);
    let names = webcap_core::monitor::feature_names(MetricLevel::Hpc, TierId::Db);
    let miss_idx = names
        .iter()
        .position(|n| n.ends_with("l2_miss_rate"))
        .expect("DB feature set lost its L2 miss rate");
    let instr_idx = names
        .iter()
        .position(|n| n.ends_with("instr_per_s"))
        .expect("DB feature set lost its instruction rate");
    let train_over = train.iter().filter(|w| w.overloaded()).count();
    println!("train: {} instances, {train_over} overloaded", train.len());
    println!(
        "test:  {} instances, {} overloaded",
        test.len(),
        test.iter().filter(|w| w.overloaded()).count()
    );
    assert!(
        train_over > 0 && train_over < train.len(),
        "training set must contain both classes ({train_over}/{})",
        train.len()
    );
    println!(
        "{:>6} {:>5} {:>8} {:>8} {:>10} {:>8}",
        "t", "over", "thr", "miss", "instr/s", "rt"
    );
    for w in &test {
        let f = w.features(MetricLevel::Hpc, TierId::Db);
        assert!(
            f[miss_idx].is_finite() && f[instr_idx].is_finite(),
            "non-finite DB counter at t={}",
            w.t_end_s
        );
        println!(
            "{:>6.0} {:>5} {:>8.2} {:>8.4} {:>10.3e} {:>8.2}",
            w.t_end_s,
            w.overloaded(),
            w.throughput,
            f[miss_idx],
            f[instr_idx],
            w.label.mean_response_time_s
        );
    }
}

/// Collector-overhead sensitivity at saturation (was `debug_overhead`):
/// the §V-D overhead table depends on the saturated steady state staying
/// well-formed when the app tier pays the collection tax.
#[test]
#[ignore = "replays two 300 s saturated runs"]
fn saturated_steady_state_survives_collector_overhead() {
    for oh in [0.0, 0.10] {
        let mut cfg = SimConfig::testbed(8);
        cfg.app.collector_overhead = oh;
        let out = run(cfg, TrafficProgram::steady(Mix::ordering(), 500, 300.0));
        assert!(
            out.samples.len() > 120,
            "run too short to have a steady-state tail"
        );
        let tail = &out.samples[120..];
        let thr: f64 = tail.iter().map(|s| s.throughput()).sum::<f64>() / tail.len() as f64;
        let app_util: f64 = tail.iter().map(|s| s.app.utilization).sum::<f64>() / tail.len() as f64;
        let runnable: f64 =
            tail.iter().map(|s| s.app.avg_runnable).sum::<f64>() / tail.len() as f64;
        let pool: f64 = tail.iter().map(|s| s.app.pool_in_use_avg).sum::<f64>() / tail.len() as f64;
        let work: f64 =
            tail.iter().map(|s| s.app.delivered_work_s).sum::<f64>() / tail.len() as f64;
        println!(
            "overhead {oh}: thr {thr:.2} app_util {app_util:.3} runnable {runnable:.1} \
             pool {pool:.1} work {work:.3}"
        );
        assert!(thr > 0.0, "overhead {oh}: saturated run delivered nothing");
        assert!(
            (0.0..=1.0 + 1e-9).contains(&app_util),
            "overhead {oh}: utilization {app_util} out of range"
        );
        assert!(
            thr.is_finite() && runnable.is_finite() && pool.is_finite() && work.is_finite(),
            "overhead {oh}: non-finite steady-state statistics"
        );
    }
}
