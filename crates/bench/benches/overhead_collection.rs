//! **Section V-D** — runtime overhead of metrics collection.
//!
//! The paper normalizes throughput and request latency against runs with
//! no metrics collection, averaging 5 executions of 30 minutes each, and
//! finds hardware-counter collection costs **< 0.5 %** performance while
//! Sysstat-style OS collection costs **≈ 4 %**.
//!
//! In the simulator, collection cost is injected as a fraction of CPU
//! capacity consumed by the collector on each tier (PerfCtr global-mode
//! reads are a handful of register reads per sample; Sysstat parses and
//! aggregates /proc text). The measured deltas are therefore the
//! throughput/latency cost of the same capacity loss under a saturated
//! closed loop.

use webcap_bench::{bench_scale, print_table};
use webcap_core::workloads;
use webcap_sim::{run, RunSummary, SimConfig};
use webcap_tpcw::{Mix, TrafficProgram};

/// Collector CPU cost as a fraction of one tier's capacity.
const HPC_COLLECTOR_COST: f64 = 0.004;
const OS_COLLECTOR_COST: f64 = 0.040;

fn measure(collector_cost: f64, runs: u64, duration_s: f64) -> (f64, f64) {
    let mut thr = 0.0;
    let mut lat = 0.0;
    for seed in 0..runs {
        let mut cfg = SimConfig::testbed(404 + seed);
        cfg.app.collector_overhead = collector_cost;
        cfg.db.collector_overhead = collector_cost;
        // Saturated ordering mix: the regime where collector overhead is
        // visible in throughput.
        let mix = Mix::ordering();
        let knee = workloads::estimate_saturation_ebs(&cfg, &mix);
        let program = TrafficProgram::steady(mix, knee + knee / 5, duration_s);
        let out = run(cfg, program);
        let s: RunSummary = out.summary;
        thr += s.mean_throughput;
        lat += s.mean_response_time_s;
    }
    (thr / runs as f64, lat / runs as f64)
}

fn main() {
    let scale = bench_scale();
    // The paper used 5 × 30-minute executions; scale that down
    // proportionally but keep enough length for stable means.
    let duration_s = (1800.0 * scale).max(240.0);
    let runs = 5;
    println!("# Section V-D — runtime overhead of metrics collection");
    println!("({runs} runs x {duration_s:.0}s saturated ordering mix, scale = {scale})");

    let (thr_none, lat_none) = measure(0.0, runs, duration_s);
    let (thr_hpc, lat_hpc) = measure(HPC_COLLECTOR_COST, runs, duration_s);
    let (thr_os, lat_os) = measure(OS_COLLECTOR_COST, runs, duration_s);

    let rows = vec![
        vec![
            "none (baseline)".to_string(),
            format!("{thr_none:.2}"),
            "1.000".to_string(),
            format!("{:.0}", lat_none * 1000.0),
            "1.000".to_string(),
            "-".to_string(),
        ],
        vec![
            "HPC counters".to_string(),
            format!("{thr_hpc:.2}"),
            format!("{:.4}", thr_hpc / thr_none),
            format!("{:.0}", lat_hpc * 1000.0),
            format!("{:.4}", lat_hpc / lat_none),
            "< 0.5% loss".to_string(),
        ],
        vec![
            "OS (sysstat)".to_string(),
            format!("{thr_os:.2}"),
            format!("{:.4}", thr_os / thr_none),
            format!("{:.0}", lat_os * 1000.0),
            format!("{:.4}", lat_os / lat_none),
            "~4% loss".to_string(),
        ],
    ];
    print_table(
        "Normalized performance under metric collection, measured (paper)",
        &[
            "Collector",
            "thr req/s",
            "thr (norm)",
            "latency ms",
            "latency (norm)",
            "paper",
        ],
        &rows,
    );

    let hpc_loss = 1.0 - thr_hpc / thr_none;
    let os_loss = 1.0 - thr_os / thr_none;
    println!(
        "\nHPC collection throughput loss: {:.2}% (paper < 0.5%)",
        hpc_loss * 100.0
    );
    println!(
        "OS  collection throughput loss: {:.2}% (paper ~ 4%)",
        os_loss * 100.0
    );

    assert!(
        hpc_loss < 0.012,
        "HPC collection must be near-free: {hpc_loss}"
    );
    assert!(
        os_loss > hpc_loss,
        "OS collection must cost more than HPC: {os_loss} vs {hpc_loss}"
    );
    assert!(
        os_loss > 0.015 && os_loss < 0.10,
        "OS loss should be a few percent: {os_loss}"
    );
}
