//! **Figure 3** — Effectiveness of the productivity index in reflecting
//! high-level performance.
//!
//! The paper drives the testbed into overload with the ordering mix,
//! defines PI on the bottleneck (front-end) tier with IPC as yield and L2
//! miss rate as cost (chosen by the `Corr` measure), normalizes both PI
//! and throughput by their geometric means, and shows the two curves in
//! high agreement, with PI sometimes leading. This bench reruns the
//! experiment for both representative mixes and prints the normalized
//! series plus the agreement statistics.

use webcap_bench::{bench_scale, print_table};
use webcap_core::monitor::collect_run;
use webcap_core::pi::{correlation, normalize_by_geometric_mean, select_pi};
use webcap_core::workloads;
use webcap_hpc::HpcModel;
use webcap_sim::{SimConfig, TierId};
use webcap_tpcw::Mix;

fn run_mix(name: &str, mix: &Mix, tier: TierId, seed: u64) {
    let cfg = SimConfig::testbed(seed);
    let scale = bench_scale();
    // The paper "took Ordering and Browsing workloads as input and drove
    // the test-bed into an overloaded state" with realistic (bursty)
    // traffic: after a ramp to the knee the load keeps oscillating across
    // it, so throughput and productivity fluctuate together.
    let knee = workloads::estimate_saturation_ebs(&cfg, mix);
    let phase_s = (150.0 * scale).max(60.0);
    let load = |f: f64| (f64::from(knee) * f) as u32;
    let program = webcap_tpcw::TrafficProgram::ramp(mix.clone(), load(0.5), load(1.3), phase_s)
        .then_steady(mix.clone(), load(0.85), phase_s)
        .then_steady(mix.clone(), load(1.45), phase_s)
        .then_steady(mix.clone(), load(0.9), phase_s)
        .then_steady(mix.clone(), load(1.6), phase_s)
        .then_steady(mix.clone(), load(0.95), phase_s)
        .then_steady(mix.clone(), load(1.35), phase_s);
    let log = collect_run(&cfg, &program, &HpcModel::testbed(), seed ^ 0xF16);

    // 60-second aggregation, smoothing the per-second series the way the
    // paper's plotted curves are smoothed: per-second points are dominated
    // by the timescale decoupling between when work is consumed and when
    // its request completes. The initial ramp is excluded — the paper's
    // run is entirely in the driven-overloaded state, and across a cold
    // ramp PI (a productivity measure, high when idle) is not expected to
    // track throughput (a load measure).
    let window = 60usize.min(log.samples.len().max(1));
    let skip = (phase_s as usize / window).max(1);
    let agg = |series: &[f64]| -> Vec<f64> {
        series
            .chunks(window)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .skip(skip)
            .collect()
    };

    let throughput = agg(&log.throughput_series());
    let metrics: Vec<webcap_hpc::DerivedMetrics> = log.hpc[tier.index()]
        .chunks(window)
        .map(webcap_hpc::DerivedMetrics::mean)
        .skip(skip)
        .collect();
    let selection = select_pi(&metrics, &throughput);
    let pi_series = selection.definition.series(&metrics);

    let thr_n = normalize_by_geometric_mean(&throughput);
    let pi_n = normalize_by_geometric_mean(&pi_series);
    let corr_norm = correlation(&thr_n, &pi_n);

    // Responsiveness: does PI lead throughput? Positive lead means the PI
    // series correlates best with *future* throughput.
    let lead_corr = |lag: usize| -> f64 {
        if pi_n.len() <= lag + 2 {
            return 0.0;
        }
        correlation(&pi_n[..pi_n.len() - lag], &thr_n[lag..])
    };

    println!("\n--- Figure 3 ({name} mix, {tier} tier) ---");
    println!(
        "selected PI       : {} (Corr = {:.3})",
        selection.definition, selection.corr
    );
    println!("normalized corr   : {corr_norm:.3}");
    println!(
        "lead correlation  : lag0 {:.3}  lag1 {:.3}  lag2 {:.3}",
        lead_corr(0),
        lead_corr(1),
        lead_corr(2)
    );

    let rows: Vec<Vec<String>> = thr_n
        .iter()
        .zip(&pi_n)
        .enumerate()
        .map(|(i, (t, p))| {
            vec![
                format!("{}", (skip + i + 1) * window),
                format!("{t:.3}"),
                format!("{p:.3}"),
                format!("{:+.3}", p - t),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 3 series ({name})"),
        &["t_s", "throughput (norm)", "PI (norm)", "delta"],
        &rows,
    );
    println!(
        "paper reference   : PI and throughput 'in high agreement'; every PI drop \
         coincides with a throughput drop; PI is more responsive in places."
    );
    assert!(
        corr_norm > 0.5,
        "PI should track throughput (corr {corr_norm})"
    );
}

fn main() {
    println!("# Figure 3 — effectiveness of PI in reflecting high-level performance");
    println!("(scale = {})", bench_scale());
    // The paper plots the ordering mix (front-end bottleneck, IPC / L2
    // miss rate) and reports the browsing-mix pair (DB IPC / stalls) in
    // the text.
    run_mix("Ordering", &Mix::ordering(), TierId::App, 31);
    run_mix("Browsing", &Mix::browsing(), TierId::Db, 32);
}
