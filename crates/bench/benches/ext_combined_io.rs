//! **Extension (paper §VII, future work)** — combining hardware-counter
//! and OS-level metrics to capture I/O-related overload.
//!
//! The paper's conclusion admits: "Our current model cannot reflect I/O
//! related system performance … This work can be further extended to
//! combine hardware counter level metrics with OS level metrics to capture
//! I/O related performance problems."
//!
//! This bench implements and validates that extension. The testbed's disk
//! demands are scaled ×5 (an archival catalog that no longer fits in the
//! buffer pool), which makes the browsing mix *disk-bound*: under overload
//! the DB CPU idles while the disk queue explodes. Hardware counters are
//! CPU-centric — threads blocked on I/O are not runnable, so the cache and
//! stall signatures stay quiet — while sysstat's iowait/tps/blocked see
//! the problem directly. The combined feature set should therefore
//! dominate the HPC-only meter here while keeping the HPC advantages
//! elsewhere.

use webcap_bench::{bench_scale, pct, print_table};
use webcap_core::meter::{CapacityMeter, EvaluationReport, MeterConfig};
use webcap_core::monitor::MetricLevel;
use webcap_core::workloads;
use webcap_sim::{DemandProfile, SimConfig};
use webcap_tpcw::Mix;

fn main() {
    let scale = bench_scale();
    println!("# Extension — combined OS+HPC metrics on an I/O-bound testbed (scale = {scale})");

    // The archival testbed: disk demands x5 make browsing disk-bound.
    let mut base = SimConfig::testbed(404);
    base.profile = DemandProfile::testbed().with_disk_scale(5.0);
    let mix = Mix::browsing();
    let cap = workloads::estimate_capacity_rps(&base, &mix);
    let db_cpu_cap = f64::from(base.db.cores) * base.db.effective_speed()
        / base.profile.mean_db_cpu_demand(&mix);
    println!(
        "browsing capacity: {cap:.1} req/s (disk-bound; DB CPU alone could do {db_cpu_cap:.1})"
    );
    assert!(cap < 0.6 * db_cpu_cap, "testbed must be disk-bound");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for level in MetricLevel::EXTENDED {
        let mut cfg = MeterConfig::new(base.seed);
        cfg.sim = base.clone();
        cfg.level = level;
        cfg.duration_scale = scale;
        if scale < 0.8 {
            cfg.coordinator.delta = 2;
        }
        let mut meter = CapacityMeter::train(&cfg)
            .unwrap_or_else(|e| panic!("training {level} meter failed: {e}"));
        let mut report = EvaluationReport::default();
        for rep in 0u64..3 {
            let mut test_cfg = base.clone();
            test_cfg.seed = base.seed ^ (0xD15C + 1000 * rep);
            let program = workloads::test_ramp(&test_cfg, &mix, scale);
            report.merge(&meter.evaluate_program(&program, test_cfg.seed));
        }
        rows.push(vec![
            level.label().to_string(),
            pct(report.balanced_accuracy()),
            report.bottleneck_accuracy().map_or("n/a".into(), pct),
            report.confusion.total().to_string(),
        ]);
        results.push((level, report.balanced_accuracy()));
    }
    print_table(
        "Disk-bound browsing overload: balanced accuracy % per metric level",
        &["Metric level", "overload BA %", "bottleneck %", "windows"],
        &rows,
    );

    let get = |l: MetricLevel| results.iter().find(|(x, _)| *x == l).unwrap().1;
    let os = get(MetricLevel::Os);
    let hpc = get(MetricLevel::Hpc);
    let combined = get(MetricLevel::Combined);
    println!("\npaper's prediction: HPC alone cannot reflect I/O-bound overload;");
    println!(
        "combined metrics recover it. measured: HPC {} OS {} Combined {}",
        pct(hpc),
        pct(os),
        pct(combined)
    );

    if scale >= 0.7 {
        assert!(
            combined + 0.02 >= hpc,
            "combined must not lose to HPC-only: {combined} vs {hpc}"
        );
        assert!(
            combined > 0.75,
            "combined metrics must handle I/O-bound overload: {combined}"
        );
    } else {
        println!("(scale < 0.7: smoke run, shape assertions skipped)");
    }
}
