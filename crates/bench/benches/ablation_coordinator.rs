//! **Section V-C ablation** — impact of the tie scheme φ and the history
//! length h on coordinated accuracy.
//!
//! The paper reports that the optimistic/pessimistic schemes "had little
//! impact on the coordinated accuracy", that moving to a single history
//! bit changed accuracy by roughly 10 %, and that history beyond a few
//! bits brings only marginal improvement. This bench sweeps h ∈ {1,2,3,5},
//! both φ schemes, and δ ∈ {2,5,10} on the interleaved workload (the
//! hardest labeled one) and prints the grid.

use webcap_bench::{bench_scale, pct, print_table, test_instances, TestWorkload};
use webcap_core::coordinator::TieScheme;
use webcap_core::meter::{CapacityMeter, MeterConfig};
use webcap_core::monitor::MetricLevel;
use webcap_sim::SimConfig;

fn main() {
    let scale = bench_scale();
    println!("# Section V-C ablation — history bits, tie scheme, delta (scale = {scale})");
    let base = SimConfig::testbed(303);
    let instances = test_instances(TestWorkload::Interleaved, &base, scale, 0xAB1);
    println!("interleaved test: {} windows", instances.len());

    let mut rows = Vec::new();
    let mut by_config = Vec::new();
    for history_bits in [1usize, 2, 3, 5] {
        for scheme in [TieScheme::Optimistic, TieScheme::Pessimistic] {
            for delta in [2i32, 5, 10] {
                let mut cfg = MeterConfig::new(base.seed);
                cfg.sim = base.clone();
                cfg.level = MetricLevel::Hpc;
                cfg.duration_scale = scale;
                cfg.coordinator.history_bits = history_bits;
                cfg.coordinator.scheme = scheme;
                cfg.coordinator.delta = delta;
                let mut meter = CapacityMeter::train(&cfg)
                    .unwrap_or_else(|e| panic!("training h={history_bits} failed: {e}"));
                let report = meter.evaluate_instances(&instances);
                let ba = report.balanced_accuracy();
                let confident = report.results.iter().filter(|r| r.confident).count() as f64
                    / report.results.len().max(1) as f64;
                rows.push(vec![
                    history_bits.to_string(),
                    format!("{scheme:?}"),
                    delta.to_string(),
                    pct(ba),
                    pct(confident),
                ]);
                by_config.push((history_bits, scheme, delta, ba));
            }
        }
    }
    print_table(
        "Coordinated accuracy on the interleaved workload",
        &["h", "scheme", "delta", "BA %", "confident %"],
        &rows,
    );

    // Paper claims: scheme has little impact; extra history beyond a few
    // bits is marginal.
    let mean = |f: &dyn Fn(&(usize, TieScheme, i32, f64)) -> bool| -> f64 {
        let v: Vec<f64> = by_config.iter().filter(|c| f(c)).map(|c| c.3).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let opt = mean(&|c| matches!(c.1, TieScheme::Optimistic));
    let pess = mean(&|c| matches!(c.1, TieScheme::Pessimistic));
    let h1 = mean(&|c| c.0 == 1);
    let h3 = mean(&|c| c.0 == 3);
    let h5 = mean(&|c| c.0 == 5);

    println!("\n== Shape checks ==");
    println!(
        "scheme impact:  optimistic {} vs pessimistic {} (paper: little impact)",
        pct(opt),
        pct(pess)
    );
    println!(
        "history:        h=1 {}  h=3 {}  h=5 {} (paper: longer history marginal)",
        pct(h1),
        pct(h3),
        pct(h5)
    );

    if scale >= 0.7 {
        assert!(
            (opt - pess).abs() < 0.15,
            "schemes should not diverge wildly: {opt} vs {pess}"
        );
        assert!(
            (h5 - h3).abs() < 0.12,
            "history beyond a few bits should be marginal: h3 {h3} h5 {h5}"
        );
    } else {
        println!("(scale < 0.7: smoke run, shape assertions skipped)");
    }
}
