//! **Extension — sensitivity ablations** for two design choices the paper
//! fixes without exploration: the 30-second instance window and the
//! training-set size.
//!
//! * Window length trades detection latency against label/feature noise:
//!   short windows react faster but straddle fewer requests.
//! * Training volume bounds the coordinated predictor's confidence: the
//!   pattern-table counters need repeated visits to clear the δ band.

use webcap_bench::{bench_scale, pct, print_table, test_instances, TestWorkload};
use webcap_core::meter::{CapacityMeter, MeterConfig};
use webcap_core::monitor::MetricLevel;
use webcap_sim::SimConfig;

fn main() {
    let scale = bench_scale();
    println!("# Extension — window-length and training-volume sensitivity (scale = {scale})");
    let base = SimConfig::testbed(606);

    // --- Window length sweep ---
    let mut rows = Vec::new();
    for window_len in [10usize, 20, 30, 60] {
        let mut cfg = MeterConfig::new(base.seed);
        cfg.sim = base.clone();
        cfg.level = MetricLevel::Hpc;
        cfg.duration_scale = scale;
        cfg.window_len = window_len;
        cfg.train_stride = (window_len / 3).max(2);
        cfg.test_stride = window_len;
        if scale < 0.8 {
            cfg.coordinator.delta = 2;
        }
        let mut meter = match CapacityMeter::train(&cfg) {
            Ok(m) => m,
            Err(e) => {
                println!("window {window_len}: training failed ({e}) — skipped");
                continue;
            }
        };
        let instances = test_instances(TestWorkload::Ordering, &base, scale, 0x5e1);
        // Re-window the evaluation at the matching length by running the
        // program through evaluate_program (which uses cfg.window_len).
        let program = TestWorkload::Ordering.program(&base, scale);
        let report = meter.evaluate_program(&program, 0x5e2);
        rows.push(vec![
            format!("{window_len}s"),
            pct(report.balanced_accuracy()),
            report.confusion.total().to_string(),
            format!("{}s", window_len), // detection latency = one window
        ]);
        drop(instances);
    }
    print_table(
        "Window-length sweep (ordering test, HPC/TAN)",
        &["window", "BA %", "windows", "detection latency"],
        &rows,
    );

    // --- Training volume sweep ---
    let mut rows = Vec::new();
    for (label, factor, repeats) in [
        ("0.5x, 1 run", 0.5, 1usize),
        ("1x, 1 run", 1.0, 1),
        ("1x, 2 runs", 1.0, 2),
        ("1.5x, 2 runs", 1.5, 2),
    ] {
        let mut cfg = MeterConfig::new(base.seed);
        cfg.sim = base.clone();
        cfg.level = MetricLevel::Hpc;
        cfg.duration_scale = scale;
        cfg.train_duration_factor = factor;
        cfg.training_repeats = repeats;
        if scale < 0.8 {
            cfg.coordinator.delta = 2;
        }
        let mut meter = match CapacityMeter::train(&cfg) {
            Ok(m) => m,
            Err(e) => {
                println!("{label}: training failed ({e}) — skipped");
                continue;
            }
        };
        let instances = test_instances(TestWorkload::Interleaved, &base, scale, 0x5e3);
        let report = meter.evaluate_instances(&instances);
        rows.push(vec![label.to_string(), pct(report.balanced_accuracy())]);
    }
    print_table(
        "Training-volume sweep (interleaved test, HPC/TAN)",
        &["training volume", "BA %"],
        &rows,
    );
    println!("\nexpected shape: accuracy grows with training volume and saturates;");
    println!("30s windows are near the knee of the window-length curve (paper's choice).");
}
