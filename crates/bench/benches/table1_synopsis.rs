//! **Table I** — Prediction accuracy of individual synopses.
//!
//! For each test input mix (browsing in I(a), ordering in I(b)) the paper
//! reports the balanced accuracy of every workload-specific synopsis
//! (2 training workloads × 2 tiers), for OS-level and HPC-level metrics
//! and all four learners (LR, Naive, SVM, TAN). The headline shape:
//!
//! * only the synopsis built on the *bottleneck tier* from a *similar
//!   workload* is accurate (e.g. Browsing/DB reaches 0.965 under browsing
//!   input; Ordering/APP reaches 0.952 under ordering input);
//! * HPC metrics beat OS metrics, dramatically so for the browsing mix
//!   (0.965 vs 0.635 for TAN);
//! * TAN and SVM lead, Naive Bayes trails, LR is worst.

use webcap_bench::{
    ba3, bench_scale, parallel_map, print_table, test_instances, training_instances, TestWorkload,
};
use webcap_core::monitor::{MetricLevel, WindowInstance};
use webcap_core::synopsis::{PerformanceSynopsis, SynopsisSpec};
use webcap_ml::select::SelectionOptions;
use webcap_ml::{balanced_accuracy, Algorithm};
use webcap_sim::{SimConfig, TierId};
use webcap_tpcw::MixId;

/// Paper values for quick visual comparison, keyed
/// `(input, workload, tier, level, algorithm)` in print order.
fn paper_value(
    input: MixId,
    workload: MixId,
    tier: TierId,
    level: MetricLevel,
    alg: Algorithm,
) -> f64 {
    use Algorithm as A;
    use MetricLevel as L;
    use MixId as M;
    use TierId as T;
    // Table I(a): browsing-mix input.
    let a = |w, t, l, alg| match (w, t, l, alg) {
        (M::Ordering, T::App, L::Os, A::LinearRegression) => 0.585,
        (M::Ordering, T::App, L::Os, A::NaiveBayes) => 0.500,
        (M::Ordering, T::App, L::Os, A::Svm) => 0.505,
        (M::Ordering, T::App, L::Os, A::Tan) => 0.545,
        (M::Ordering, T::Db, L::Os, A::LinearRegression) => 0.473,
        (M::Ordering, T::Db, L::Os, A::NaiveBayes) => 0.500,
        (M::Ordering, T::Db, L::Os, A::Svm) => 0.465,
        (M::Ordering, T::Db, L::Os, A::Tan) => 0.587,
        (M::Browsing, T::App, L::Os, A::LinearRegression) => 0.635,
        (M::Browsing, T::App, L::Os, A::NaiveBayes) => 0.621,
        (M::Browsing, T::App, L::Os, A::Svm) => 0.505,
        (M::Browsing, T::App, L::Os, A::Tan) => 0.603,
        (M::Browsing, T::Db, L::Os, A::LinearRegression) => 0.604,
        (M::Browsing, T::Db, L::Os, A::NaiveBayes) => 0.612,
        (M::Browsing, T::Db, L::Os, A::Svm) => 0.667,
        (M::Browsing, T::Db, L::Os, A::Tan) => 0.635,
        (M::Ordering, T::App, L::Hpc, A::LinearRegression) => 0.570,
        (M::Ordering, T::App, L::Hpc, A::NaiveBayes) => 0.500,
        (M::Ordering, T::App, L::Hpc, A::Svm) => 0.502,
        (M::Ordering, T::App, L::Hpc, A::Tan) => 0.505,
        (M::Ordering, T::Db, L::Hpc, A::LinearRegression) => 0.439,
        (M::Ordering, T::Db, L::Hpc, A::NaiveBayes) => 0.453,
        (M::Ordering, T::Db, L::Hpc, A::Svm) => 0.493,
        (M::Ordering, T::Db, L::Hpc, A::Tan) => 0.646,
        (M::Browsing, T::App, L::Hpc, A::LinearRegression) => 0.529,
        (M::Browsing, T::App, L::Hpc, A::NaiveBayes) => 0.557,
        (M::Browsing, T::App, L::Hpc, A::Svm) => 0.540,
        (M::Browsing, T::App, L::Hpc, A::Tan) => 0.515,
        (M::Browsing, T::Db, L::Hpc, A::LinearRegression) => 0.859,
        (M::Browsing, T::Db, L::Hpc, A::NaiveBayes) => 0.935,
        (M::Browsing, T::Db, L::Hpc, A::Svm) => 0.957,
        (M::Browsing, T::Db, L::Hpc, A::Tan) => 0.965,
        _ => f64::NAN,
    };
    // Table I(b): ordering-mix input.
    let b = |w, t, l, alg| match (w, t, l, alg) {
        (M::Ordering, T::App, L::Os, A::LinearRegression) => 0.842,
        (M::Ordering, T::App, L::Os, A::NaiveBayes) => 0.928,
        (M::Ordering, T::App, L::Os, A::Svm) => 0.965,
        (M::Ordering, T::App, L::Os, A::Tan) => 0.935,
        (M::Ordering, T::Db, L::Os, A::LinearRegression) => 0.689,
        (M::Ordering, T::Db, L::Os, A::NaiveBayes) => 0.932,
        (M::Ordering, T::Db, L::Os, A::Svm) => 0.776,
        (M::Ordering, T::Db, L::Os, A::Tan) => 0.665,
        (M::Browsing, T::App, L::Os, A::LinearRegression) => 0.583,
        (M::Browsing, T::App, L::Os, A::NaiveBayes) => 0.585,
        (M::Browsing, T::App, L::Os, A::Svm) => 0.593,
        (M::Browsing, T::App, L::Os, A::Tan) => 0.547,
        (M::Browsing, T::Db, L::Os, A::LinearRegression) => 0.545,
        (M::Browsing, T::Db, L::Os, A::NaiveBayes) => 0.514,
        (M::Browsing, T::Db, L::Os, A::Svm) => 0.512,
        (M::Browsing, T::Db, L::Os, A::Tan) => 0.572,
        (M::Ordering, T::App, L::Hpc, A::LinearRegression) => 0.805,
        (M::Ordering, T::App, L::Hpc, A::NaiveBayes) => 0.883,
        (M::Ordering, T::App, L::Hpc, A::Svm) => 0.921,
        (M::Ordering, T::App, L::Hpc, A::Tan) => 0.952,
        (M::Ordering, T::Db, L::Hpc, A::LinearRegression) => 0.746,
        (M::Ordering, T::Db, L::Hpc, A::NaiveBayes) => 0.791,
        (M::Ordering, T::Db, L::Hpc, A::Svm) => 0.844,
        (M::Ordering, T::Db, L::Hpc, A::Tan) => 0.840,
        (M::Browsing, T::App, L::Hpc, A::LinearRegression) => 0.662,
        (M::Browsing, T::App, L::Hpc, A::NaiveBayes) => 0.588,
        (M::Browsing, T::App, L::Hpc, A::Svm) => 0.588,
        (M::Browsing, T::App, L::Hpc, A::Tan) => 0.588,
        (M::Browsing, T::Db, L::Hpc, A::LinearRegression) => 0.635,
        (M::Browsing, T::Db, L::Hpc, A::NaiveBayes) => 0.659,
        (M::Browsing, T::Db, L::Hpc, A::Svm) => 0.662,
        (M::Browsing, T::Db, L::Hpc, A::Tan) => 0.694,
        _ => f64::NAN,
    };
    match input {
        MixId::Browsing => a(workload, tier, level, alg),
        MixId::Ordering => b(workload, tier, level, alg),
        _ => f64::NAN,
    }
}

fn evaluate(syn: &PerformanceSynopsis, instances: &[WindowInstance]) -> f64 {
    let actual: Vec<bool> = instances.iter().map(WindowInstance::overloaded).collect();
    let predicted: Vec<bool> = instances.iter().map(|w| syn.predict_instance(w)).collect();
    balanced_accuracy(&actual, &predicted)
}

fn main() {
    let scale = bench_scale();
    println!("# Table I — prediction accuracy of individual synopses (scale = {scale})");
    let cfg = SimConfig::testbed(101);

    // Two training executions per workload and three test executions per
    // input mix: slow environmental disturbances differ between runs, so
    // single-run numbers carry several points of noise.
    let train: Vec<(MixId, Vec<WindowInstance>)> = [MixId::Ordering, MixId::Browsing]
        .into_iter()
        .map(|m| {
            let mut all = Vec::new();
            for rep in 0u64..2 {
                let mut c = cfg.clone();
                c.seed = cfg.seed ^ (31 * rep);
                all.extend(training_instances(m, &c, scale, 0x7AB1 ^ m as u64 ^ rep));
            }
            (m, all)
        })
        .collect();
    let tests: Vec<(MixId, Vec<WindowInstance>)> = [
        (MixId::Browsing, TestWorkload::Browsing, 0xB0u64),
        (MixId::Ordering, TestWorkload::Ordering, 0xB1),
    ]
    .into_iter()
    .map(|(m, w, seed)| {
        let mut all = Vec::new();
        for rep in 0u64..3 {
            let mut c = cfg.clone();
            c.seed = cfg.seed ^ (7700 + 13 * rep);
            all.extend(test_instances(w, &c, scale, seed ^ rep));
        }
        (m, all)
    })
    .collect();
    for (m, t) in &train {
        let pos = t.iter().filter(|w| w.overloaded()).count();
        println!("training {m}: {} instances ({pos} overloaded)", t.len());
    }

    // Train the 2 workloads × 2 tiers × 2 levels × 4 algorithms grid.
    let mut specs = Vec::new();
    for (workload, _) in &train {
        for tier in TierId::ALL {
            for level in MetricLevel::ALL {
                for algorithm in Algorithm::PAPER_ORDER {
                    specs.push(SynopsisSpec {
                        tier,
                        workload: *workload,
                        level,
                        algorithm,
                    });
                }
            }
        }
    }
    let selection = SelectionOptions::default();
    let synopses: Vec<PerformanceSynopsis> = parallel_map(specs, |spec| {
        let instances = &train
            .iter()
            .find(|(m, _)| *m == spec.workload)
            .expect("trained workload")
            .1;
        PerformanceSynopsis::train(spec, instances, &selection)
            .unwrap_or_else(|e| panic!("training {spec} failed: {e}"))
    });

    // Print one sub-table per test input, in the paper's layout.
    for (input, instances) in &tests {
        let sub = match input {
            MixId::Browsing => "(a) Browsing Mix Input",
            _ => "(b) Ordering Mix Input",
        };
        let mut rows = Vec::new();
        for workload in [MixId::Ordering, MixId::Browsing] {
            for tier in TierId::ALL {
                let mut row = vec![workload.to_string(), tier.to_string()];
                for level in MetricLevel::ALL {
                    for algorithm in Algorithm::PAPER_ORDER {
                        let syn = synopses
                            .iter()
                            .find(|s| {
                                let sp = s.spec();
                                sp.workload == workload
                                    && sp.tier == tier
                                    && sp.level == level
                                    && sp.algorithm == algorithm
                            })
                            .expect("synopsis trained");
                        let measured = evaluate(syn, instances);
                        let paper = paper_value(*input, workload, tier, level, algorithm);
                        row.push(format!("{} ({})", ba3(measured), ba3(paper)));
                    }
                }
                rows.push(row);
            }
        }
        print_table(
            &format!("Table I{sub} — measured (paper)"),
            &[
                "Workload",
                "Tier", //
                "OS/LR",
                "OS/Naive",
                "OS/SVM",
                "OS/TAN", //
                "HPC/LR",
                "HPC/Naive",
                "HPC/SVM",
                "HPC/TAN",
            ],
            &rows,
        );
    }

    // Shape assertions: the qualitative claims of Section V-B.
    let find = |workload, tier, level, algorithm| {
        synopses
            .iter()
            .find(|s| {
                let sp = s.spec();
                sp.workload == workload
                    && sp.tier == tier
                    && sp.level == level
                    && sp.algorithm == algorithm
            })
            .expect("synopsis")
    };
    let browsing_input = &tests[0].1;
    let ordering_input = &tests[1].1;

    let b_db_hpc_tan = evaluate(
        find(
            MixId::Browsing,
            TierId::Db,
            MetricLevel::Hpc,
            Algorithm::Tan,
        ),
        browsing_input,
    );
    let b_db_os_tan = evaluate(
        find(MixId::Browsing, TierId::Db, MetricLevel::Os, Algorithm::Tan),
        browsing_input,
    );
    let b_wrong_tier = evaluate(
        find(
            MixId::Ordering,
            TierId::App,
            MetricLevel::Hpc,
            Algorithm::Tan,
        ),
        browsing_input,
    );
    let o_app_hpc_tan = evaluate(
        find(
            MixId::Ordering,
            TierId::App,
            MetricLevel::Hpc,
            Algorithm::Tan,
        ),
        ordering_input,
    );
    let o_app_os_tan = evaluate(
        find(
            MixId::Ordering,
            TierId::App,
            MetricLevel::Os,
            Algorithm::Tan,
        ),
        ordering_input,
    );

    println!("\n== Shape checks (Section V-B observations) ==");
    println!(
        "1. matching bottleneck synopsis accurate:  browsing/DB/HPC/TAN = {} (paper 0.965), \
         ordering/APP/HPC/TAN = {} (paper 0.952)",
        ba3(b_db_hpc_tan),
        ba3(o_app_hpc_tan)
    );
    println!(
        "2. HPC >> OS under browsing input:         HPC {} vs OS {} (paper 0.965 vs 0.635)",
        ba3(b_db_hpc_tan),
        ba3(b_db_os_tan)
    );
    println!(
        "   OS adequate under ordering input:       OS {} (paper 0.935) vs HPC {}",
        ba3(o_app_os_tan),
        ba3(o_app_hpc_tan)
    );
    println!(
        "3. wrong-workload/tier synopsis useless:   ordering/APP on browsing input = {} (paper ~0.5)",
        ba3(b_wrong_tier)
    );

    if scale >= 0.7 {
        assert!(
            b_db_hpc_tan > 0.85,
            "bottleneck HPC synopsis must be accurate: {b_db_hpc_tan}"
        );
        assert!(
            o_app_hpc_tan > 0.85,
            "bottleneck HPC synopsis must be accurate: {o_app_hpc_tan}"
        );
        assert!(
            b_db_hpc_tan > b_db_os_tan + 0.05,
            "HPC must clearly beat OS on browsing input: {b_db_hpc_tan} vs {b_db_os_tan}"
        );
        assert!(
            b_wrong_tier < 0.75,
            "wrong-tier synopsis must be poor: {b_wrong_tier}"
        );
    } else {
        println!("(scale < 0.7: smoke run, shape assertions skipped)");
    }
}
