//! **Parallel speedup** — wall-clock time of meter training and
//! multi-run evaluation at 1/2/4/auto worker threads.
//!
//! The deterministic parallel layer must only change wall-clock time:
//! this harness times each mode *and* asserts that every trained meter
//! serializes to bytes identical to the sequential reference, so a
//! speedup can never be bought with a result change.

use std::time::Instant;

use webcap_bench::{bench_scale, print_table};
use webcap_core::{workloads, CapacityMeter, MeterConfig, Parallelism};
use webcap_tpcw::{Mix, TrafficProgram};

fn main() {
    let scale = bench_scale();
    println!("# Timing — deterministic parallel speedup (scale = {scale})");

    let modes = [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ];

    let mut rows = Vec::new();
    let mut reference: Option<String> = None;
    let mut t_seq = 0.0f64;
    for par in modes {
        let mut cfg = MeterConfig::small_for_tests(77).with_parallelism(par);
        cfg.duration_scale = (0.45 * scale).clamp(0.25, 2.0);

        let t0 = Instant::now();
        let meter = CapacityMeter::train(&cfg).expect("training succeeds");
        let train_s = t0.elapsed().as_secs_f64();
        let json = meter.to_json().expect("serializes");

        let ramp = |mix: Mix| workloads::test_ramp(&cfg.sim, &mix, cfg.duration_scale);
        let runs: Vec<(TrafficProgram, u64)> = vec![
            (ramp(Mix::ordering()), 91),
            (ramp(Mix::browsing()), 92),
            (ramp(Mix::ordering()), 93),
            (ramp(Mix::browsing()), 94),
        ];
        let t1 = Instant::now();
        let reports = meter.evaluate_programs(&runs);
        let eval_s = t1.elapsed().as_secs_f64();
        assert_eq!(reports.len(), runs.len());

        if let Some(r) = &reference {
            assert_eq!(
                r, &json,
                "{par}: trained meter diverged from the sequential bytes"
            );
        } else {
            reference = Some(json);
            t_seq = train_s;
        }
        rows.push(vec![
            par.to_string(),
            format!("{train_s:.2}"),
            format!("{eval_s:.2}"),
            format!("{:.2}x", t_seq / train_s.max(1e-9)),
        ]);
    }

    print_table(
        "Wall-clock by worker count (trained meters byte-identical)",
        &["parallelism", "train s", "eval s", "train speedup"],
        &rows,
    );
    println!("\nAll modes produced byte-identical trained meters.");
}
