//! **Section V-B timing** — synopsis construction and decision cost per
//! learning algorithm.
//!
//! The paper reports build + single-decision times of 90 ms (LR), 10 ms
//! (Naive), 1710 ms (SVM) and 50 ms (TAN) and concludes that TAN is the
//! best accuracy/cost compromise, with every online decision under 50 ms.
//! Absolute numbers on modern hardware are far smaller; the *shape* to
//! reproduce is SVM ≫ LR/TAN > Naive, and decisions much cheaper than
//! builds.
//!
//! This is the one criterion bench target: it measures wall-clock
//! distributions properly and also prints a paper-style summary row.

#![allow(missing_docs)] // macro-generated harness items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;
use webcap_ml::{Algorithm, Dataset};

/// A paper-sized training set: ~300 aggregated instances over 8 selected
/// attributes, with overlapping class distributions.
fn paper_sized_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = (0..8).map(|i| format!("a{i}")).collect();
    let mut data = Dataset::new(names);
    for _ in 0..300 {
        let label: bool = rng.random();
        let base = if label { 1.0 } else { 0.0 };
        let features: Vec<f64> = (0..8)
            .map(|i| {
                let informative = if i < 4 { base } else { 0.5 };
                informative + rng.random::<f64>() * 0.9
            })
            .collect();
        data.push(features, label);
    }
    data
}

fn bench_builds(c: &mut Criterion) {
    let data = paper_sized_dataset(1);
    let mut group = c.benchmark_group("synopsis_build");
    group.sample_size(10);
    for alg in Algorithm::PAPER_ORDER {
        group.bench_with_input(BenchmarkId::from_parameter(alg), &alg, |b, alg| {
            b.iter(|| alg.fit(black_box(&data)).expect("fit"));
        });
    }
    group.finish();
}

fn bench_decisions(c: &mut Criterion) {
    let data = paper_sized_dataset(2);
    let probe = vec![0.7; 8];
    let mut group = c.benchmark_group("synopsis_decision");
    for alg in Algorithm::PAPER_ORDER {
        let model = alg.fit(&data).expect("fit");
        group.bench_with_input(BenchmarkId::from_parameter(alg), &alg, |b, _| {
            b.iter(|| model.predict(black_box(&probe)));
        });
    }
    group.finish();
}

fn print_paper_summary() {
    let data = paper_sized_dataset(3);
    let probe = vec![0.7; 8];
    println!("\n== Section V-B timing summary (measured vs paper, per algorithm) ==");
    println!(
        "{:<8} {:>14} {:>14} {:>16}",
        "alg", "build (ms)", "decide (us)", "paper build (ms)"
    );
    let paper = [
        ("LR", 90.0),
        ("Naive", 10.0),
        ("SVM", 1710.0),
        ("TAN", 50.0),
    ];
    let mut builds = Vec::new();
    for alg in Algorithm::PAPER_ORDER {
        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let _ = alg.fit(&data).expect("fit");
        }
        let build_ms = t0.elapsed().as_secs_f64() * 1000.0 / f64::from(reps);
        let model = alg.fit(&data).expect("fit");
        let t1 = Instant::now();
        let n = 10_000;
        for _ in 0..n {
            black_box(model.predict(black_box(&probe)));
        }
        let decide_us = t1.elapsed().as_secs_f64() * 1e6 / f64::from(n);
        let paper_ms = paper
            .iter()
            .find(|(n, _)| *n == alg.paper_name())
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>14.2} {:>14.3} {:>16.0}",
            alg.paper_name(),
            build_ms,
            decide_us,
            paper_ms
        );
        builds.push((alg, build_ms));
    }
    // Shape: SVM must dominate the cost ranking, as in the paper.
    let cost = |a: Algorithm| builds.iter().find(|(x, _)| *x == a).unwrap().1;
    assert!(
        cost(Algorithm::Svm) > 3.0 * cost(Algorithm::NaiveBayes),
        "SVM should be by far the costliest: svm {} vs naive {}",
        cost(Algorithm::Svm),
        cost(Algorithm::NaiveBayes)
    );
}

fn summary_bench(c: &mut Criterion) {
    // Run the paper-style summary exactly once, alongside criterion's
    // statistically sound measurements above.
    print_paper_summary();
    let mut group = c.benchmark_group("noop");
    group.sample_size(10);
    group.bench_function("anchor", |b| b.iter(|| black_box(0)));
    group.finish();
}

criterion_group!(benches, bench_builds, bench_decisions, summary_bench);
criterion_main!(benches);
