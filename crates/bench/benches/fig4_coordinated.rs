//! **Figure 4** — Coordinated prediction accuracy under different
//! workloads.
//!
//! 4(a): overload prediction accuracy and 4(b): bottleneck identification
//! accuracy, for OS-level and HPC-level metrics over the four test
//! workloads. Configuration follows the paper's Section V-C: TAN
//! synopses, 3 history bits, optimistic scheme, δ = 5.
//!
//! Paper shape: HPC ≈ 90 %+ for a-priori-known mixes, > 85 % for the
//! interleaved mix (frequent bottleneck shifting), ≈ 80 % for the unknown
//! mix; OS-level metrics trail badly wherever browsing traffic is
//! involved. Bottleneck accuracy follows the same trend.

use webcap_bench::{bench_scale, parallel_map, pct, print_table, test_instances, TestWorkload};
use webcap_core::meter::{CapacityMeter, EvaluationReport, MeterConfig};
use webcap_core::monitor::{MetricLevel, WindowInstance};
use webcap_sim::SimConfig;

/// Paper bar heights (approximate, read off Figure 4), as fractions.
fn paper_overload(level: MetricLevel, w: TestWorkload) -> f64 {
    match (level, w) {
        (MetricLevel::Os, TestWorkload::Ordering) => 0.88,
        (MetricLevel::Os, TestWorkload::Browsing) => 0.62,
        (MetricLevel::Os, TestWorkload::Interleaved) => 0.70,
        (MetricLevel::Os, TestWorkload::Unknown) => 0.65,
        (MetricLevel::Hpc, TestWorkload::Ordering) => 0.92,
        (MetricLevel::Hpc, TestWorkload::Browsing) => 0.91,
        (MetricLevel::Hpc, TestWorkload::Interleaved) => 0.87,
        (MetricLevel::Hpc, TestWorkload::Unknown) => 0.80,
        (MetricLevel::Combined, _) => f64::NAN, // not in the paper
    }
}

fn paper_bottleneck(level: MetricLevel, w: TestWorkload) -> f64 {
    match (level, w) {
        (MetricLevel::Os, TestWorkload::Ordering) => 0.86,
        (MetricLevel::Os, TestWorkload::Browsing) => 0.60,
        (MetricLevel::Os, TestWorkload::Interleaved) => 0.68,
        (MetricLevel::Os, TestWorkload::Unknown) => 0.63,
        (MetricLevel::Hpc, TestWorkload::Ordering) => 0.91,
        (MetricLevel::Hpc, TestWorkload::Browsing) => 0.90,
        (MetricLevel::Hpc, TestWorkload::Interleaved) => 0.86,
        (MetricLevel::Hpc, TestWorkload::Unknown) => 0.78,
        (MetricLevel::Combined, _) => f64::NAN, // not in the paper
    }
}

fn main() {
    let scale = bench_scale();
    println!("# Figure 4 — coordinated prediction accuracy (scale = {scale})");
    let base = SimConfig::testbed(202);

    let mut overload_rows = Vec::new();
    let mut bottleneck_rows = Vec::new();
    let mut measured: Vec<(MetricLevel, TestWorkload, EvaluationReport)> = Vec::new();

    for level in MetricLevel::ALL {
        let mut cfg = MeterConfig::new(base.seed);
        cfg.sim = base.clone();
        cfg.level = level;
        cfg.duration_scale = scale;
        // Scale the confidence band δ with the available training data, as
        // discussed in `MeterConfig::small_for_tests`.
        if scale < 0.8 {
            cfg.coordinator.delta = 2;
        }
        let mut meter = CapacityMeter::train(&cfg)
            .unwrap_or_else(|e| panic!("training {level} meter failed: {e}"));
        // Average several independent executions, as the paper does; a
        // single run of ~32 windows carries ±7% binomial noise on top of
        // the slow environmental disturbances. All 12 (workload, rep)
        // runs are seeded independently, so collect them in one
        // deterministic fan-out and evaluate in rep order afterwards.
        let runs: Vec<(TestWorkload, u64)> = TestWorkload::ALL
            .into_iter()
            .flat_map(|w| (0u64..3).map(move |rep| (w, rep)))
            .collect();
        let collected: Vec<(TestWorkload, Vec<WindowInstance>)> =
            parallel_map(runs, |(workload, rep)| {
                let mut test_cfg = base.clone();
                test_cfg.seed = base.seed ^ (0xF4 + 1000 * rep) ^ workload as u64;
                let instances =
                    test_instances(workload, &test_cfg, scale, 0xF4 ^ workload as u64 ^ rep);
                (workload, instances)
            });
        for workload in TestWorkload::ALL {
            let mut report = EvaluationReport::default();
            for (w, instances) in &collected {
                if *w == workload {
                    report.merge(&meter.evaluate_instances(instances));
                }
            }
            measured.push((level, workload, report));
        }
    }

    for workload in TestWorkload::ALL {
        let mut o_row = vec![workload.label().to_string()];
        let mut b_row = vec![workload.label().to_string()];
        for level in MetricLevel::ALL {
            let report = &measured
                .iter()
                .find(|(l, w, _)| *l == level && *w == workload)
                .expect("measured")
                .2;
            o_row.push(format!(
                "{} ({})",
                pct(report.balanced_accuracy()),
                pct(paper_overload(level, workload))
            ));
            let bacc = report.bottleneck_accuracy();
            b_row.push(format!(
                "{} ({})",
                bacc.map_or("n/a".to_string(), pct),
                pct(paper_bottleneck(level, workload))
            ));
        }
        o_row.push(format!(
            "{}",
            measured
                .iter()
                .find(|(l, w, _)| *l == MetricLevel::Hpc && *w == workload)
                .map(|(_, _, r)| r.confusion.total())
                .unwrap_or(0)
        ));
        overload_rows.push(o_row);
        bottleneck_rows.push(b_row);
    }

    print_table(
        "Figure 4(a) — overload prediction balanced accuracy %, measured (paper)",
        &["Workload", "OS Level", "HPC Level", "windows"],
        &overload_rows,
    );
    print_table(
        "Figure 4(b) — bottleneck identification accuracy %, measured (paper)",
        &["Workload", "OS Level", "HPC Level"],
        &bottleneck_rows,
    );

    // Shape assertions from Section V-C.
    let get = |level, workload| {
        measured
            .iter()
            .find(|(l, w, _)| *l == level && *w == workload)
            .map(|(_, _, r)| r.balanced_accuracy())
            .expect("measured")
    };
    let hpc_ordering = get(MetricLevel::Hpc, TestWorkload::Ordering);
    let hpc_browsing = get(MetricLevel::Hpc, TestWorkload::Browsing);
    let hpc_interleaved = get(MetricLevel::Hpc, TestWorkload::Interleaved);
    let hpc_unknown = get(MetricLevel::Hpc, TestWorkload::Unknown);
    let os_browsing = get(MetricLevel::Os, TestWorkload::Browsing);

    println!("\n== Shape checks (Section V-C) ==");
    println!(
        "HPC known mixes >= ~90%:   ordering {} browsing {}",
        pct(hpc_ordering),
        pct(hpc_browsing)
    );
    println!("HPC interleaved > 85%:     {}", pct(hpc_interleaved));
    println!("HPC unknown ~ 80%:         {}", pct(hpc_unknown));
    println!("OS poor on browsing:       {}", pct(os_browsing));

    if scale >= 0.7 {
        assert!(
            hpc_ordering >= 0.85,
            "known-mix HPC accuracy too low: {hpc_ordering}"
        );
        assert!(
            hpc_browsing >= 0.85,
            "known-mix HPC accuracy too low: {hpc_browsing}"
        );
        assert!(
            hpc_interleaved >= 0.75,
            "interleaved HPC accuracy too low: {hpc_interleaved}"
        );
        assert!(
            hpc_unknown >= 0.65,
            "unknown-mix HPC accuracy too low: {hpc_unknown}"
        );
        assert!(
            hpc_browsing > os_browsing,
            "HPC must beat OS on browsing: {hpc_browsing} vs {os_browsing}"
        );
    } else {
        println!("(scale < 0.7: smoke run, shape assertions skipped)");
    }
}
