//! Machine-readable performance harness behind `webcap bench`.
//!
//! The criterion benches under `benches/` regenerate the *paper's* tables;
//! this module instead measures the *reproduction's own* hot paths — the
//! costs the paper argues must stay small for online capacity measurement
//! to be viable — and emits a versioned JSON report (`BENCH_webcap.json`)
//! that CI diffs against a checked-in baseline (see [`crate::regression`]).
//!
//! The suite is fixed and fully seeded: every repetition re-runs an
//! identical deterministic workload, so the only variance between
//! repetitions is scheduling noise, which the median/p95 summary absorbs.

use std::hint::black_box;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use webcap_capsearch::{search_scenario, SearchConfig, SimExecutor};
use webcap_core::synopsis::{dataset_from_instances, PerformanceSynopsis, SynopsisSpec};
use webcap_core::{
    CapacityMeter, CoordinatedPredictor, CoordinatorConfig, MeterConfig, MetricLevel,
};
use webcap_fleet::{FleetCollector, MergeNode};
use webcap_ml::select::SelectionOptions;
use webcap_ml::{forward_select, Algorithm};
use webcap_net::{
    encode_payload, try_extract_frame, AppStats, Assembler, DigestFin, Frame, SupervisorConfig,
    WireCodec, WireSample,
};
use webcap_sim::{RtHistogram, SimConfig, TierId, TierSample};
use webcap_tpcw::{Mix, MixId};

use crate::training_instances;

/// Version of the report schema. Bump on any change to the report shape
/// or to the meaning of an existing field.
pub const SCHEMA_VERSION: u32 = 1;

/// Identifiers of every bench in the suite, in execution order. The
/// suite hash is derived from this list, so renaming, adding, or removing
/// a bench invalidates old baselines loudly instead of silently.
pub const BENCH_IDS: [&str; 13] = [
    "sim_engine_steps",
    "synopsis_train_lr",
    "synopsis_train_nb",
    "synopsis_train_tan",
    "synopsis_train_svm",
    "forward_selection",
    "coordinated_predictor_updates",
    "wire_encode",
    "wire_decode",
    "collector_ingest",
    "collector_window_assembly",
    "fleet_merge",
    "capsearch_bisection",
];

/// Workload size of a suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchTier {
    /// Small workloads, few repetitions — the CI regression gate.
    Quick,
    /// Larger workloads and more repetitions for local investigation.
    Full,
}

impl BenchTier {
    /// The tier label recorded in the report.
    pub fn label(&self) -> &'static str {
        match self {
            BenchTier::Quick => "quick",
            BenchTier::Full => "full",
        }
    }

    /// Timed repetitions per bench (odd, so the median is an observed
    /// sample).
    pub fn reps(&self) -> usize {
        match self {
            BenchTier::Quick => 5,
            BenchTier::Full => 9,
        }
    }

    fn sim_scale(&self) -> f64 {
        match self {
            BenchTier::Quick => 0.15,
            BenchTier::Full => 0.6,
        }
    }

    fn instance_scale(&self) -> f64 {
        match self {
            BenchTier::Quick => 0.15,
            BenchTier::Full => 0.4,
        }
    }

    fn selection(&self) -> SelectionOptions {
        match self {
            BenchTier::Quick => SelectionOptions {
                folds: 5,
                max_attributes: 3,
                max_candidates: 12,
                ..SelectionOptions::default()
            },
            BenchTier::Full => SelectionOptions {
                folds: 10,
                max_attributes: 6,
                ..SelectionOptions::default()
            },
        }
    }

    fn predictor_updates(&self) -> u64 {
        match self {
            BenchTier::Quick => 200_000,
            BenchTier::Full => 1_000_000,
        }
    }

    fn collector_windows(&self) -> u64 {
        match self {
            BenchTier::Quick => 20,
            BenchTier::Full => 100,
        }
    }

    /// `SampleBatch` frames per repetition of the wire-codec benches
    /// (each frame carries [`WIRE_BATCH`] samples).
    fn wire_frames(&self) -> u64 {
        match self {
            BenchTier::Quick => 500,
            BenchTier::Full => 2_000,
        }
    }

    fn capsearch_probes(&self) -> u32 {
        match self {
            BenchTier::Quick => 4,
            BenchTier::Full => 8,
        }
    }
}

/// Summary of one bench: wall-clock medians over the repetitions plus the
/// amount of work each repetition performed, so consumers can derive
/// throughput (`work_units / median_ns`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Stable bench identifier (one of [`BENCH_IDS`]).
    pub id: String,
    /// Timed repetitions.
    pub reps: usize,
    /// Work performed per repetition (samples simulated, instances
    /// trained on, predictor updates, wire samples ingested, …).
    pub work_units: u64,
    /// Median wall time of one repetition, nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile wall time of one repetition, nanoseconds.
    pub p95_ns: u64,
}

/// The versioned machine-readable report `webcap bench` emits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Hash of the suite composition ([`suite_hash`]); baselines with a
    /// different hash are stale and must be refreshed, not compared.
    pub suite_hash: String,
    /// Workspace git revision the suite ran on (`unknown` outside a git
    /// checkout).
    pub git_rev: String,
    /// Workload tier the suite ran at (`quick` or `full`).
    pub tier: String,
    /// One entry per bench, in [`BENCH_IDS`] order.
    pub results: Vec<BenchResult>,
}

/// FNV-1a hash of the suite composition (schema version + ordered bench
/// ids), formatted as 16 hex digits. Matches the FNV idiom of the wire
/// protocol's metric-schema hash.
pub fn suite_hash() -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= u64::from(0x1fu8);
        h = h.wrapping_mul(FNV_PRIME);
    };
    eat(SCHEMA_VERSION.to_string().as_bytes());
    for id in BENCH_IDS {
        eat(id.as_bytes());
    }
    format!("{h:016x}")
}

/// The workspace git revision, or `unknown` when git is unavailable.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Time `reps` repetitions of `work` (which returns the work units it
/// performed) and summarize them.
fn measure(id: &str, reps: usize, mut work: impl FnMut() -> u64) -> BenchResult {
    assert!(reps > 0, "at least one repetition");
    let mut times: Vec<u64> = Vec::with_capacity(reps);
    let mut work_units = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        work_units = black_box(work());
        let dt = t0.elapsed().as_nanos();
        times.push(u64::try_from(dt).unwrap_or(u64::MAX));
    }
    times.sort_unstable();
    let median_ns = times[times.len() / 2];
    let p95_idx = ((times.len() as f64) * 0.95).ceil() as usize;
    let p95_ns = times[p95_idx.saturating_sub(1).min(times.len() - 1)];
    BenchResult {
        id: id.to_string(),
        reps,
        work_units,
        median_ns,
        p95_ns,
    }
}

/// Simulator stepping: run the ordering-mix training program end to end.
fn bench_sim_engine(tier: BenchTier) -> BenchResult {
    let cfg = SimConfig::testbed(0xB0);
    let program =
        webcap_core::workloads::training_program(&cfg, &Mix::ordering(), tier.sim_scale());
    measure("sim_engine_steps", tier.reps(), || {
        let out = webcap_sim::run(cfg.clone(), program.clone());
        out.samples.len() as u64
    })
}

/// Synopsis training (forward selection + final fit) for one learner.
fn bench_synopsis_train(
    id: &'static str,
    algorithm: Algorithm,
    tier: BenchTier,
    instances: &[webcap_core::WindowInstance],
) -> BenchResult {
    let spec = SynopsisSpec {
        tier: TierId::App,
        workload: MixId::Ordering,
        level: MetricLevel::Hpc,
        algorithm,
    };
    let selection = tier.selection();
    measure(id, tier.reps(), || {
        let syn =
            PerformanceSynopsis::train(spec, instances, &selection).expect("bench workload trains");
        black_box(syn.cv_balanced_accuracy());
        instances.len() as u64
    })
}

/// Forward attribute selection alone (gain ranking + CV trials).
fn bench_forward_selection(
    tier: BenchTier,
    instances: &[webcap_core::WindowInstance],
) -> BenchResult {
    let data = dataset_from_instances(instances, TierId::App, MetricLevel::Hpc);
    let learner = Algorithm::NaiveBayes.learner();
    let selection = tier.selection();
    measure("forward_selection", tier.reps(), || {
        let report = forward_select(learner.as_ref(), &data, &selection)
            .expect("bench workload selects attributes");
        black_box(report.selected.len());
        data.len() as u64
    })
}

/// Coordinated-predictor train/predict update rate.
fn bench_predictor_updates(tier: BenchTier) -> BenchResult {
    let updates = tier.predictor_updates();
    measure("coordinated_predictor_updates", tier.reps(), || {
        let mut predictor = CoordinatedPredictor::new(4, CoordinatorConfig::default());
        // Deterministic pseudo-random stream (LCG); no RNG dependency.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..updates {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let bits = (state >> 33) as usize;
            let preds = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            let label = bits & 16 != 0;
            let bottleneck = if label {
                Some(if bits & 32 != 0 {
                    TierId::App
                } else {
                    TierId::Db
                })
            } else {
                None
            };
            predictor.train_instance(&preds, label, bottleneck);
            black_box(predictor.predict(&preds).overloaded);
        }
        black_box(predictor.trained_instances());
        updates
    })
}

/// One synthetic per-second wire sample for the collector bench.
fn collector_sample(seq: u64, with_app: bool) -> WireSample {
    WireSample {
        seq,
        t_s: seq as f64 + 1.0,
        interval_s: 1.0,
        tier: TierSample {
            utilization: 0.3,
            delivered_work_s: 0.3,
            arrivals: 20,
            completions: 20,
            ..TierSample::default()
        },
        hpc: vec![0.5; 12],
        os: vec![0.1; 64],
        app: with_app.then(|| AppStats {
            ebs_target: 10,
            ebs_active: 10,
            mix_id: MixId::Ordering,
            issued: 20,
            issued_browse: 10,
            completed: 20,
            completed_browse: 10,
            response_time_sum_s: 2.0,
            response_time_max_s: 0.4,
            in_flight: 1,
            response_times: RtHistogram::new(),
        }),
    }
}

/// Batch size of the wire-codec benches — the agent's default
/// `max_batch`, so the measured frame is the steady-path frame.
pub const WIRE_BATCH: usize = 32;

/// One agent-realistic `SampleBatch` frame: `WIRE_BATCH` consecutive
/// app-tier samples starting at `seq0`.
fn wire_batch_frame(seq0: u64) -> Frame {
    Frame::SampleBatch(
        (0..WIRE_BATCH as u64)
            .map(|i| collector_sample(seq0 + i, true))
            .collect(),
    )
}

/// Binary encode throughput on the steady path: one scratch buffer,
/// zero per-frame allocation, `wire_frames()` batches per repetition.
fn bench_wire_encode(tier: BenchTier) -> BenchResult {
    let frames: Vec<Frame> = (0..tier.wire_frames())
        .map(|f| wire_batch_frame(f * WIRE_BATCH as u64))
        .collect();
    let mut scratch: Vec<u8> = Vec::new();
    measure("wire_encode", tier.reps(), || {
        let mut bytes = 0u64;
        for frame in &frames {
            let _magic = encode_payload(frame, WireCodec::Binary, &mut scratch)
                .expect("bench frames encode");
            bytes += scratch.len() as u64;
        }
        black_box(bytes);
        frames.len() as u64 * WIRE_BATCH as u64
    })
}

/// Binary decode throughput: parse the same batched frames back out of
/// a contiguous wire capture, magic sniffing and all.
fn bench_wire_decode(tier: BenchTier) -> BenchResult {
    let mut wire: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    let frames = tier.wire_frames();
    for f in 0..frames {
        let frame = wire_batch_frame(f * WIRE_BATCH as u64);
        webcap_net::write_frame_codec(&mut wire, &frame, WireCodec::Binary, &mut scratch)
            .expect("bench frames encode");
    }
    measure("wire_decode", tier.reps(), || {
        let mut offset = 0usize;
        let mut decoded = 0u64;
        while let Some((frame, consumed)) =
            try_extract_frame(wire.get(offset..).unwrap_or(&[])).expect("bench capture is intact")
        {
            if let Frame::SampleBatch(batch) = &frame {
                decoded += batch.len() as u64;
            }
            black_box(&frame);
            offset += consumed;
        }
        assert_eq!(decoded, frames * WIRE_BATCH as u64, "every sample decodes");
        decoded
    })
}

/// The event-loop collector's ingest path: bytes arrive in socket-sized
/// chunks, accumulate in a reassembly buffer, and complete frames are
/// drained off the front — exactly what `service_conn` does per poll.
fn bench_collector_ingest(tier: BenchTier) -> BenchResult {
    let mut wire: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    let frames = tier.wire_frames();
    for f in 0..frames {
        let frame = wire_batch_frame(f * WIRE_BATCH as u64);
        webcap_net::write_frame_codec(&mut wire, &frame, WireCodec::Binary, &mut scratch)
            .expect("bench frames encode");
    }
    const CHUNK: usize = 16 * 1024;
    measure("collector_ingest", tier.reps(), || {
        let mut rbuf: Vec<u8> = Vec::new();
        let mut ingested = 0u64;
        for chunk in wire.chunks(CHUNK) {
            rbuf.extend_from_slice(chunk);
            let mut consumed_total = 0usize;
            while let Some((frame, consumed)) =
                try_extract_frame(rbuf.get(consumed_total..).unwrap_or(&[]))
                    .expect("bench capture is intact")
            {
                if let Frame::SampleBatch(batch) = &frame {
                    ingested += batch.len() as u64;
                }
                black_box(&frame);
                consumed_total += consumed;
            }
            rbuf.drain(..consumed_total);
        }
        assert!(rbuf.is_empty(), "no partial frame left over");
        assert_eq!(ingested, frames * WIRE_BATCH as u64);
        ingested
    })
}

/// Collector window-assembly throughput: feed gap-free two-tier streams
/// through a fresh [`Assembler`] and count ingested wire samples.
fn bench_collector_assembly(tier: BenchTier, meter: &CapacityMeter) -> BenchResult {
    let window_len = meter.config().window_len as u64;
    let windows = tier.collector_windows();
    let total = windows * window_len;
    measure("collector_window_assembly", tier.reps(), || {
        let mut assembler = Assembler::new(meter.clone(), 1);
        assembler.on_session_start(TierId::App);
        assembler.on_session_start(TierId::Db);
        let mut decisions = 0u64;
        {
            let mut sink = |_w: i64, _d: &webcap_core::OnlineDecision| decisions += 1;
            for seq in 0..total {
                assembler.on_sample(TierId::App, collector_sample(seq, true), &mut sink);
                assembler.on_sample(TierId::Db, collector_sample(seq, false), &mut sink);
            }
        }
        assert_eq!(decisions, windows, "all windows emit");
        assert_eq!(assembler.anomalies(), 0);
        total * 2
    })
}

/// Fleet merge throughput: pre-digest a two-collector fleet's frames
/// outside the timed region, then measure the merge node assembling the
/// global per-window view and scoring it with the meter — the per-frame
/// cost the front end pays when the telemetry plane is sharded.
fn bench_fleet_merge(tier: BenchTier, meter: &CapacityMeter) -> BenchResult {
    let window_len = meter.config().window_len as u64;
    let windows = tier.collector_windows();
    let total = windows * window_len;
    let sup_cfg = SupervisorConfig::default();
    let mut app = FleetCollector::new(0, &[TierId::App], window_len as i64, 1, sup_cfg);
    let mut db = FleetCollector::new(1, &[TierId::Db], window_len as i64, 1, sup_cfg);
    app.on_session_start(TierId::App);
    db.on_session_start(TierId::Db);
    let mut frames = Vec::new();
    for seq in 0..total {
        app.on_sample(TierId::App, &collector_sample(seq, true));
        db.on_sample(TierId::Db, &collector_sample(seq, false));
        for col in [&mut app, &mut db] {
            frames.extend(col.flush(None));
        }
    }
    let last_window = (total / window_len) as i64 - 1;
    for col in [&mut app, &mut db] {
        let tiers = col.tiers();
        col.on_bye(tiers[0], total - 1);
        let fin = DigestFin { tiers, last_window };
        frames.extend(col.flush(Some(fin)));
    }
    measure("fleet_merge", tier.reps(), || {
        let mut merge = MergeNode::new(meter.clone());
        for frame in &frames {
            merge.ingest(frame);
        }
        let outcome = merge.finalize();
        assert_eq!(outcome.decisions.len() as u64, windows, "all windows merge");
        assert_eq!(outcome.anomalies, 0);
        frames.len() as u64
    })
}

/// End-to-end capacity bisection through the in-process executor: the
/// cost of answering "what is this site's capacity" online. Work units
/// are the windows scored across all probes — deterministic, so the
/// regression gate can compare per-unit cost across machines.
fn bench_capsearch_bisection(tier: BenchTier, meter: &CapacityMeter) -> BenchResult {
    let scenario =
        webcap_capsearch::scenario::find("steady-shopping").expect("library scenario exists");
    let cfg = SearchConfig {
        initial_lo: 16,
        initial_hi: 96,
        tolerance: 24,
        max_probes: tier.capsearch_probes(),
        max_ebs: 256,
    };
    measure("capsearch_bisection", tier.reps(), || {
        let mut executor = SimExecutor::new(meter);
        let report =
            search_scenario(&scenario, &mut executor, &cfg).expect("bench capacity search runs");
        black_box(report.capacity_ebs);
        report
            .probes
            .iter()
            .map(|p| u64::from(p.windows_scored))
            .sum()
    })
}

/// Run the full suite at `tier` and assemble the report.
///
/// Workload preparation (simulating training instances, training the
/// collector bench's meter) happens outside the timed regions.
///
/// # Panics
///
/// Panics if a bench workload fails to train — the workloads are fixed
/// and seeded, so that is a code bug, not an input error.
pub fn run_suite(tier: BenchTier) -> BenchReport {
    let cfg = SimConfig::testbed(7);
    let instances = training_instances(MixId::Ordering, &cfg, tier.instance_scale(), 5);
    let meter =
        CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("bench meter trains");

    let results = vec![
        bench_sim_engine(tier),
        bench_synopsis_train(
            "synopsis_train_lr",
            Algorithm::LinearRegression,
            tier,
            &instances,
        ),
        bench_synopsis_train("synopsis_train_nb", Algorithm::NaiveBayes, tier, &instances),
        bench_synopsis_train("synopsis_train_tan", Algorithm::Tan, tier, &instances),
        bench_synopsis_train("synopsis_train_svm", Algorithm::Svm, tier, &instances),
        bench_forward_selection(tier, &instances),
        bench_predictor_updates(tier),
        bench_wire_encode(tier),
        bench_wire_decode(tier),
        bench_collector_ingest(tier),
        bench_collector_assembly(tier, &meter),
        bench_fleet_merge(tier, &meter),
        bench_capsearch_bisection(tier, &meter),
    ];
    debug_assert_eq!(results.len(), BENCH_IDS.len());
    BenchReport {
        schema_version: SCHEMA_VERSION,
        suite_hash: suite_hash(),
        git_rev: git_rev(),
        tier: tier.label().to_string(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_hash_is_stable_and_hex() {
        let h = suite_hash();
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h, suite_hash(), "pure function of the suite composition");
    }

    #[test]
    fn measure_summarizes_reps() {
        let mut calls = 0u64;
        let r = measure("toy", 5, || {
            calls += 1;
            42
        });
        assert_eq!(calls, 5);
        assert_eq!(r.reps, 5);
        assert_eq!(r.work_units, 42);
        assert!(r.median_ns <= r.p95_ns);
    }

    #[test]
    fn tier_knobs_are_ordered() {
        assert!(BenchTier::Quick.reps() < BenchTier::Full.reps());
        assert!(BenchTier::Quick.predictor_updates() < BenchTier::Full.predictor_updates());
        assert!(BenchTier::Quick.collector_windows() < BenchTier::Full.collector_windows());
        assert_eq!(BenchTier::Quick.label(), "quick");
        assert_eq!(BenchTier::Full.label(), "full");
    }

    #[test]
    fn predictor_bench_runs_small() {
        // Exercise the cheapest real bench end to end.
        let r = bench_predictor_updates(BenchTier::Quick);
        assert_eq!(r.id, "coordinated_predictor_updates");
        assert_eq!(r.work_units, BenchTier::Quick.predictor_updates());
        assert!(r.median_ns > 0);
    }

    #[test]
    fn wire_benches_run_small() {
        let expect = BenchTier::Quick.wire_frames() * WIRE_BATCH as u64;
        for r in [
            bench_wire_encode(BenchTier::Quick),
            bench_wire_decode(BenchTier::Quick),
            bench_collector_ingest(BenchTier::Quick),
        ] {
            assert_eq!(r.work_units, expect, "{}", r.id);
            assert!(r.median_ns > 0, "{}", r.id);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            suite_hash: suite_hash(),
            git_rev: "deadbeef".into(),
            tier: "quick".into(),
            results: vec![BenchResult {
                id: "toy".into(),
                reps: 5,
                work_units: 10,
                median_ns: 100,
                p95_ns: 120,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, report.schema_version);
        assert_eq!(back.suite_hash, report.suite_hash);
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.results[0].id, "toy");
    }
}
