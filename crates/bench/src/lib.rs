//! Shared infrastructure for the paper-reproduction benchmark harness.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper and prints the measured rows next to the values the paper
//! reports (recorded in `EXPERIMENTS.md`). This library holds the pieces
//! they share: calibrated workload programs, instance collection, table
//! formatting, and a scoped-thread parallel map for embarrassingly
//! parallel experiment grids.
//!
//! Set `WEBCAP_BENCH_SCALE` (default `1.0`) to shrink simulated durations
//! for quick smoke runs, e.g. `WEBCAP_BENCH_SCALE=0.3 cargo bench`.

pub mod baseline;
pub mod harness;
pub mod regression;

use webcap_core::monitor::{collect_run, WindowInstance};
use webcap_core::oracle::OracleConfig;
use webcap_core::workloads;
use webcap_hpc::HpcModel;
use webcap_parallel::Parallelism;
use webcap_sim::SimConfig;
use webcap_tpcw::{Mix, MixId, TrafficProgram};

/// Window length (seconds/samples) used by all experiments — the paper's
/// 30-second instance aggregation.
pub const WINDOW_LEN: usize = 30;
/// Stride between training windows (overlapping, for more instances).
pub const TRAIN_STRIDE: usize = 10;
/// Stride between evaluation windows (disjoint, like the paper).
pub const TEST_STRIDE: usize = 30;

/// Duration scale from `WEBCAP_BENCH_SCALE` (default 1.0, clamped to
/// `[0.05, 10]`).
pub fn bench_scale() -> f64 {
    std::env::var("WEBCAP_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(1.0, |v| v.clamp(0.05, 10.0))
}

/// The four test workloads of the paper's evaluation (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestWorkload {
    /// Ordering-mix knee-crossing ramp.
    Ordering,
    /// Browsing-mix knee-crossing ramp.
    Browsing,
    /// Alternating browsing/ordering under- and overload phases.
    Interleaved,
    /// Perturbed blended mix unseen during training.
    Unknown,
}

impl TestWorkload {
    /// All four, in the paper's figure order.
    pub const ALL: [TestWorkload; 4] = [
        TestWorkload::Ordering,
        TestWorkload::Browsing,
        TestWorkload::Interleaved,
        TestWorkload::Unknown,
    ];

    /// Axis label used in Figure 4.
    pub fn label(&self) -> &'static str {
        match self {
            TestWorkload::Ordering => "Ordering",
            TestWorkload::Browsing => "Browsing",
            TestWorkload::Interleaved => "Interleaved",
            TestWorkload::Unknown => "Unknown",
        }
    }

    /// Build the traffic program for this workload.
    pub fn program(&self, cfg: &SimConfig, scale: f64) -> TrafficProgram {
        match self {
            TestWorkload::Ordering => workloads::test_ramp(cfg, &Mix::ordering(), scale),
            TestWorkload::Browsing => workloads::test_ramp(cfg, &Mix::browsing(), scale),
            TestWorkload::Interleaved => workloads::interleaved_test(cfg, scale),
            TestWorkload::Unknown => workloads::unknown_test(cfg, scale, 0xBADC0DE),
        }
    }
}

/// Collect labeled training instances for one representative mix
/// (ramp + spike program, overlapping windows).
pub fn training_instances(
    mix: MixId,
    cfg: &SimConfig,
    scale: f64,
    metrics_seed: u64,
) -> Vec<WindowInstance> {
    let mix_obj = match mix {
        MixId::Ordering => Mix::ordering(),
        MixId::Browsing => Mix::browsing(),
        MixId::Shopping => Mix::shopping(),
        MixId::Custom => workloads::unknown_mix(metrics_seed),
    };
    let program = workloads::training_program(cfg, &mix_obj, scale);
    let log = collect_run(cfg, &program, &HpcModel::testbed(), metrics_seed);
    log.windows(WINDOW_LEN, TRAIN_STRIDE, &OracleConfig::default())
}

/// Collect labeled evaluation instances for one test workload (disjoint
/// windows).
pub fn test_instances(
    workload: TestWorkload,
    cfg: &SimConfig,
    scale: f64,
    metrics_seed: u64,
) -> Vec<WindowInstance> {
    let program = workload.program(cfg, scale);
    let log = collect_run(cfg, &program, &HpcModel::testbed(), metrics_seed);
    log.windows(WINDOW_LEN, TEST_STRIDE, &OracleConfig::default())
}

/// Render a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<width$}  ",
                cell,
                width = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Map `inputs` through `f` on scoped worker threads, preserving order.
/// The grid experiments (32 synopses of Table I, the ablation sweep) are
/// embarrassingly parallel.
///
/// A thin wrapper over the workspace-wide deterministic fan-out
/// ([`webcap_parallel::par_map`]) at [`Parallelism::Auto`], which honours
/// the `WEBCAP_JOBS` environment variable.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    webcap_parallel::par_map(Parallelism::Auto, inputs, f)
}

/// Format a balanced accuracy as the paper prints it (three decimals).
pub fn ba3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_and_clamps() {
        // Default when unset (other tests may set it — accept any valid value).
        let s = bench_scale();
        assert!((0.05..=10.0).contains(&s));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn workload_programs_build() {
        let cfg = SimConfig::testbed(0);
        for w in TestWorkload::ALL {
            let p = w.program(&cfg, 0.2);
            assert!(p.duration_s() > 0.0, "{}", w.label());
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ba3(0.9567), "0.957");
        assert_eq!(pct(0.905), "90.5");
    }
}
