//! Variance-aware baseline capture.
//!
//! A regression gate is only as good as its baseline: a single noisy
//! run recorded as "the" baseline either hides real regressions (if it
//! was slow) or fails every future run (if it was lucky). This module
//! aggregates several measured suite rounds into one baseline report
//! and *refuses* the capture when any bench's median varies too much
//! across rounds — the machine is too noisy to arm a gate from.
//!
//! The accepted baseline takes, per bench, the median across rounds of
//! the per-round medians (and likewise for p95), which is robust to a
//! single disturbed round without averaging noise into the numbers.

use crate::harness::BenchReport;

/// Default acceptance threshold for the coefficient of variation
/// (standard deviation / mean) of each bench's median across rounds.
pub const DEFAULT_MAX_CV: f64 = 0.15;

/// An accepted capture: the aggregated baseline plus the observed
/// per-bench variability that justified accepting it.
#[derive(Debug, Clone)]
pub struct CaptureOutcome {
    /// The aggregated report to commit as `BENCH_baseline.json`.
    pub baseline: BenchReport,
    /// Coefficient of variation of each bench's median across rounds,
    /// in suite order.
    pub cv_by_bench: Vec<(String, f64)>,
}

fn median_u64(values: &mut [u64]) -> u64 {
    values.sort_unstable();
    values[values.len() / 2]
}

fn coefficient_of_variation(values: &[u64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Aggregate `rounds` identically-shaped suite reports into one
/// baseline, rejecting the capture if any bench's median CV exceeds
/// `max_cv`.
///
/// # Errors
///
/// * fewer than two rounds — variance cannot be estimated;
/// * rounds disagreeing on schema, suite hash, tier, bench set, or
///   work units — they measured different things;
/// * any bench whose median CV exceeds `max_cv` — the error lists every
///   offender so the operator can see how far off the machine is.
pub fn aggregate_rounds(rounds: &[BenchReport], max_cv: f64) -> Result<CaptureOutcome, String> {
    let Some(first) = rounds.first() else {
        return Err("no rounds to aggregate".to_string());
    };
    if rounds.len() < 2 {
        return Err("need at least 2 measured rounds to estimate variance".to_string());
    }
    for (i, round) in rounds.iter().enumerate() {
        if round.schema_version != first.schema_version
            || round.suite_hash != first.suite_hash
            || round.tier != first.tier
        {
            return Err(format!(
                "round {} does not match round 1 (schema/suite/tier); \
                 captures must come from one suite invocation",
                i + 1
            ));
        }
        if round.results.len() != first.results.len()
            || round
                .results
                .iter()
                .zip(&first.results)
                .any(|(a, b)| a.id != b.id || a.work_units != b.work_units)
        {
            return Err(format!(
                "round {} ran a different bench set or workload than round 1",
                i + 1
            ));
        }
    }

    let mut baseline = first.clone();
    let mut cv_by_bench = Vec::with_capacity(first.results.len());
    let mut offenders: Vec<String> = Vec::new();
    for (bi, slot) in baseline.results.iter_mut().enumerate() {
        let mut medians: Vec<u64> = rounds.iter().map(|r| r.results[bi].median_ns).collect();
        let cv = coefficient_of_variation(&medians);
        if cv > max_cv {
            offenders.push(format!("{} (CV {:.1}%)", slot.id, cv * 100.0));
        }
        slot.median_ns = median_u64(&mut medians);
        let mut p95s: Vec<u64> = rounds.iter().map(|r| r.results[bi].p95_ns).collect();
        slot.p95_ns = median_u64(&mut p95s);
        cv_by_bench.push((slot.id.clone(), cv));
    }
    if !offenders.is_empty() {
        return Err(format!(
            "capture rejected: median varies more than {:.1}% across rounds for \
             {}; quiesce the machine (or raise --max-cv deliberately) and retry",
            max_cv * 100.0,
            offenders.join(", ")
        ));
    }
    Ok(CaptureOutcome {
        baseline,
        cv_by_bench,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{suite_hash, BenchResult, SCHEMA_VERSION};

    fn round(medians: &[u64]) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            suite_hash: suite_hash(),
            git_rev: "test".into(),
            tier: "quick".into(),
            results: medians
                .iter()
                .enumerate()
                .map(|(i, &m)| BenchResult {
                    id: format!("bench_{i}"),
                    reps: 5,
                    work_units: 100,
                    median_ns: m,
                    p95_ns: m + m / 10,
                })
                .collect(),
        }
    }

    #[test]
    fn quiet_rounds_aggregate_to_the_median() {
        let rounds = [
            round(&[100, 1000]),
            round(&[104, 960]),
            round(&[98, 1020]),
            round(&[102, 990]),
            round(&[101, 1005]),
        ];
        let outcome = aggregate_rounds(&rounds, DEFAULT_MAX_CV).expect("quiet capture");
        assert_eq!(outcome.baseline.results[0].median_ns, 101);
        assert_eq!(outcome.baseline.results[1].median_ns, 1000);
        assert_eq!(outcome.cv_by_bench.len(), 2);
        assert!(outcome.cv_by_bench.iter().all(|(_, cv)| *cv < 0.05));
    }

    #[test]
    fn noisy_rounds_are_rejected_naming_the_offender() {
        let rounds = [round(&[100, 1000]), round(&[100, 2500]), round(&[100, 900])];
        let err = aggregate_rounds(&rounds, DEFAULT_MAX_CV).unwrap_err();
        assert!(err.contains("bench_1"), "{err}");
        assert!(!err.contains("bench_0"), "{err}");
    }

    #[test]
    fn single_disturbed_round_does_not_skew_the_baseline() {
        // One slow outlier within tolerance: median-of-medians ignores it.
        let rounds = [
            round(&[100]),
            round(&[100]),
            round(&[100]),
            round(&[100]),
            round(&[128]),
        ];
        let outcome = aggregate_rounds(&rounds, DEFAULT_MAX_CV).expect("capture");
        assert_eq!(outcome.baseline.results[0].median_ns, 100);
    }

    #[test]
    fn mismatched_rounds_are_rejected() {
        assert!(aggregate_rounds(&[], DEFAULT_MAX_CV).is_err());
        assert!(aggregate_rounds(&[round(&[100])], DEFAULT_MAX_CV).is_err());

        let mut other_tier = round(&[100]);
        other_tier.tier = "full".into();
        let err = aggregate_rounds(&[round(&[100]), other_tier], DEFAULT_MAX_CV).unwrap_err();
        assert!(err.contains("schema/suite/tier"), "{err}");

        let mut other_work = round(&[100]);
        other_work.results[0].work_units = 999;
        let err = aggregate_rounds(&[round(&[100]), other_work], DEFAULT_MAX_CV).unwrap_err();
        assert!(err.contains("different bench set"), "{err}");
    }

    #[test]
    fn aggregated_baseline_gates_against_itself() {
        // The captured baseline must be comparable by the existing gate.
        let rounds = [round(&[100, 1000]), round(&[101, 1001]), round(&[99, 999])];
        let outcome = aggregate_rounds(&rounds, DEFAULT_MAX_CV).expect("capture");
        let gate = crate::regression::compare(&outcome.baseline, &rounds[0], 0.25)
            .expect("comparable reports");
        assert!(gate.passed());
    }
}
