//! Perf-regression gate: compare a fresh [`BenchReport`] against a
//! checked-in baseline (`BENCH_baseline.json`).
//!
//! CI runs `webcap bench --quick --baseline BENCH_baseline.json` and fails
//! the job when any bench's median wall time regresses by more than the
//! tolerance (default 25%, overridable via `WEBCAP_BENCH_TOLERANCE`).
//! Comparisons are only meaningful between runs of the *same* suite doing
//! the *same* work, so a schema/suite/tier/work mismatch is a hard error
//! telling the operator to refresh the baseline, never a silent pass.

use crate::harness::BenchReport;

/// Default allowed slowdown before a bench counts as regressed (0.25 =
/// 25% over the baseline median).
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Environment variable overriding [`DEFAULT_TOLERANCE`].
pub const TOLERANCE_ENV: &str = "WEBCAP_BENCH_TOLERANCE";

/// Outcome of a baseline comparison.
#[derive(Debug, Clone)]
pub struct RegressionOutcome {
    /// Tolerance the comparison used.
    pub tolerance: f64,
    /// Benches compared.
    pub compared: usize,
    /// One human-readable line per regressed bench (empty = gate passes).
    pub regressions: Vec<String>,
    /// One line per bench that *improved* past the tolerance — worth
    /// refreshing the baseline to ratchet the gate down.
    pub improvements: Vec<String>,
}

impl RegressionOutcome {
    /// Whether the gate passes (no bench regressed past the tolerance).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Parse the allowed-slowdown fraction, preferring `env_value` (the
/// content of [`TOLERANCE_ENV`]) over [`DEFAULT_TOLERANCE`].
///
/// # Errors
///
/// Returns a clear message when the value is set but not a finite
/// nonnegative number — a malformed gate knob must fail the gate, not
/// silently run with the default.
pub fn parse_tolerance(env_value: Option<&str>) -> Result<f64, String> {
    match env_value {
        None => Ok(DEFAULT_TOLERANCE),
        Some(raw) => {
            let trimmed = raw.trim();
            match trimmed.parse::<f64>() {
                Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
                _ => Err(format!(
                    "{TOLERANCE_ENV}='{raw}' is not a nonnegative number \
                     (expected an allowed-slowdown fraction like 0.25)"
                )),
            }
        }
    }
}

/// Read [`TOLERANCE_ENV`] from the process environment and parse it.
///
/// # Errors
///
/// Propagates [`parse_tolerance`]'s error for malformed values.
pub fn tolerance_from_env() -> Result<f64, String> {
    parse_tolerance(std::env::var(TOLERANCE_ENV).ok().as_deref())
}

/// Compare `current` against `baseline` with `tolerance`.
///
/// # Errors
///
/// Returns a message (not an outcome) when the two reports are not
/// comparable: schema-version or suite-hash mismatch (the suite changed —
/// refresh the baseline), tier mismatch, a bench missing from either
/// side, or differing per-bench work units.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Result<RegressionOutcome, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "baseline schema v{} != current schema v{}; refresh BENCH_baseline.json",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.suite_hash != current.suite_hash {
        return Err(format!(
            "suite hash changed ({} -> {}); the bench suite was modified — \
             refresh BENCH_baseline.json",
            baseline.suite_hash, current.suite_hash
        ));
    }
    if baseline.tier != current.tier {
        return Err(format!(
            "baseline ran at tier '{}' but current ran at '{}'",
            baseline.tier, current.tier
        ));
    }
    let mut outcome = RegressionOutcome {
        tolerance,
        compared: 0,
        regressions: Vec::new(),
        improvements: Vec::new(),
    };
    for cur in &current.results {
        let base = baseline
            .results
            .iter()
            .find(|b| b.id == cur.id)
            .ok_or_else(|| {
                format!(
                    "bench '{}' missing from the baseline; refresh BENCH_baseline.json",
                    cur.id
                )
            })?;
        if base.work_units != cur.work_units {
            return Err(format!(
                "bench '{}' does {} work units but the baseline did {}; \
                 refresh BENCH_baseline.json",
                cur.id, cur.work_units, base.work_units
            ));
        }
        outcome.compared += 1;
        let ratio = cur.median_ns as f64 / (base.median_ns as f64).max(1.0);
        if ratio > 1.0 + tolerance {
            outcome.regressions.push(format!(
                "{}: {:.0}ns -> {:.0}ns ({:+.1}% > +{:.1}% allowed)",
                cur.id,
                base.median_ns as f64,
                cur.median_ns as f64,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0
            ));
        } else if ratio < 1.0 / (1.0 + tolerance) {
            outcome.improvements.push(format!(
                "{}: {:.0}ns -> {:.0}ns ({:.2}x faster)",
                cur.id,
                base.median_ns as f64,
                cur.median_ns as f64,
                1.0 / ratio
            ));
        }
    }
    for base in &baseline.results {
        if !current.results.iter().any(|c| c.id == base.id) {
            return Err(format!(
                "bench '{}' present in the baseline but not in the current run; \
                 refresh BENCH_baseline.json",
                base.id
            ));
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{suite_hash, BenchResult, SCHEMA_VERSION};

    fn report(tier: &str, results: Vec<(&str, u64, u64)>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            suite_hash: suite_hash(),
            git_rev: "test".into(),
            tier: tier.into(),
            results: results
                .into_iter()
                .map(|(id, work, median)| BenchResult {
                    id: id.into(),
                    reps: 5,
                    work_units: work,
                    median_ns: median,
                    p95_ns: median + median / 10,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let a = report("quick", vec![("x", 10, 1000), ("y", 20, 2000)]);
        let out = compare(&a, &a, DEFAULT_TOLERANCE).unwrap();
        assert!(out.passed());
        assert_eq!(out.compared, 2);
        assert!(out.improvements.is_empty());
    }

    #[test]
    fn slowdown_past_tolerance_fails() {
        let base = report("quick", vec![("x", 10, 1000)]);
        let cur = report("quick", vec![("x", 10, 1300)]);
        let out = compare(&base, &cur, 0.25).unwrap();
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].contains("x:"), "{:?}", out.regressions);
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = report("quick", vec![("x", 10, 1000)]);
        let cur = report("quick", vec![("x", 10, 1200)]);
        assert!(compare(&base, &cur, 0.25).unwrap().passed());
    }

    #[test]
    fn speedup_is_reported_as_improvement() {
        let base = report("quick", vec![("x", 10, 3000)]);
        let cur = report("quick", vec![("x", 10, 1000)]);
        let out = compare(&base, &cur, 0.25).unwrap();
        assert!(out.passed());
        assert_eq!(out.improvements.len(), 1);
    }

    #[test]
    fn suite_hash_mismatch_is_an_error() {
        let base = report("quick", vec![("x", 10, 1000)]);
        let mut cur = report("quick", vec![("x", 10, 1000)]);
        cur.suite_hash = "0000000000000000".into();
        let err = compare(&base, &cur, 0.25).unwrap_err();
        assert!(err.contains("refresh"), "{err}");
    }

    #[test]
    fn tier_and_work_mismatches_are_errors() {
        let base = report("quick", vec![("x", 10, 1000)]);
        let full = report("full", vec![("x", 10, 1000)]);
        assert!(compare(&base, &full, 0.25).is_err());
        let more_work = report("quick", vec![("x", 99, 1000)]);
        assert!(compare(&base, &more_work, 0.25).is_err());
    }

    #[test]
    fn missing_benches_are_errors_both_ways() {
        let two = report("quick", vec![("x", 10, 1000), ("y", 20, 2000)]);
        let one = report("quick", vec![("x", 10, 1000)]);
        assert!(compare(&two, &one, 0.25).is_err(), "baseline-only bench");
        assert!(compare(&one, &two, 0.25).is_err(), "current-only bench");
    }

    #[test]
    fn tolerance_parsing_is_typed() {
        assert_eq!(parse_tolerance(None).unwrap(), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("0.5")).unwrap(), 0.5);
        assert_eq!(parse_tolerance(Some(" 0 ")).unwrap(), 0.0);
        for bad in ["", "abc", "-0.1", "NaN", "inf"] {
            let err = parse_tolerance(Some(bad)).unwrap_err();
            assert!(err.contains(TOLERANCE_ENV), "{err}");
        }
    }
}
