//! Deterministic bisection to the SLO boundary.
//!
//! [`bisect`] finds the largest probed population that still meets the
//! SLO: it evaluates each candidate at most once (memoized), widens the
//! initial bracket when both guesses land on the same side of the
//! boundary, and then halves the bracket until it is no wider than the
//! tolerance or the probe budget runs out. The probe order is a pure
//! function of the configuration and the pass/fail answers, so two runs
//! against the same executor replay the identical probe sequence.

use std::collections::BTreeMap;

use crate::executor::{ExecError, ProbeMeasure, ScenarioExecutor};
use crate::report::CapacityReport;
use crate::scenario::Scenario;

/// Bracketing and budget parameters for one capacity search.
///
/// Plain data on purpose: every field combination is meaningful (the
/// driver clamps `initial_lo <= initial_hi` and respects `max_ebs`), so
/// there is no constructor to bypass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct SearchConfig {
    /// Initial lower bracket guess (EBs); expected to pass the SLO.
    pub initial_lo: u32,
    /// Initial upper bracket guess (EBs); expected to fail the SLO.
    pub initial_hi: u32,
    /// Stop once the bracket is at most this wide (EBs).
    pub tolerance: u32,
    /// Hard cap on distinct probe evaluations.
    pub max_probes: u32,
    /// Never probe above this population, even while expanding.
    pub max_ebs: u32,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            initial_lo: 8,
            initial_hi: 256,
            tolerance: 8,
            max_probes: 24,
            max_ebs: 4096,
        }
    }
}

impl SearchConfig {
    /// The coarse configuration the golden suite and `--bless` share.
    /// Changing it regenerates every golden report, so treat it like a
    /// schema version.
    pub fn quick() -> SearchConfig {
        SearchConfig {
            initial_lo: 12,
            initial_hi: 192,
            tolerance: 12,
            max_probes: 10,
            max_ebs: 1024,
        }
    }
}

/// What a bisection concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectOutcome {
    /// Largest probed population that met the SLO (0 if even one EB
    /// fails).
    pub capacity: u32,
    /// Smallest probed population that violated the SLO, if any probe
    /// failed.
    pub first_failing: Option<u32>,
    /// Every distinct probe in evaluation order, with its verdict.
    pub probes: Vec<(u32, bool)>,
    /// Whether the final bracket is within tolerance (false when the
    /// probe budget ran out first, or the boundary lies above
    /// `max_ebs`).
    pub converged: bool,
}

fn eval<E>(
    memo: &mut BTreeMap<u32, bool>,
    order: &mut Vec<(u32, bool)>,
    probe: &mut impl FnMut(u32) -> Result<bool, E>,
    ebs: u32,
) -> Result<bool, E> {
    if let Some(&pass) = memo.get(&ebs) {
        return Ok(pass);
    }
    let pass = probe(ebs)?;
    memo.insert(ebs, pass);
    order.push((ebs, pass));
    Ok(pass)
}

/// Bisect to the SLO boundary. `probe(ebs)` returns whether the SLO
/// held at that population; each distinct population is evaluated once.
///
/// # Errors
///
/// The first probe error aborts the search and is returned as-is.
pub fn bisect<E>(
    cfg: &SearchConfig,
    mut probe: impl FnMut(u32) -> Result<bool, E>,
) -> Result<BisectOutcome, E> {
    let max_ebs = cfg.max_ebs.max(1);
    let mut lo = cfg.initial_lo.clamp(1, max_ebs);
    let mut hi = cfg.initial_hi.clamp(lo, max_ebs);
    let mut memo: BTreeMap<u32, bool> = BTreeMap::new();
    let mut order: Vec<(u32, bool)> = Vec::new();
    let budget = |order: &[(u32, bool)]| (order.len() as u32) < cfg.max_probes.max(2);

    // Expand the bracket down until `lo` passes (or we hit 1 failing).
    while budget(&order) && !eval(&mut memo, &mut order, &mut probe, lo)? {
        if lo == 1 {
            return Ok(finish(&memo, order, true));
        }
        hi = lo;
        lo = (lo / 2).max(1);
    }
    // Expand up until `hi` fails (or we hit the ceiling passing).
    while budget(&order) && eval(&mut memo, &mut order, &mut probe, hi)? {
        if hi == max_ebs {
            return Ok(finish(&memo, order, false));
        }
        lo = hi;
        hi = (hi.saturating_mul(2)).min(max_ebs);
    }
    // Halve the bracket: `lo` passes and `hi` fails throughout, unless
    // the budget ran out during expansion (then `converged` is false).
    while hi - lo > cfg.tolerance && budget(&order) {
        let mid = lo + (hi - lo) / 2;
        if eval(&mut memo, &mut order, &mut probe, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let converged = hi - lo <= cfg.tolerance
        && memo.get(&lo).copied() == Some(true)
        && memo.get(&hi).copied() == Some(false);
    Ok(finish(&memo, order, converged))
}

fn finish(memo: &BTreeMap<u32, bool>, probes: Vec<(u32, bool)>, converged: bool) -> BisectOutcome {
    // The claim is always backed by an actual probe: the largest
    // population observed passing, 0 if nothing passed.
    let capacity = memo
        .iter()
        .rev()
        .find(|(_, &pass)| pass)
        .map(|(&ebs, _)| ebs)
        .unwrap_or(0);
    let first_failing = memo.iter().find(|(_, &pass)| !pass).map(|(&ebs, _)| ebs);
    BisectOutcome {
        capacity,
        first_failing,
        probes,
        converged,
    }
}

/// Run a full capacity search for one scenario through an executor and
/// assemble the byte-stable report.
///
/// # Errors
///
/// Propagates the first executor failure.
pub fn search_scenario(
    scenario: &Scenario,
    executor: &mut dyn ScenarioExecutor,
    cfg: &SearchConfig,
) -> Result<CapacityReport, ExecError> {
    let mut measures: BTreeMap<u32, ProbeMeasure> = BTreeMap::new();
    let outcome = bisect(cfg, |ebs| {
        let measure = executor.measure(scenario, ebs)?;
        let pass = measure.slo_pass;
        measures.insert(ebs, measure);
        Ok::<bool, ExecError>(pass)
    })?;
    let step = |ebs: u32| measures.get(&ebs).cloned();
    let capacity_rps = step(outcome.capacity)
        .map(|m| m.achieved_rps)
        .unwrap_or(0.0);
    let bottleneck = outcome
        .first_failing
        .and_then(|ebs| step(ebs).and_then(|m| m.predicted_bottleneck.or(m.oracle_bottleneck)));
    let probes: Vec<ProbeMeasure> = outcome
        .probes
        .iter()
        .filter_map(|&(ebs, _)| step(ebs))
        .collect();
    Ok(CapacityReport::assemble(
        scenario,
        executor.label(),
        cfg,
        &outcome,
        capacity_rps,
        bottleneck,
        probes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn threshold_probe(t: u32) -> impl FnMut(u32) -> Result<bool, Infallible> {
        move |ebs| Ok(ebs <= t)
    }

    fn run(cfg: &SearchConfig, t: u32) -> BisectOutcome {
        match bisect(cfg, threshold_probe(t)) {
            Ok(outcome) => outcome,
        }
    }

    #[test]
    fn converges_inside_the_initial_bracket() {
        let cfg = SearchConfig {
            initial_lo: 10,
            initial_hi: 200,
            tolerance: 1,
            max_probes: 32,
            max_ebs: 1024,
        };
        let out = run(&cfg, 57);
        assert_eq!(out.capacity, 57);
        assert_eq!(out.first_failing, Some(58));
        assert!(out.converged);
    }

    #[test]
    fn expands_the_bracket_when_both_guesses_pass() {
        let cfg = SearchConfig {
            initial_lo: 4,
            initial_hi: 8,
            tolerance: 1,
            max_probes: 40,
            max_ebs: 4096,
        };
        let out = run(&cfg, 300);
        assert_eq!(out.capacity, 300);
        assert!(out.converged);
    }

    #[test]
    fn expands_the_bracket_when_both_guesses_fail() {
        let cfg = SearchConfig {
            initial_lo: 100,
            initial_hi: 400,
            tolerance: 1,
            max_probes: 40,
            max_ebs: 4096,
        };
        let out = run(&cfg, 9);
        assert_eq!(out.capacity, 9);
        assert_eq!(out.first_failing, Some(10));
        assert!(out.converged);
    }

    #[test]
    fn zero_capacity_when_even_one_eb_fails() {
        let out = run(&SearchConfig::default(), 0);
        assert_eq!(out.capacity, 0);
        assert_eq!(out.first_failing, Some(1));
        assert!(out.converged);
    }

    #[test]
    fn saturating_at_the_ceiling_is_not_convergence() {
        let cfg = SearchConfig {
            max_ebs: 128,
            ..SearchConfig::default()
        };
        let out = run(&cfg, 100_000);
        assert_eq!(out.capacity, 128);
        assert_eq!(out.first_failing, None);
        assert!(!out.converged);
    }

    #[test]
    fn each_population_is_probed_once() {
        let mut calls: Vec<u32> = Vec::new();
        let out = bisect(&SearchConfig::default(), |ebs| {
            calls.push(ebs);
            Ok::<bool, Infallible>(ebs <= 77)
        });
        let out = match out {
            Ok(o) => o,
        };
        let mut unique = calls.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), calls.len(), "no repeat probes: {calls:?}");
        assert_eq!(
            out.probes.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            calls,
            "trace records evaluation order"
        );
    }

    #[test]
    fn probe_errors_abort_the_search() {
        let result = bisect(&SearchConfig::default(), |ebs| {
            if ebs >= 64 {
                Err("boom")
            } else {
                Ok(true)
            }
        });
        assert_eq!(result.unwrap_err(), "boom");
    }

    #[test]
    fn budget_exhaustion_reports_non_convergence() {
        let cfg = SearchConfig {
            initial_lo: 1,
            initial_hi: 4096,
            tolerance: 1,
            max_probes: 4,
            max_ebs: 4096,
        };
        let out = run(&cfg, 1000);
        assert!(!out.converged);
        assert!(out.probes.len() <= 4);
        // The reported capacity is still a population that passed.
        assert!(out.capacity <= 1000);
    }
}
