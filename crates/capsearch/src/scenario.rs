//! Seeded, pure-data scenarios and their constrained TOML codec.
//!
//! A [`Scenario`] is everything a capacity search needs to be replayed
//! bit-for-bit anywhere: a seed, an SLO, a load curve expressed as
//! *fractions of the probe level* (so one scenario describes the shape
//! of the traffic at every probed population), a mix timeline, and a
//! schedule of telemetry faults. It deliberately contains no behavior
//! beyond translation into the existing building blocks: a
//! [`TrafficProgram`] for the simulator and a pair of
//! [`FaultSchedule`]s for the `webcap-net` agents.
//!
//! The on-disk format is a small, strict subset of TOML — four section
//! kinds (`[scenario]`, `[slo]`, `[[phase]]`, `[[fault]]`), `key =
//! value` pairs, `#` comments. [`Scenario::to_toml`] renders floats
//! with Rust's shortest-roundtrip formatting, so
//! TOML → [`Scenario`] → TOML is byte-lossless (property-tested).
//! Unknown keys, duplicate keys, and missing required keys are errors:
//! a scenario that drives a capacity claim must not silently ignore a
//! typo.

use std::fmt;

use webcap_net::FaultSchedule;
use webcap_sim::TierId;
use webcap_tpcw::{Mix, Phase, TrafficProgram};

/// The service-level objective a probe is judged against.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Slo {
    /// Response-time deadline, seconds: a completed request slower than
    /// this counts as an error.
    pub timeout_s: f64,
    /// Maximum tolerated fraction of errors (requests past the
    /// deadline) over the scored windows.
    pub max_error_fraction: f64,
    /// Maximum tolerated 99th-percentile response time, seconds.
    pub max_p99_s: f64,
}

/// The named TPC-W mixes a scenario phase can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum ScenarioMix {
    /// TPC-W browsing mix (95% browse interactions).
    Browsing,
    /// TPC-W shopping mix (80% browse interactions).
    Shopping,
    /// TPC-W ordering mix (50% browse interactions).
    Ordering,
}

impl ScenarioMix {
    /// The lowercase name used in scenario files.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioMix::Browsing => "browsing",
            ScenarioMix::Shopping => "shopping",
            ScenarioMix::Ordering => "ordering",
        }
    }

    /// The full mix definition.
    pub fn mix(&self) -> Mix {
        match self {
            ScenarioMix::Browsing => Mix::browsing(),
            ScenarioMix::Shopping => Mix::shopping(),
            ScenarioMix::Ordering => Mix::ordering(),
        }
    }

    fn parse(name: &str) -> Option<ScenarioMix> {
        match name {
            "browsing" => Some(ScenarioMix::Browsing),
            "shopping" => Some(ScenarioMix::Shopping),
            "ordering" => Some(ScenarioMix::Ordering),
            _ => None,
        }
    }
}

/// One phase of a scenario's load curve. `from`/`to` are fractions of
/// the probed population: a probe at `P` EBs runs this phase from
/// `round(from * P)` to `round(to * P)` emulated browsers (at least 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioPhase {
    /// Mix active during the phase.
    pub mix: ScenarioMix,
    /// Load fraction at phase start.
    pub from: f64,
    /// Load fraction at phase end (equal to `from` = steady phase).
    pub to: f64,
    /// Phase duration, seconds.
    pub duration_s: f64,
}

/// A scheduled telemetry fault, in sample-sequence time (sequence `s`
/// is the per-tier sample covering simulated second `s+1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// One tier's agent drops every sample with sequence in
    /// `[from_s, until_s)` — a silent outage the collector must
    /// quarantine.
    AgentDown {
        /// Affected tier.
        tier: TierId,
        /// First dropped sequence (inclusive).
        from_s: u64,
        /// First sequence sent again (exclusive bound).
        until_s: u64,
    },
    /// One tier's agent tears its connection down and reconnects
    /// immediately before sending sequence `at_s`.
    Reconnect {
        /// Affected tier.
        tier: TierId,
        /// Sequence the new session starts with.
        at_s: u64,
    },
}

impl FaultEvent {
    fn tier(&self) -> TierId {
        match self {
            FaultEvent::AgentDown { tier, .. } | FaultEvent::Reconnect { tier, .. } => *tier,
        }
    }
}

fn tier_label(tier: TierId) -> &'static str {
    match tier {
        TierId::App => "app",
        TierId::Db => "db",
    }
}

fn tier_parse(name: &str) -> Option<TierId> {
    match name {
        "app" => Some(TierId::App),
        "db" => Some(TierId::Db),
        _ => None,
    }
}

/// A complete, replayable capacity-search scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique scenario name (also the golden-report file stem).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Seed for the simulation run and the metric synthesis.
    pub seed: u64,
    /// Leading seconds excluded from SLO scoring (closed-loop warm-up).
    pub warmup_s: u32,
    /// The SLO defining the capacity boundary.
    pub slo: Slo,
    /// The load curve, as fractions of the probe level.
    pub phases: Vec<ScenarioPhase>,
    /// Scheduled telemetry faults (sorted canonically by the codec).
    pub faults: Vec<FaultEvent>,
}

impl Scenario {
    /// Total scenario duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// The traffic program for a probe at `probe_ebs` emulated
    /// browsers: every phase's fractions scaled by the probe level.
    pub fn program(&self, probe_ebs: u32) -> TrafficProgram {
        let scale = |frac: f64| ((frac * f64::from(probe_ebs)).round() as u32).max(1);
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let (from, to) = (scale(p.from), scale(p.to));
                let shape = if from == to {
                    webcap_tpcw::traffic::PopulationShape::Steady { ebs: from }
                } else {
                    webcap_tpcw::traffic::PopulationShape::Ramp { from, to }
                };
                Phase {
                    mix: p.mix.mix(),
                    shape,
                    duration_s: p.duration_s,
                }
            })
            .collect();
        TrafficProgram::new(phases)
    }

    /// The per-tier fault schedules (`[App, Db]`) for the loopback
    /// plane, and for the pure poisoning oracle the sim executor uses.
    pub fn schedules(&self) -> [FaultSchedule; 2] {
        let mut schedules = [FaultSchedule::NONE, FaultSchedule::NONE];
        for event in &self.faults {
            let slot = match event.tier() {
                TierId::App => &mut schedules[0],
                TierId::Db => &mut schedules[1],
            };
            match *event {
                FaultEvent::AgentDown {
                    from_s, until_s, ..
                } => {
                    slot.drop_ranges.push((from_s, until_s.saturating_sub(1)));
                }
                FaultEvent::Reconnect { at_s, .. } => slot.reconnect_before.push(at_s),
            }
        }
        for schedule in &mut schedules {
            schedule.drop_ranges.sort_unstable();
            schedule.reconnect_before.sort_unstable();
        }
        schedules
    }

    /// Render the scenario in the canonical on-disk form. The output is
    /// a pure function of the scenario, and [`Scenario::from_toml`] of
    /// it reconstructs the scenario exactly.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[scenario]\n");
        out.push_str(&format!("name = \"{}\"\n", self.name));
        out.push_str(&format!("description = \"{}\"\n", self.description));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("warmup_s = {}\n", self.warmup_s));
        out.push_str("\n[slo]\n");
        out.push_str(&format!("timeout_s = {:?}\n", self.slo.timeout_s));
        out.push_str(&format!(
            "max_error_fraction = {:?}\n",
            self.slo.max_error_fraction
        ));
        out.push_str(&format!("max_p99_s = {:?}\n", self.slo.max_p99_s));
        for phase in &self.phases {
            out.push_str("\n[[phase]]\n");
            out.push_str(&format!("mix = \"{}\"\n", phase.mix.label()));
            out.push_str(&format!("from = {:?}\n", phase.from));
            out.push_str(&format!("to = {:?}\n", phase.to));
            out.push_str(&format!("duration_s = {:?}\n", phase.duration_s));
        }
        for fault in &self.faults {
            out.push_str("\n[[fault]]\n");
            match *fault {
                FaultEvent::AgentDown {
                    tier,
                    from_s,
                    until_s,
                } => {
                    out.push_str("kind = \"agent-down\"\n");
                    out.push_str(&format!("tier = \"{}\"\n", tier_label(tier)));
                    out.push_str(&format!("from_s = {from_s}\n"));
                    out.push_str(&format!("until_s = {until_s}\n"));
                }
                FaultEvent::Reconnect { tier, at_s } => {
                    out.push_str("kind = \"reconnect\"\n");
                    out.push_str(&format!("tier = \"{}\"\n", tier_label(tier)));
                    out.push_str(&format!("at_s = {at_s}\n"));
                }
            }
        }
        out
    }

    /// Parse the on-disk form, validating strictly.
    ///
    /// # Errors
    ///
    /// Syntax errors, unknown or duplicate keys, missing required keys,
    /// and semantically invalid values (non-positive durations,
    /// non-finite numbers, empty phase lists, inverted fault ranges)
    /// are all reported with the offending line number.
    pub fn from_toml(text: &str) -> Result<Scenario, ScenarioParseError> {
        Parser::new(text).parse()
    }
}

/// A parse/validation failure, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ScenarioParseError {}

/// Raw `key = value` pairs of one section instance.
struct Section {
    kind: SectionKind,
    line: usize,
    entries: Vec<(String, Value, usize)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SectionKind {
    Scenario,
    Slo,
    Phase,
    Fault,
}

#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Num(String),
}

struct Parser<'a> {
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { text }
    }

    fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ScenarioParseError> {
        Err(ScenarioParseError {
            line,
            message: message.into(),
        })
    }

    fn lex(&self) -> Result<Vec<Section>, ScenarioParseError> {
        let mut sections: Vec<Section> = Vec::new();
        for (i, raw) in self.text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                let kind = match header {
                    "phase" => SectionKind::Phase,
                    "fault" => SectionKind::Fault,
                    other => return Self::err(line_no, format!("unknown section [[{other}]]")),
                };
                sections.push(Section {
                    kind,
                    line: line_no,
                    entries: Vec::new(),
                });
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let kind = match header {
                    "scenario" => SectionKind::Scenario,
                    "slo" => SectionKind::Slo,
                    other => return Self::err(line_no, format!("unknown section [{other}]")),
                };
                if sections.iter().any(|s| s.kind == kind) {
                    return Self::err(line_no, format!("duplicate section [{header}]"));
                }
                sections.push(Section {
                    kind,
                    line: line_no,
                    entries: Vec::new(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Self::err(line_no, format!("expected `key = value`, got `{line}`"));
            };
            let key = key.trim();
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Self::err(line_no, format!("invalid key `{key}`"));
            }
            let value = Self::lex_value(value.trim(), line_no)?;
            let Some(section) = sections.last_mut() else {
                return Self::err(line_no, "key/value before any section header");
            };
            if section.entries.iter().any(|(k, _, _)| k == key) {
                return Self::err(line_no, format!("duplicate key `{key}`"));
            }
            section.entries.push((key.to_string(), value, line_no));
        }
        Ok(sections)
    }

    fn lex_value(raw: &str, line_no: usize) -> Result<Value, ScenarioParseError> {
        if let Some(inner) = raw.strip_prefix('"') {
            let Some(inner) = inner.strip_suffix('"') else {
                return Self::err(line_no, "unterminated string");
            };
            if inner.contains('"') || !inner.chars().all(|c| (' '..='~').contains(&c)) {
                return Self::err(
                    line_no,
                    "strings must be printable ASCII without embedded quotes",
                );
            }
            return Ok(Value::Str(inner.to_string()));
        }
        if raw.is_empty() {
            return Self::err(line_no, "empty value");
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn parse(self) -> Result<Scenario, ScenarioParseError> {
        let sections = self.lex()?;
        let mut scenario: Option<ScenarioHeader> = None;
        let mut slo: Option<Slo> = None;
        let mut phases: Vec<ScenarioPhase> = Vec::new();
        let mut faults: Vec<FaultEvent> = Vec::new();
        for section in &sections {
            match section.kind {
                SectionKind::Scenario => scenario = Some(parse_scenario_header(section)?),
                SectionKind::Slo => slo = Some(parse_slo(section)?),
                SectionKind::Phase => phases.push(parse_phase(section)?),
                SectionKind::Fault => faults.push(parse_fault(section)?),
            }
        }
        let Some(header) = scenario else {
            return Self::err(0, "missing [scenario] section");
        };
        let Some(slo) = slo else {
            return Self::err(0, "missing [slo] section");
        };
        if phases.is_empty() {
            return Self::err(0, "a scenario needs at least one [[phase]]");
        }
        Ok(Scenario {
            name: header.name,
            description: header.description,
            seed: header.seed,
            warmup_s: header.warmup_s,
            slo,
            phases,
            faults,
        })
    }
}

struct ScenarioHeader {
    name: String,
    description: String,
    seed: u64,
    warmup_s: u32,
}

/// Pull the entries of `section` into typed fields, rejecting unknown
/// keys and reporting missing ones.
struct Fields<'s> {
    section: &'s Section,
    taken: Vec<&'s str>,
}

impl<'s> Fields<'s> {
    fn new(section: &'s Section) -> Fields<'s> {
        Fields {
            section,
            taken: Vec::new(),
        }
    }

    fn get(&mut self, key: &'static str) -> Result<(&'s Value, usize), ScenarioParseError> {
        self.taken.push(key);
        match self.section.entries.iter().find(|(k, _, _)| k == key) {
            Some((_, v, line)) => Ok((v, *line)),
            None => Parser::err(self.section.line, format!("missing required key `{key}`")),
        }
    }

    fn string(&mut self, key: &'static str) -> Result<(String, usize), ScenarioParseError> {
        match self.get(key)? {
            (Value::Str(s), line) => Ok((s.clone(), line)),
            (Value::Num(_), line) => Parser::err(line, format!("`{key}` must be a string")),
        }
    }

    fn u64(&mut self, key: &'static str) -> Result<(u64, usize), ScenarioParseError> {
        match self.get(key)? {
            (Value::Num(raw), line) => match raw.parse::<u64>() {
                Ok(v) => Ok((v, line)),
                Err(_) => Parser::err(line, format!("`{key}` must be a nonnegative integer")),
            },
            (Value::Str(_), line) => Parser::err(line, format!("`{key}` must be an integer")),
        }
    }

    fn f64(&mut self, key: &'static str) -> Result<(f64, usize), ScenarioParseError> {
        match self.get(key)? {
            (Value::Num(raw), line) => match raw.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok((v, line)),
                _ => Parser::err(line, format!("`{key}` must be a finite number")),
            },
            (Value::Str(_), line) => Parser::err(line, format!("`{key}` must be a number")),
        }
    }

    fn finish(self) -> Result<(), ScenarioParseError> {
        for (key, _, line) in &self.section.entries {
            if !self.taken.iter().any(|t| t == key) {
                return Parser::err(*line, format!("unknown key `{key}`"));
            }
        }
        Ok(())
    }
}

fn parse_scenario_header(section: &Section) -> Result<ScenarioHeader, ScenarioParseError> {
    let mut fields = Fields::new(section);
    let (name, name_line) = fields.string("name")?;
    let (description, _) = fields.string("description")?;
    let (seed, _) = fields.u64("seed")?;
    let (warmup, warmup_line) = fields.u64("warmup_s")?;
    fields.finish()?;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Parser::err(
            name_line,
            "scenario names are nonempty kebab-case ([a-z0-9-])",
        );
    }
    let Ok(warmup_s) = u32::try_from(warmup) else {
        return Parser::err(warmup_line, "`warmup_s` out of range");
    };
    Ok(ScenarioHeader {
        name,
        description,
        seed,
        warmup_s,
    })
}

fn parse_slo(section: &Section) -> Result<Slo, ScenarioParseError> {
    let mut fields = Fields::new(section);
    let (timeout_s, t_line) = fields.f64("timeout_s")?;
    let (max_error_fraction, e_line) = fields.f64("max_error_fraction")?;
    let (max_p99_s, p_line) = fields.f64("max_p99_s")?;
    fields.finish()?;
    if timeout_s <= 0.0 {
        return Parser::err(t_line, "`timeout_s` must be positive");
    }
    if !(0.0..=1.0).contains(&max_error_fraction) {
        return Parser::err(e_line, "`max_error_fraction` must be within [0, 1]");
    }
    if max_p99_s <= 0.0 {
        return Parser::err(p_line, "`max_p99_s` must be positive");
    }
    Ok(Slo {
        timeout_s,
        max_error_fraction,
        max_p99_s,
    })
}

fn parse_phase(section: &Section) -> Result<ScenarioPhase, ScenarioParseError> {
    let mut fields = Fields::new(section);
    let (mix_name, mix_line) = fields.string("mix")?;
    let (from, from_line) = fields.f64("from")?;
    let (to, to_line) = fields.f64("to")?;
    let (duration_s, d_line) = fields.f64("duration_s")?;
    fields.finish()?;
    let Some(mix) = ScenarioMix::parse(&mix_name) else {
        return Parser::err(
            mix_line,
            format!("unknown mix \"{mix_name}\" (expected browsing, shopping, or ordering)"),
        );
    };
    for (value, line, key) in [(from, from_line, "from"), (to, to_line, "to")] {
        if !(value > 0.0 && value <= 16.0) {
            return Parser::err(line, format!("`{key}` must be within (0, 16]"));
        }
    }
    if duration_s <= 0.0 {
        return Parser::err(d_line, "`duration_s` must be positive");
    }
    Ok(ScenarioPhase {
        mix,
        from,
        to,
        duration_s,
    })
}

fn parse_fault(section: &Section) -> Result<FaultEvent, ScenarioParseError> {
    let mut fields = Fields::new(section);
    let (kind, kind_line) = fields.string("kind")?;
    let (tier_name, tier_line) = fields.string("tier")?;
    let Some(tier) = tier_parse(&tier_name) else {
        return Parser::err(
            tier_line,
            format!("unknown tier \"{tier_name}\" (expected app or db)"),
        );
    };
    let event = match kind.as_str() {
        "agent-down" => {
            let (from_s, _) = fields.u64("from_s")?;
            let (until_s, until_line) = fields.u64("until_s")?;
            if until_s <= from_s {
                return Parser::err(until_line, "`until_s` must exceed `from_s`");
            }
            FaultEvent::AgentDown {
                tier,
                from_s,
                until_s,
            }
        }
        "reconnect" => {
            let (at_s, _) = fields.u64("at_s")?;
            FaultEvent::Reconnect { tier, at_s }
        }
        other => {
            return Parser::err(
                kind_line,
                format!("unknown fault kind \"{other}\" (expected agent-down or reconnect)"),
            )
        }
    };
    fields.finish()?;
    Ok(event)
}

fn steady(mix: ScenarioMix, frac: f64, duration_s: f64) -> ScenarioPhase {
    ScenarioPhase {
        mix,
        from: frac,
        to: frac,
        duration_s,
    }
}

fn ramp(mix: ScenarioMix, from: f64, to: f64, duration_s: f64) -> ScenarioPhase {
    ScenarioPhase {
        mix,
        from,
        to,
        duration_s,
    }
}

/// The built-in scenario library — six seeded schedules well beyond the
/// paper's three steady mixes, in canonical order.
pub fn library() -> Vec<Scenario> {
    let slo = Slo {
        timeout_s: 1.5,
        max_error_fraction: 0.08,
        max_p99_s: 2.5,
    };
    vec![
        Scenario {
            name: "steady-shopping".into(),
            description: "steady shopping mix at the probe level".into(),
            seed: 101,
            warmup_s: 30,
            slo,
            phases: vec![steady(ScenarioMix::Shopping, 1.0, 180.0)],
            faults: Vec::new(),
        },
        Scenario {
            name: "flash-crowd".into(),
            description: "quiet shopping traffic with a 60 s burst to the probe level".into(),
            seed: 102,
            warmup_s: 30,
            slo: Slo {
                max_error_fraction: 0.12,
                ..slo
            },
            phases: vec![
                steady(ScenarioMix::Shopping, 0.45, 60.0),
                steady(ScenarioMix::Shopping, 1.0, 60.0),
                steady(ScenarioMix::Shopping, 0.45, 60.0),
            ],
            faults: Vec::new(),
        },
        Scenario {
            name: "diurnal-ramp".into(),
            description: "browsing load ramping up to the probe level and back down".into(),
            seed: 103,
            warmup_s: 30,
            slo,
            phases: vec![
                ramp(ScenarioMix::Browsing, 0.35, 1.0, 90.0),
                steady(ScenarioMix::Browsing, 1.0, 30.0),
                ramp(ScenarioMix::Browsing, 1.0, 0.35, 90.0),
            ],
            faults: Vec::new(),
        },
        Scenario {
            name: "mix-drift".into(),
            description: "ordering traffic drifting to browsing mid-run at constant load".into(),
            seed: 104,
            warmup_s: 30,
            slo,
            phases: vec![
                steady(ScenarioMix::Ordering, 1.0, 90.0),
                steady(ScenarioMix::Browsing, 1.0, 90.0),
            ],
            faults: Vec::new(),
        },
        Scenario {
            name: "slow-leak".into(),
            description: "ordering load creeping from 75% to 100% of the probe level".into(),
            seed: 105,
            warmup_s: 30,
            slo,
            phases: vec![ramp(ScenarioMix::Ordering, 0.75, 1.0, 240.0)],
            faults: Vec::new(),
        },
        Scenario {
            name: "replica-failure".into(),
            description: "steady shopping peak with a db agent outage and an app reconnect".into(),
            seed: 106,
            warmup_s: 30,
            slo,
            phases: vec![steady(ScenarioMix::Shopping, 1.0, 180.0)],
            faults: vec![
                FaultEvent::AgentDown {
                    tier: TierId::Db,
                    from_s: 90,
                    until_s: 105,
                },
                FaultEvent::Reconnect {
                    tier: TierId::App,
                    at_s: 160,
                },
            ],
        },
    ]
}

/// Look a built-in scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    library().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_well_formed() {
        let lib = library();
        assert!(lib.len() >= 6, "at least six scenarios");
        let mut names: Vec<&str> = lib.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lib.len(), "names are unique");
        for s in &lib {
            assert!(s.duration_s() >= 120.0, "{}: long enough to score", s.name);
            assert_eq!(s.duration_s() % 30.0, 0.0, "{}: whole windows only", s.name);
            assert!(s.warmup_s > 0, "{}: warm-up excluded", s.name);
            // Every scenario must replay through both executors.
            let program = s.program(50);
            assert!(program.duration_s() > 0.0);
            let _ = s.schedules();
        }
    }

    #[test]
    fn library_round_trips_through_toml() {
        for s in library() {
            let toml = s.to_toml();
            let back = Scenario::from_toml(&toml).unwrap_or_else(|e| {
                panic!("{}: {e}\n{toml}", s.name);
            });
            assert_eq!(back, s, "{}", s.name);
            assert_eq!(back.to_toml(), toml, "{}: canonical form", s.name);
        }
    }

    #[test]
    fn program_scales_fractions_by_the_probe() {
        let s = find("flash-crowd").unwrap();
        let program = s.program(100);
        // 0.45 * 100 → 45 EBs in the quiet phases, 100 at the burst.
        let quiet = program.at(10.0);
        let burst = program.at(90.0);
        assert_eq!(quiet.ebs, 45);
        assert_eq!(burst.ebs, 100);
    }

    #[test]
    fn schedules_map_seconds_to_sequences() {
        let s = find("replica-failure").unwrap();
        let [app, db] = s.schedules();
        assert_eq!(db.drop_ranges, vec![(90, 104)], "inclusive upper bound");
        assert!(db.reconnect_before.is_empty());
        assert_eq!(app.reconnect_before, vec![160]);
        assert!(app.drop_ranges.is_empty());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        let base = find("steady-shopping").unwrap().to_toml();
        // Unknown key.
        let bad = format!("{base}\n[[phase]]\nmix = \"shopping\"\nfrom = 1.0\nto = 1.0\nduration_s = 30.0\nbogus = 1\n");
        assert!(Scenario::from_toml(&bad).is_err());
        // Duplicate section.
        let bad = format!("{base}\n[scenario]\n");
        assert!(Scenario::from_toml(&bad).is_err());
        // Missing required key.
        assert!(Scenario::from_toml("[scenario]\nname = \"x\"\n").is_err());
        // Inverted fault range.
        let bad = format!(
            "{base}\n[[fault]]\nkind = \"agent-down\"\ntier = \"db\"\nfrom_s = 10\nuntil_s = 10\n"
        );
        assert!(Scenario::from_toml(&bad).is_err());
        // Non-finite number.
        let bad = base.replace("timeout_s = 1.5", "timeout_s = inf");
        assert!(Scenario::from_toml(&bad).is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Scenario::from_toml("[scenario]\nname = \"x\"\nname = \"y\"\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("duplicate key"), "{err}");
    }
}
