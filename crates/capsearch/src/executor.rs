//! The seam between the search and the system under test.
//!
//! A [`ScenarioExecutor`] turns one probe — a scenario replayed at a
//! candidate population — into a [`ProbeMeasure`]: the SLO verdict plus
//! everything the report needs to explain it (achieved throughput,
//! error fraction, tail latency, and how the coordinated predictor's
//! online decisions scored against the oracle's ground truth).
//!
//! Three implementations replay the **same** simulated sample stream:
//!
//! * [`SimExecutor`] — in-process: the scenario's fault schedule is
//!   mapped to poisoned windows by the pure oracle
//!   (`predicted_windows_for_schedule`) and the meter replays the
//!   survivors directly.
//! * [`LoopbackExecutor`] — the real telemetry plane: agents stream the
//!   samples over a socket with the scenario's faults injected on
//!   schedule, and the collector decides which windows survive.
//! * [`FleetExecutor`] — the sharded plane: `K` collectors digest their
//!   shards and the merge node assembles the global view
//!   (`webcap-fleet`).
//!
//! The equivalence suites hold all of these to identical capacities and
//! identical poisoned-window sets for every library scenario.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use webcap_core::{label_window, CapacityMeter, OnlineDecision};
use webcap_fleet::{run_fleet, FleetTopology};
use webcap_net::{
    all_windows, predicted_windows_for_schedule, replay_windows, run_loopback_scheduled, Endpoint,
    FaultKnobs, WireCodec,
};
use webcap_sim::{SystemSample, TierId};

use crate::scenario::Scenario;

/// An executor failure (simulation, socket, or protocol error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ExecError {}

impl From<std::io::Error> for ExecError {
    fn from(err: std::io::Error) -> ExecError {
        ExecError(format!("loopback plane: {err}"))
    }
}

/// Everything one probe measured, in report-stable form.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ProbeMeasure {
    /// Probed population (EBs).
    pub probe_ebs: u32,
    /// Whether the SLO held over the scored windows.
    pub slo_pass: bool,
    /// Mean completed-request throughput over the scored windows,
    /// requests per second.
    pub achieved_rps: f64,
    /// Completed requests over the scored windows.
    pub completed: u64,
    /// Fraction of completions slower than the SLO deadline.
    pub error_fraction: f64,
    /// 99th-percentile response time over the scored windows, seconds.
    pub p99_s: f64,
    /// Mean response time over the scored windows, seconds.
    pub mean_rt_s: f64,
    /// Windows scored against the SLO (full, post-warm-up, unpoisoned).
    pub windows_scored: u32,
    /// Scored windows the online meter also decided.
    pub windows_decided: u32,
    /// Scored windows the oracle labeled overloaded.
    pub oracle_overloaded: u32,
    /// Decided windows the coordinated predictor called overloaded.
    pub predicted_overloaded: u32,
    /// Fraction of decided windows where predictor and oracle agree.
    pub agreement: f64,
    /// Majority ground-truth bottleneck over overloaded scored windows.
    pub oracle_bottleneck: Option<TierId>,
    /// Majority predicted bottleneck over overloaded decisions.
    pub predicted_bottleneck: Option<TierId>,
    /// Windows quarantined by telemetry faults, in order.
    pub poisoned_windows: Vec<i64>,
}

/// One way of replaying a scenario probe against the meter.
pub trait ScenarioExecutor {
    /// Stable label naming the execution plane (`"sim"`, `"loopback"`).
    fn label(&self) -> &'static str;

    /// Replay `scenario` at `probe_ebs` emulated browsers and measure.
    ///
    /// # Errors
    ///
    /// Implementation-specific failures (socket errors, poisoned
    /// plane); the search aborts on the first one.
    fn measure(&mut self, scenario: &Scenario, probe_ebs: u32) -> Result<ProbeMeasure, ExecError>;
}

fn majority(tally: [u64; 2]) -> Option<TierId> {
    if tally == [0, 0] {
        None
    } else if tally[1] > tally[0] {
        Some(TierId::Db)
    } else {
        Some(TierId::App)
    }
}

/// Score one probe's sample stream against the scenario's SLO and the
/// online decisions made for it. Pure: same inputs, same measure.
///
/// Scored windows are the full windows at or past the warm-up horizon
/// that no telemetry fault poisoned; the SLO verdict aggregates their
/// response-time histograms, and predictor agreement is computed over
/// the scored windows the meter actually decided.
pub fn score_probe(
    meter: &CapacityMeter,
    scenario: &Scenario,
    samples: &[SystemSample],
    decisions: &[(i64, OnlineDecision)],
    poisoned: &BTreeSet<i64>,
    probe_ebs: u32,
) -> ProbeMeasure {
    let window_len = meter.config().window_len;
    let full = samples.len() / window_len;
    let warmup_windows = (scenario.warmup_s as usize).div_ceil(window_len);
    let decided: BTreeMap<i64, &OnlineDecision> = decisions.iter().map(|(w, d)| (*w, d)).collect();

    let mut hist = webcap_sim::RtHistogram::new();
    let mut completed = 0u64;
    let mut rt_sum = 0.0f64;
    let mut duration_s = 0.0f64;
    let mut windows_scored = 0u32;
    let mut windows_decided = 0u32;
    let mut oracle_overloaded = 0u32;
    let mut predicted_overloaded = 0u32;
    let mut agree = 0u32;
    let mut oracle_tally = [0u64; 2];
    let mut predicted_tally = [0u64; 2];

    for w in warmup_windows..full {
        if poisoned.contains(&(w as i64)) {
            continue;
        }
        let chunk = &samples[w * window_len..(w + 1) * window_len];
        windows_scored += 1;
        for s in chunk {
            hist.merge(&s.response_times);
            completed += s.completed;
            rt_sum += s.response_time_sum_s;
            duration_s += s.interval_s;
        }
        let label = label_window(chunk, &meter.config().oracle);
        if label.overloaded {
            oracle_overloaded += 1;
            oracle_tally[label.bottleneck.index()] += 1;
        }
        if let Some(decision) = decided.get(&(w as i64)) {
            windows_decided += 1;
            let predicted = decision.prediction.overloaded;
            if predicted {
                predicted_overloaded += 1;
                if let Some(tier) = decision.prediction.bottleneck {
                    predicted_tally[tier.index()] += 1;
                }
            }
            if predicted == label.overloaded {
                agree += 1;
            }
        }
    }

    let error_fraction = hist.fraction_above(scenario.slo.timeout_s);
    let p99_s = hist.p99().unwrap_or(0.0);
    let mean_rt_s = if completed > 0 {
        rt_sum / completed as f64
    } else {
        0.0
    };
    let achieved_rps = if duration_s > 0.0 {
        completed as f64 / duration_s
    } else {
        0.0
    };
    let slo_pass = windows_scored > 0
        && completed > 0
        && error_fraction <= scenario.slo.max_error_fraction
        && p99_s <= scenario.slo.max_p99_s;
    ProbeMeasure {
        probe_ebs,
        slo_pass,
        achieved_rps,
        completed,
        error_fraction,
        p99_s,
        mean_rt_s,
        windows_scored,
        windows_decided,
        oracle_overloaded,
        predicted_overloaded,
        agreement: f64::from(agree) / f64::from(windows_decided.max(1)),
        oracle_bottleneck: majority(oracle_tally),
        predicted_bottleneck: majority(predicted_tally),
        poisoned_windows: poisoned.iter().copied().collect(),
    }
}

/// Simulate the probe's sample stream with the scenario's seed and the
/// meter's testbed configuration.
fn simulate(meter: &CapacityMeter, scenario: &Scenario, probe_ebs: u32) -> Vec<SystemSample> {
    let mut cfg = meter.config().sim.clone();
    cfg.seed = scenario.seed;
    webcap_sim::run(cfg, scenario.program(probe_ebs)).samples
}

/// In-process executor: simulation plus pure-oracle fault poisoning
/// plus direct window replay.
pub struct SimExecutor<'a> {
    meter: &'a CapacityMeter,
}

impl<'a> SimExecutor<'a> {
    /// Probe through `meter`'s pipeline in-process.
    pub fn new(meter: &'a CapacityMeter) -> SimExecutor<'a> {
        SimExecutor { meter }
    }
}

impl ScenarioExecutor for SimExecutor<'_> {
    fn label(&self) -> &'static str {
        "sim"
    }

    fn measure(&mut self, scenario: &Scenario, probe_ebs: u32) -> Result<ProbeMeasure, ExecError> {
        let samples = simulate(self.meter, scenario, probe_ebs);
        let window_len = self.meter.config().window_len;
        let total = samples.len() as u64;
        // A window is poisoned if either tier's schedule poisons it —
        // the collector quarantines per system-window, not per tier.
        let mut poisoned: BTreeSet<i64> = BTreeSet::new();
        for schedule in &scenario.schedules() {
            let (_, p) = predicted_windows_for_schedule(total, schedule, window_len, 1);
            poisoned.extend(p);
        }
        let survivors: BTreeSet<i64> = all_windows(samples.len(), window_len)
            .into_iter()
            .filter(|w| !poisoned.contains(w))
            .collect();
        let decisions = replay_windows(self.meter, &samples, scenario.seed, &survivors);
        Ok(score_probe(
            self.meter, scenario, &samples, &decisions, &poisoned, probe_ebs,
        ))
    }
}

/// Telemetry-plane executor: the same simulated stream, but agents
/// deliver it over a socket with the scenario's faults injected, and
/// the collector's decisions are scored.
pub struct LoopbackExecutor<'a> {
    meter: &'a CapacityMeter,
    endpoint: Endpoint,
}

impl<'a> LoopbackExecutor<'a> {
    /// Probe through the agent/collector plane bound to `endpoint`.
    /// Fault *knobs* are pinned to `NONE` — scenario faults are the
    /// only injected faults, regardless of ambient `WEBCAP_NET_*`
    /// environment settings.
    pub fn new(meter: &'a CapacityMeter, endpoint: Endpoint) -> LoopbackExecutor<'a> {
        LoopbackExecutor { meter, endpoint }
    }
}

/// Sharded-plane executor: the same simulated stream digested by `K`
/// collectors and merged at the front end. The fleet equivalence suite
/// holds this plane to byte-identical reports against [`SimExecutor`]
/// at every collector count.
pub struct FleetExecutor<'a> {
    meter: &'a CapacityMeter,
    collectors: u32,
}

impl<'a> FleetExecutor<'a> {
    /// Probe through a fleet of `collectors` shards (clamped to at
    /// least one by the shard map).
    pub fn new(meter: &'a CapacityMeter, collectors: u32) -> FleetExecutor<'a> {
        FleetExecutor { meter, collectors }
    }
}

impl ScenarioExecutor for FleetExecutor<'_> {
    fn label(&self) -> &'static str {
        "fleet"
    }

    fn measure(&mut self, scenario: &Scenario, probe_ebs: u32) -> Result<ProbeMeasure, ExecError> {
        let samples = simulate(self.meter, scenario, probe_ebs);
        let topology = FleetTopology::two_tier(&scenario.name, scenario.seed, self.collectors);
        // The back-haul dialect follows `WEBCAP_WIRE` (like the loopback
        // plane's agents) so the CI codec matrix exercises both; the
        // merged outcome is codec-invariant either way.
        let codec = WireCodec::try_from_env().map_err(ExecError)?;
        let outcome = run_fleet(
            self.meter,
            &samples,
            scenario.seed,
            &scenario.schedules(),
            &topology,
            None,
            codec,
        )
        .map_err(|e| ExecError(format!("fleet plane: {e}")))?;
        let poisoned: BTreeSet<i64> = outcome.merge.poisoned_windows.iter().copied().collect();
        Ok(score_probe(
            self.meter,
            scenario,
            &samples,
            &outcome.merge.decisions,
            &poisoned,
            probe_ebs,
        ))
    }
}

impl ScenarioExecutor for LoopbackExecutor<'_> {
    fn label(&self) -> &'static str {
        "loopback"
    }

    fn measure(&mut self, scenario: &Scenario, probe_ebs: u32) -> Result<ProbeMeasure, ExecError> {
        let samples = simulate(self.meter, scenario, probe_ebs);
        let outcome = run_loopback_scheduled(
            self.meter,
            &samples,
            &self.endpoint,
            scenario.seed,
            FaultKnobs::NONE,
            &scenario.schedules(),
        )?;
        let poisoned: BTreeSet<i64> = outcome.collector.poisoned_windows.iter().copied().collect();
        Ok(score_probe(
            self.meter,
            scenario,
            &samples,
            &outcome.collector.decisions,
            &poisoned,
            probe_ebs,
        ))
    }
}
