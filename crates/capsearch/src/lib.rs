//! SLO-boundary capacity search: the paper's deliverable as a number.
//!
//! Everything upstream of this crate can simulate a multi-tier site,
//! meter it from hardware counters, predict overload online, and keep
//! doing so through telemetry faults — but none of it *searches* for
//! the quantity the paper is actually about: the maximum request rate
//! the site sustains before its service-level objective is violated.
//! This crate closes that loop:
//!
//! * [`scenario`] — a library of seeded, pure-data [`Scenario`]s (load
//!   curve as fractions of a probe level, mix timeline, scheduled
//!   telemetry faults, an SLO) that the simulator and the `webcap-net`
//!   loopback plane replay identically.
//! * [`search`] — a deterministic bisection ([`bisect`]) that brackets
//!   the SLO boundary, expanding the bracket when the initial guesses
//!   miss, and [`search_scenario`] driving it through an executor.
//! * [`executor`] — the [`ScenarioExecutor`] seam with three
//!   implementations: [`SimExecutor`] (in-process simulation + window
//!   replay), [`LoopbackExecutor`] (the real agent/collector plane
//!   over a socket, with the scenario's faults injected on schedule),
//!   and [`FleetExecutor`] (the `webcap-fleet` sharded plane: `K`
//!   collectors digesting their shards, merged at the front end).
//! * [`report`] — the versioned, byte-stable [`CapacityReport`]: FNV-1a
//!   config hash, per-probe trace, converged capacity ± tolerance, and
//!   bottleneck-tier attribution from the coordinated predictor.
//!
//! The load-bearing contract is **byte-determinism**: the same scenario
//! and seed produce a byte-identical report at any thread count and on
//! either executor's decision stream (the loopback plane's decisions
//! are byte-identical to the in-process replay on surviving windows —
//! the PR 3 invariant this crate inherits). `webcap-lint`'s
//! no-nondeterminism scope covers this crate: no wall clocks, no
//! ambient entropy, no unordered hash iteration.

pub mod executor;
pub mod report;
pub mod scenario;
pub mod search;

pub use executor::{
    score_probe, ExecError, FleetExecutor, LoopbackExecutor, ProbeMeasure, ScenarioExecutor,
    SimExecutor,
};
pub use report::CapacityReport;
pub use scenario::{
    library, FaultEvent, Scenario, ScenarioMix, ScenarioParseError, ScenarioPhase, Slo,
};
pub use search::{bisect, search_scenario, BisectOutcome, SearchConfig};
