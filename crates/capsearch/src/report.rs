//! The versioned, byte-stable capacity report.
//!
//! A [`CapacityReport`] is the artifact a capacity search leaves
//! behind: the converged capacity (in EBs and in achieved requests per
//! second), the bracketing failure, the bottleneck-tier attribution,
//! and the complete per-probe trace. Rendering is deliberately
//! environment-free — no timestamps, no git revision, no hostnames —
//! so the golden suite can demand byte identity across machines and
//! thread counts. The `config_hash` fingerprints the scenario's
//! canonical TOML plus the search parameters (not the executor), so a
//! sim report and a loopback report for the same search share it.

use webcap_core::fnv1a;
use webcap_sim::TierId;

use crate::executor::ProbeMeasure;
use crate::scenario::{Scenario, Slo};
use crate::search::{BisectOutcome, SearchConfig};

/// Bump when any rendered field changes meaning or layout.
pub const SCHEMA_VERSION: u32 = 1;

/// The rendered outcome of one scenario capacity search.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CapacityReport {
    /// Report layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed (drives the simulation and metric synthesis).
    pub seed: u64,
    /// Execution plane (`"sim"` or `"loopback"`).
    pub executor: String,
    /// FNV-1a fingerprint of the scenario TOML and search parameters.
    pub config_hash: String,
    /// The SLO the capacity is relative to.
    pub slo: Slo,
    /// The search parameters that produced this report.
    pub search: SearchConfig,
    /// Largest probed population that met the SLO.
    pub capacity_ebs: u32,
    /// Achieved throughput at the capacity probe, requests per second.
    pub capacity_rps: f64,
    /// Smallest probed population that violated the SLO, if any.
    pub bracket_failing_ebs: Option<u32>,
    /// Whether the bracket closed to within the tolerance.
    pub converged: bool,
    /// Bottleneck attribution at the first failing probe: the
    /// coordinated predictor's majority call, falling back to the
    /// oracle's ground truth when the predictor never named a tier.
    pub bottleneck: Option<TierId>,
    /// Every distinct probe in evaluation order.
    pub probes: Vec<ProbeMeasure>,
}

impl CapacityReport {
    /// Assemble the report for one finished search.
    pub(crate) fn assemble(
        scenario: &Scenario,
        executor: &'static str,
        cfg: &SearchConfig,
        outcome: &BisectOutcome,
        capacity_rps: f64,
        bottleneck: Option<TierId>,
        probes: Vec<ProbeMeasure>,
    ) -> CapacityReport {
        CapacityReport {
            schema_version: SCHEMA_VERSION,
            scenario: scenario.name.clone(),
            seed: scenario.seed,
            executor: executor.to_string(),
            config_hash: config_hash(scenario, cfg),
            slo: scenario.slo,
            search: *cfg,
            capacity_ebs: outcome.capacity,
            capacity_rps,
            bracket_failing_ebs: outcome.first_failing,
            converged: outcome.converged,
            bottleneck,
            probes,
        }
    }

    /// Render as pretty JSON with a trailing newline — the byte-exact
    /// golden format.
    ///
    /// # Panics
    ///
    /// Never in practice: every float in the report is guarded finite
    /// at construction, and the structure contains no map keys that
    /// could fail serialization.
    pub fn render(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("report serializes");
        text.push('\n');
        text
    }
}

/// Fingerprint the capacity question being asked: the scenario (its
/// canonical TOML) and the search parameters, executor excluded.
pub fn config_hash(scenario: &Scenario, cfg: &SearchConfig) -> String {
    let material = format!(
        "{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}",
        scenario.to_toml(),
        cfg.initial_lo,
        cfg.initial_hi,
        cfg.tolerance,
        cfg.max_probes,
        cfg.max_ebs,
    );
    format!("{:016x}", fnv1a(material.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::library;

    #[test]
    fn config_hash_separates_scenarios_and_search_configs() {
        let lib = library();
        let quick = SearchConfig::quick();
        let mut hashes: Vec<String> = lib.iter().map(|s| config_hash(s, &quick)).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), lib.len(), "distinct scenarios hash apart");
        let full = SearchConfig::default();
        assert_ne!(
            config_hash(&lib[0], &quick),
            config_hash(&lib[0], &full),
            "search parameters are part of the question"
        );
    }

    #[test]
    fn render_is_stable_and_newline_terminated() {
        let scenario = &library()[0];
        let cfg = SearchConfig::quick();
        let outcome = BisectOutcome {
            capacity: 48,
            first_failing: Some(60),
            probes: vec![(48, true), (60, false)],
            converged: true,
        };
        let report = CapacityReport::assemble(
            scenario,
            "sim",
            &cfg,
            &outcome,
            123.25,
            Some(TierId::Db),
            Vec::new(),
        );
        let a = report.render();
        let b = report.render();
        assert_eq!(a, b);
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"capacity_ebs\": 48"));
        assert!(a.contains("\"executor\": \"sim\""));
    }
}
