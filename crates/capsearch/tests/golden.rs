//! Golden regression suite: one byte-exact capacity report per library
//! scenario.
//!
//! Each test runs the full capacity search (meter training, bisection,
//! probe scoring) with [`SearchConfig::quick`] through the in-process
//! [`SimExecutor`] and compares the rendered report byte-for-byte
//! against `tests/golden/<scenario>.json`.
//!
//! Lifecycle:
//!
//! * **Missing golden** — the test writes it and passes loudly; commit
//!   the generated file. This bootstraps the suite on a machine that
//!   can actually run it.
//! * **Mismatch** — the test fails and leaves the actual bytes under
//!   `target/tmp/capsearch/` for inspection; regenerate deliberately
//!   with `WEBCAP_BLESS=1 cargo test -p webcap-capsearch --test golden`
//!   (or `webcap capsearch --bless`).
//!
//! The CI determinism matrix runs this suite under `WEBCAP_JOBS` 1, 2,
//! and 8 — byte identity across thread counts is part of the contract,
//! and `thread_count_does_not_change_report_bytes` checks a pinned pool
//! width in-process as well.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use webcap_capsearch::{search_scenario, CapacityReport, SearchConfig, SimExecutor};
use webcap_core::{CapacityMeter, MeterConfig};
use webcap_parallel::Parallelism;

const METER_SEED: u64 = 31;

fn meter() -> &'static CapacityMeter {
    static METER: OnceLock<CapacityMeter> = OnceLock::new();
    METER.get_or_init(|| {
        CapacityMeter::train(&MeterConfig::small_for_tests(METER_SEED)).expect("meter trains")
    })
}

fn search(meter: &CapacityMeter, name: &str) -> CapacityReport {
    let scenario = webcap_capsearch::scenario::find(name).expect("library scenario");
    let mut executor = SimExecutor::new(meter);
    search_scenario(&scenario, &mut executor, &SearchConfig::quick()).expect("sim search")
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn spill_path(name: &str) -> PathBuf {
    let target = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/capsearch");
    target.join(format!("{name}.json"))
}

fn check_golden(name: &str) {
    let actual = search(meter(), name).render();
    let path = golden_path(name);
    let bless = std::env::var_os("WEBCAP_BLESS").is_some_and(|v| v == "1");
    match fs::read_to_string(&path) {
        Ok(expected) if expected == actual && !bless => {}
        Ok(_) if bless => {
            fs::write(&path, &actual).expect("write golden");
            eprintln!("blessed golden report {}", path.display());
        }
        Ok(expected) => {
            let spill = spill_path(name);
            fs::create_dir_all(spill.parent().expect("spill dir has a parent")).ok();
            fs::write(&spill, &actual).expect("write actual report");
            let divergence = expected
                .lines()
                .zip(actual.lines())
                .position(|(e, a)| e != a)
                .map_or_else(
                    || "lengths differ".to_string(),
                    |i| format!("first divergence at line {}", i + 1),
                );
            panic!(
                "capacity report for `{name}` diverged from {} ({divergence}); \
                 actual bytes left at {}; regenerate deliberately with WEBCAP_BLESS=1",
                path.display(),
                spill.display(),
            );
        }
        Err(_) => {
            fs::create_dir_all(path.parent().expect("golden dir has a parent"))
                .expect("create golden dir");
            fs::write(&path, &actual).expect("write golden");
            eprintln!(
                "bootstrapped missing golden report {} — commit it",
                path.display()
            );
        }
    }
}

#[test]
fn golden_steady_shopping() {
    check_golden("steady-shopping");
}

#[test]
fn golden_flash_crowd() {
    check_golden("flash-crowd");
}

#[test]
fn golden_diurnal_ramp() {
    check_golden("diurnal-ramp");
}

#[test]
fn golden_mix_drift() {
    check_golden("mix-drift");
}

#[test]
fn golden_slow_leak() {
    check_golden("slow-leak");
}

#[test]
fn golden_replica_failure() {
    check_golden("replica-failure");
}

#[test]
fn thread_count_does_not_change_report_bytes() {
    let reference = search(meter(), "steady-shopping").render();
    for par in [Parallelism::Sequential, Parallelism::Threads(2)] {
        let pinned =
            CapacityMeter::train(&MeterConfig::small_for_tests(METER_SEED).with_parallelism(par))
                .expect("meter trains");
        let report = search(&pinned, "steady-shopping").render();
        assert_eq!(report, reference, "report bytes must not depend on {par:?}");
    }
}

#[test]
fn report_metadata_is_coherent() {
    let report = search(meter(), "flash-crowd");
    assert_eq!(report.schema_version, 1);
    assert_eq!(report.executor, "sim");
    assert_eq!(report.scenario, "flash-crowd");
    assert_eq!(report.config_hash.len(), 16);
    assert!(!report.probes.is_empty());
    // The capacity claim is backed by a recorded probe.
    if report.capacity_ebs > 0 {
        assert!(report
            .probes
            .iter()
            .any(|p| p.probe_ebs == report.capacity_ebs && p.slo_pass));
    }
    if let Some(failing) = report.bracket_failing_ebs {
        assert!(report
            .probes
            .iter()
            .any(|p| p.probe_ebs == failing && !p.slo_pass));
        assert!(failing > report.capacity_ebs);
    }
}
