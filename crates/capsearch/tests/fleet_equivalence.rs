//! Fleet-vs-single-collector equivalence, per library scenario.
//!
//! The same capacity search runs through [`SimExecutor`] (the
//! single-collector oracle) and through [`FleetExecutor`] at K = 1, 2,
//! and 4 collectors. Every plane must agree on everything except the
//! executor label: the converged capacity, every probe measure in order
//! — including each probe's poisoned-window set — and the bottleneck
//! attribution. A final leg crashes and resumes one collector at a
//! window boundary mid-probe and demands the identical report anyway.
//!
//! This is the PR 7 headline invariant: sharding the telemetry plane
//! changes no byte of the capacity answer.

use std::fs;
use std::path::Path;
use std::sync::OnceLock;

use webcap_capsearch::{search_scenario, CapacityReport, FleetExecutor, SearchConfig, SimExecutor};
use webcap_core::{CapacityMeter, MeterConfig};
use webcap_fleet::{run_fleet, AgentId, FleetChaos, FleetTopology, ShardMap};
use webcap_net::{FaultSchedule, WireCodec};
use webcap_sim::TierId;

fn meter() -> &'static CapacityMeter {
    static METER: OnceLock<CapacityMeter> = OnceLock::new();
    METER.get_or_init(|| {
        CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("meter trains")
    })
}

/// Coarse on purpose: each probe replays the full scenario stream
/// through every collector count, so keep the probe count small while
/// still exercising expansion and at least one halving step.
fn coarse() -> SearchConfig {
    SearchConfig {
        initial_lo: 16,
        initial_hi: 96,
        tolerance: 24,
        max_probes: 6,
        max_ebs: 256,
    }
}

fn check_fleet_equivalence(name: &str) {
    let scenario = webcap_capsearch::scenario::find(name).expect("library scenario");
    let cfg = coarse();
    let meter = meter();

    let mut sim = SimExecutor::new(meter);
    let sim_report = search_scenario(&scenario, &mut sim, &cfg).expect("sim search");

    for k in [1u32, 2, 4] {
        let mut fleet = FleetExecutor::new(meter, k);
        let fleet_report = search_scenario(&scenario, &mut fleet, &cfg).expect("fleet search");
        assert_agreement(name, k, &sim_report, &fleet_report);
    }
}

fn assert_agreement(name: &str, k: u32, sim: &CapacityReport, fleet: &CapacityReport) {
    assert_eq!(sim.executor, "sim");
    assert_eq!(fleet.executor, "fleet");
    assert_eq!(
        sim.capacity_ebs, fleet.capacity_ebs,
        "{name} K={k}: planes disagree on capacity"
    );
    assert_eq!(
        sim.bracket_failing_ebs, fleet.bracket_failing_ebs,
        "{name} K={k}: planes disagree on the bracketing failure"
    );
    assert_eq!(sim.converged, fleet.converged, "{name} K={k}: convergence");
    assert_eq!(sim.bottleneck, fleet.bottleneck, "{name} K={k}: bottleneck");
    assert_eq!(
        sim.config_hash, fleet.config_hash,
        "{name} K={k}: same question"
    );
    // Probe-by-probe: identical sequences, verdicts, measures, and
    // poisoned-window sets. On divergence, spill both transcripts to
    // target/tmp/fleet so CI can attach them as artifacts.
    let render =
        |r: &CapacityReport| serde_json::to_string_pretty(&r.probes).expect("probes serialize");
    let (sim_probes, fleet_probes) = (render(sim), render(fleet));
    if sim_probes != fleet_probes {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/fleet");
        fs::create_dir_all(&dir).ok();
        fs::write(dir.join(format!("{name}-k{k}-sim.json")), &sim_probes).ok();
        fs::write(dir.join(format!("{name}-k{k}-fleet.json")), &fleet_probes).ok();
        panic!(
            "{name} K={k}: probe traces diverge; transcripts left in {}",
            dir.display()
        );
    }
}

#[test]
fn fleet_equivalence_steady_shopping() {
    check_fleet_equivalence("steady-shopping");
}

#[test]
fn fleet_equivalence_flash_crowd() {
    check_fleet_equivalence("flash-crowd");
}

#[test]
fn fleet_equivalence_diurnal_ramp() {
    check_fleet_equivalence("diurnal-ramp");
}

#[test]
fn fleet_equivalence_mix_drift() {
    check_fleet_equivalence("mix-drift");
}

#[test]
fn fleet_equivalence_slow_leak() {
    check_fleet_equivalence("slow-leak");
}

#[test]
fn fleet_equivalence_replica_failure() {
    check_fleet_equivalence("replica-failure");
}

/// The chaos leg: a collector killed and resumed at a window boundary
/// mid-stream changes no byte of the merged outcome. Run at the
/// scenario's converged capacity so the stream is the one the search
/// would actually score.
#[test]
fn fleet_chaos_resume_is_byte_identical_at_capacity() {
    let meter = meter();
    let scenario = webcap_capsearch::scenario::find("steady-shopping").expect("library scenario");
    let window_len = meter.config().window_len as u64;

    // The probe stream at a representative population.
    let probe_ebs = 64;
    let mut cfg = meter.config().sim.clone();
    cfg.seed = scenario.seed;
    let samples = webcap_sim::run(cfg, scenario.program(probe_ebs)).samples;
    let schedules: [FaultSchedule; 2] = scenario.schedules();

    let topology = FleetTopology::two_tier(&scenario.name, scenario.seed, 2);
    // Baseline over the JSON back-haul, chaos leg over the binary one:
    // the final equality then also proves the dialect changes nothing.
    let baseline = run_fleet(
        meter,
        &samples,
        scenario.seed,
        &schedules,
        &topology,
        None,
        WireCodec::Json,
    )
    .expect("baseline fleet runs");

    // Crash the collector owning the database tier at the end of the
    // third full window.
    let victim =
        ShardMap::new(topology.seed, topology.collectors).owner(AgentId::primary(TierId::Db));
    let chaos = FleetChaos {
        collector: victim,
        crash_at_seq: 3 * window_len,
    };
    let chaotic = run_fleet(
        meter,
        &samples,
        scenario.seed,
        &schedules,
        &topology,
        Some(chaos),
        WireCodec::Binary,
    )
    .expect("chaos fleet runs");

    assert!(
        chaotic.collectors[victim as usize].resumed,
        "crash happened"
    );
    let render = |d: &webcap_fleet::MergeOutcome| {
        serde_json::to_string(&(&d.decisions, &d.poisoned_windows, &d.incomplete_windows))
            .expect("outcome serializes")
    };
    assert_eq!(
        render(&baseline.merge),
        render(&chaotic.merge),
        "boundary crash-and-resume must not change the merged outcome"
    );
}
