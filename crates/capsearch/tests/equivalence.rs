//! Sim-vs-loopback equivalence, per library scenario.
//!
//! The same capacity search runs twice: once through [`SimExecutor`]
//! (pure in-process poisoning oracle + window replay) and once through
//! [`LoopbackExecutor`] (real agents and collector over a TCP socket,
//! scenario faults injected on schedule). The planes must agree on
//! everything except the executor label: the converged capacity, every
//! probe measure in order — including each probe's poisoned-window
//! set — and the bottleneck attribution.
//!
//! This is the end-to-end extension of the PR 3 invariant (collector
//! decisions byte-identical to in-process replay on surviving windows)
//! up through the capacity number itself.

use std::sync::OnceLock;

use webcap_capsearch::{
    search_scenario, CapacityReport, LoopbackExecutor, SearchConfig, SimExecutor,
};
use webcap_core::{CapacityMeter, MeterConfig};
use webcap_net::Endpoint;

fn meter() -> &'static CapacityMeter {
    static METER: OnceLock<CapacityMeter> = OnceLock::new();
    METER.get_or_init(|| {
        CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("meter trains")
    })
}

/// Coarse on purpose: each loopback probe spins a real collector and
/// two agent threads, so keep the probe count small while still
/// exercising expansion and at least one halving step.
fn coarse() -> SearchConfig {
    SearchConfig {
        initial_lo: 16,
        initial_hi: 96,
        tolerance: 24,
        max_probes: 6,
        max_ebs: 256,
    }
}

fn check_equivalence(name: &str) {
    let scenario = webcap_capsearch::scenario::find(name).expect("library scenario");
    let cfg = coarse();
    let meter = meter();

    let mut sim = SimExecutor::new(meter);
    let sim_report = search_scenario(&scenario, &mut sim, &cfg).expect("sim search");

    let endpoint = Endpoint::parse("tcp:127.0.0.1:0").expect("endpoint");
    let mut loopback = LoopbackExecutor::new(meter, endpoint);
    let loop_report = search_scenario(&scenario, &mut loopback, &cfg).expect("loopback search");

    assert_agreement(name, &sim_report, &loop_report);
}

fn assert_agreement(name: &str, sim: &CapacityReport, loopback: &CapacityReport) {
    assert_eq!(sim.executor, "sim");
    assert_eq!(loopback.executor, "loopback");
    assert_eq!(
        sim.capacity_ebs, loopback.capacity_ebs,
        "{name}: planes disagree on capacity"
    );
    assert_eq!(
        sim.bracket_failing_ebs, loopback.bracket_failing_ebs,
        "{name}: planes disagree on the bracketing failure"
    );
    assert_eq!(sim.converged, loopback.converged, "{name}: convergence");
    assert_eq!(sim.bottleneck, loopback.bottleneck, "{name}: bottleneck");
    assert_eq!(
        sim.config_hash, loopback.config_hash,
        "{name}: same question"
    );
    // Probe-by-probe: identical sequences, verdicts, measures, and
    // poisoned-window sets. Serialize for a readable failure.
    let render =
        |r: &CapacityReport| serde_json::to_string_pretty(&r.probes).expect("probes serialize");
    assert_eq!(
        render(sim),
        render(loopback),
        "{name}: probe traces diverge"
    );
}

#[test]
fn equivalence_steady_shopping() {
    check_equivalence("steady-shopping");
}

#[test]
fn equivalence_flash_crowd() {
    check_equivalence("flash-crowd");
}

#[test]
fn equivalence_diurnal_ramp() {
    check_equivalence("diurnal-ramp");
}

#[test]
fn equivalence_mix_drift() {
    check_equivalence("mix-drift");
}

#[test]
fn equivalence_slow_leak() {
    check_equivalence("slow-leak");
}

#[test]
fn equivalence_replica_failure() {
    check_equivalence("replica-failure");
}
