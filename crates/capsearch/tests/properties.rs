//! Property suite for the capacity search.
//!
//! * Bisection against an exact threshold probe converges to within the
//!   tolerance, inside the probe budget, never probing one population
//!   twice.
//! * At tolerance 1, bisection is exact — and therefore monotone: a
//!   higher threshold never yields a smaller capacity.
//! * The scenario TOML codec is lossless: TOML → `Scenario` → TOML is
//!   byte-identical, and `Scenario` → TOML → `Scenario` is `==`.
//! * Through the real simulator, tightening the SLO never raises the
//!   measured capacity by more than the bracket tolerance.

use std::convert::Infallible;
use std::sync::OnceLock;

use proptest::prelude::*;
use webcap_capsearch::{
    bisect, search_scenario, FaultEvent, Scenario, ScenarioMix, ScenarioPhase, SearchConfig,
    SimExecutor, Slo,
};
use webcap_core::{CapacityMeter, MeterConfig};
use webcap_sim::TierId;

fn run_threshold(cfg: &SearchConfig, t: u32) -> webcap_capsearch::BisectOutcome {
    match bisect(cfg, |ebs| Ok::<bool, Infallible>(ebs <= t)) {
        Ok(outcome) => outcome,
    }
}

fn arb_config() -> impl Strategy<Value = SearchConfig> {
    (1u32..64, 1u32..512, 1u32..32, 64u32..4096).prop_map(|(lo, hi, tolerance, max_ebs)| {
        SearchConfig {
            initial_lo: lo,
            initial_hi: hi,
            tolerance,
            max_probes: 64,
            max_ebs,
        }
    })
}

proptest! {
    #[test]
    fn bisection_converges_within_tolerance_and_budget(
        cfg in arb_config(),
        threshold in 0u32..6000,
    ) {
        let out = run_threshold(&cfg, threshold);
        let max_ebs = cfg.max_ebs.max(1);
        prop_assert!(out.probes.len() as u32 <= cfg.max_probes.max(2));
        // No population is ever probed twice.
        let mut seen: Vec<u32> = out.probes.iter().map(|&(e, _)| e).collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        prop_assert_eq!(seen.len(), before);
        // The claim is always backed by a passing probe (or nothing passed).
        prop_assert!(out.capacity <= threshold.min(max_ebs));
        if out.converged {
            // Converged means the boundary is bracketed within tolerance.
            prop_assert!(out.capacity + cfg.tolerance >= threshold.min(max_ebs));
        } else {
            // With a 64-probe budget the only non-convergence is the
            // boundary sitting above the probe ceiling.
            prop_assert_eq!(out.capacity, max_ebs);
            prop_assert!(threshold >= max_ebs);
        }
    }

    #[test]
    fn tolerance_one_bisection_is_exact_and_monotone(
        (t1, t2) in (1u32..2000, 1u32..2000),
        lo in 1u32..64,
        hi in 1u32..512,
    ) {
        let cfg = SearchConfig {
            initial_lo: lo,
            initial_hi: hi,
            tolerance: 1,
            max_probes: 64,
            max_ebs: 2048,
        };
        let (t_lo, t_hi) = (t1.min(t2), t1.max(t2));
        let out_lo = run_threshold(&cfg, t_lo);
        let out_hi = run_threshold(&cfg, t_hi);
        prop_assert_eq!(out_lo.capacity, t_lo, "tolerance 1 is exact");
        prop_assert_eq!(out_hi.capacity, t_hi);
        prop_assert!(out_lo.capacity <= out_hi.capacity);
    }
}

fn arb_slo() -> impl Strategy<Value = Slo> {
    (0.1f64..10.0, 0.0f64..=1.0, 0.1f64..10.0).prop_map(|(timeout_s, err, p99)| Slo {
        timeout_s,
        max_error_fraction: err,
        max_p99_s: p99,
    })
}

fn arb_mix() -> impl Strategy<Value = ScenarioMix> {
    prop_oneof![
        Just(ScenarioMix::Browsing),
        Just(ScenarioMix::Shopping),
        Just(ScenarioMix::Ordering),
    ]
}

fn arb_phase() -> impl Strategy<Value = ScenarioPhase> {
    (arb_mix(), 0.01f64..16.0, 0.01f64..16.0, 1.0f64..300.0).prop_map(
        |(mix, from, to, duration_s)| ScenarioPhase {
            mix,
            from,
            to,
            duration_s,
        },
    )
}

fn arb_tier() -> impl Strategy<Value = TierId> {
    prop_oneof![Just(TierId::App), Just(TierId::Db)]
}

fn arb_fault() -> impl Strategy<Value = FaultEvent> {
    prop_oneof![
        (arb_tier(), 0u64..500, 1u64..100).prop_map(|(tier, from_s, len)| {
            FaultEvent::AgentDown {
                tier,
                from_s,
                until_s: from_s + len,
            }
        }),
        (arb_tier(), 0u64..600).prop_map(|(tier, at_s)| FaultEvent::Reconnect { tier, at_s }),
    ]
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        "[a-z][a-z0-9-]{0,14}",
        "[ !#-~]{0,40}",
        any::<u64>(),
        0u32..120,
        arb_slo(),
        proptest::collection::vec(arb_phase(), 1..4),
        proptest::collection::vec(arb_fault(), 0..3),
    )
        .prop_map(
            |(name, description, seed, warmup_s, slo, phases, faults)| Scenario {
                name,
                description,
                seed,
                warmup_s,
                slo,
                phases,
                faults,
            },
        )
}

proptest! {
    #[test]
    fn scenario_toml_round_trip_is_lossless(scenario in arb_scenario()) {
        let toml = scenario.to_toml();
        let parsed = Scenario::from_toml(&toml)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{toml}")))?;
        prop_assert_eq!(&parsed, &scenario);
        prop_assert_eq!(parsed.to_toml(), toml, "canonical form is a fixed point");
    }
}

fn meter() -> &'static CapacityMeter {
    static METER: OnceLock<CapacityMeter> = OnceLock::new();
    METER.get_or_init(|| {
        CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("meter trains")
    })
}

#[test]
fn tightening_the_slo_never_raises_capacity() {
    let base = webcap_capsearch::scenario::find("steady-shopping").expect("library scenario");
    let cfg = SearchConfig::quick();
    // Strictly tightening SLO ladder: only the acceptance thresholds
    // move, so any probe passing a tighter SLO passes every looser one.
    let slos = [
        Slo {
            timeout_s: base.slo.timeout_s,
            max_error_fraction: 0.20,
            max_p99_s: 4.0,
        },
        Slo {
            timeout_s: base.slo.timeout_s,
            max_error_fraction: 0.08,
            max_p99_s: 2.5,
        },
        Slo {
            timeout_s: base.slo.timeout_s,
            max_error_fraction: 0.02,
            max_p99_s: 1.2,
        },
    ];
    let mut capacities = Vec::new();
    for slo in slos {
        let scenario = Scenario {
            slo,
            ..base.clone()
        };
        let mut executor = SimExecutor::new(meter());
        let report = search_scenario(&scenario, &mut executor, &cfg).expect("sim search");
        capacities.push(report.capacity_ebs);
    }
    for pair in capacities.windows(2) {
        assert!(
            pair[1] <= pair[0] + cfg.tolerance,
            "tightening the SLO must not raise capacity: {capacities:?}"
        );
    }
}
