//! A minimal Rust lexer — just enough structure for token-level lint
//! rules.
//!
//! This is deliberately not a parser: every rule in [`crate::rules`]
//! works on short token patterns (`Ident "Instant"`, `::`, `"now"`),
//! brace matching, and attribute spans. What the lexer must get exactly
//! right is what would *corrupt* those patterns: comments (line, nested
//! block, doc), string literals (escaped, raw, byte), char literals vs
//! lifetimes, and line numbers. Everything else — precedence, types,
//! name resolution — is out of scope by design; the fixture tests in
//! `tests/fixtures.rs` pin the contract.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Punctuation; common multi-character operators (`::`, `=>`, `..`)
    /// arrive merged as one token.
    Punct,
    /// Numeric literal.
    Num,
    /// String literal of any flavor (escaped, raw, byte); text is the
    /// raw source slice including quotes.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Str`, includes the quotes).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Tok {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True if this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// Three-character operators merged into a single `Punct` token.
const PUNCT3: &[&str] = &["..=", "<<=", ">>=", "..."];

/// Two-character operators merged into a single `Punct` token. `::`,
/// `=>`, and `->` matter to the rules; the rest are merged so they can
/// never be half-matched as their one-character prefixes.
const PUNCT2: &[&str] = &[
    "::", "=>", "->", "..", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens, skipping whitespace and all comment forms.
///
/// The lexer never fails: unterminated strings or comments simply
/// consume the rest of the file (the workspace it scans is code that
/// already compiles, so this arm is for fixture robustness, not
/// correctness-critical paths).
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advance `idx` to `to`, counting newlines into `line`.
    let count_lines = |from: usize, to: usize, line: &mut u32, bytes: &[char]| {
        for &c in &bytes[from..to] {
            if c == '\n' {
                *line += 1;
            }
        }
    };

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments: line (`//`, `///`, `//!`) and nested block (`/*`).
        if c == '/' && i + 1 < n {
            if bytes[i + 1] == '/' {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                let mut depth = 1usize;
                let start = i;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                count_lines(start, i, &mut line, &bytes);
                continue;
            }
        }
        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (skip, raw) = match (c, bytes[i + 1]) {
                ('r', '"') | ('r', '#') => (1, true),
                ('b', '"') => (1, false),
                ('b', 'r') if i + 2 < n && (bytes[i + 2] == '"' || bytes[i + 2] == '#') => {
                    (2, true)
                }
                _ => (0, false),
            };
            // Only a string prefix when the hashes (if any) lead to `"`.
            let mut j = i + skip;
            let mut hashes = 0usize;
            while raw && j < n && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if skip > 0 && j < n && bytes[j] == '"' {
                let start = i;
                let start_line = line;
                i = j + 1;
                if raw {
                    // Ends at `"` followed by `hashes` hashes; no escapes.
                    'raw: while i < n {
                        if bytes[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                } else {
                    // Byte string: ordinary escape rules.
                    while i < n {
                        if bytes[i] == '\\' {
                            i += 2;
                        } else if bytes[i] == '"' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                }
                count_lines(start, i.min(n), &mut line, &bytes);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: bytes[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
                continue;
            }
            if c == 'b' && i + 1 < n && bytes[i + 1] == '\'' {
                // Byte char b'x' / b'\n'.
                let start = i;
                i += 2;
                if i < n && bytes[i] == '\\' {
                    i += 2;
                } else {
                    i += 1;
                }
                if i < n && bytes[i] == '\'' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: bytes[start..i.min(n)].iter().collect(),
                    line,
                });
                continue;
            }
        }
        // Ordinary string.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                if bytes[i] == '\\' {
                    i += 2;
                } else if bytes[i] == '"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            count_lines(start, i.min(n), &mut line, &bytes);
            toks.push(Tok {
                kind: TokKind::Str,
                text: bytes[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = if i + 1 < n && bytes[i + 1] == '\\' {
                true
            } else {
                // 'x' is a char when the quote closes right after one
                // character; otherwise it is a lifetime.
                i + 2 < n && bytes[i + 2] == '\''
            };
            if is_char {
                let start = i;
                i += 1;
                if i < n && bytes[i] == '\\' {
                    i += 2;
                    // Escapes like \u{1F600} span to the closing quote.
                    while i < n && bytes[i] != '\'' {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
                if i < n && bytes[i] == '\'' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: bytes[start..i.min(n)].iter().collect(),
                    line,
                });
            } else {
                let start = i;
                i += 1;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: bytes[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_continue(bytes[i])) {
                // `1e-9` / `2E+10`: the sign belongs to the exponent.
                if (bytes[i] == 'e' || bytes[i] == 'E')
                    && i + 2 < n
                    && (bytes[i + 1] == '+' || bytes[i + 1] == '-')
                    && bytes[i + 2].is_ascii_digit()
                {
                    i += 2;
                }
                i += 1;
            }
            // A decimal point only when followed by a digit (so `0..n`
            // and `0.max(x)` stay separate tokens).
            if i < n && bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_continue(bytes[i]) {
                    if (bytes[i] == 'e' || bytes[i] == 'E')
                        && i + 2 < n
                        && (bytes[i + 1] == '+' || bytes[i + 1] == '-')
                        && bytes[i + 2].is_ascii_digit()
                    {
                        i += 2;
                    }
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(bytes[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Punctuation, longest merge first.
        let rest3: String = bytes[i..n.min(i + 3)].iter().collect();
        if PUNCT3.contains(&rest3.as_str()) {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: rest3,
                line,
            });
            i += 3;
            continue;
        }
        let rest2: String = bytes[i..n.min(i + 2)].iter().collect();
        if PUNCT2.contains(&rest2.as_str()) {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: rest2,
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        assert_eq!(
            texts("Instant::now()"),
            vec!["Instant", "::", "now", "(", ")"]
        );
        assert_eq!(texts("a => b"), vec!["a", "=>", "b"]);
        assert_eq!(texts("x.unwrap()"), vec!["x", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = lex("// SystemTime::now()\n/* Instant::now()\n */ ok");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "ok");
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "Instant::now() _ =>";"#);
        assert!(toks.iter().all(|t| t.text != "Instant"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_do_not_escape() {
        // In a raw string the backslash is literal, so the quote after
        // it terminates the literal.
        let toks = lex(r###"let s = r#"a \ " quote inside"# ; tail"###);
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("tail"));
        let toks = lex("let s = r\"\\\"; x.unwrap()");
        assert!(toks.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn chars_and_lifetimes_are_distinguished() {
        let toks = lex("fn f<'a>(c: char) { let x = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            1
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        assert_eq!(texts("0..n"), vec!["0", "..", "n"]);
        assert_eq!(texts("1.5e-9"), vec!["1.5e-9"]);
        assert_eq!(texts("0.max(x)"), vec!["0", ".", "max", "(", "x", ")"]);
    }

    #[test]
    fn underscore_is_an_ident() {
        let toks = lex("_ => {}");
        assert!(toks[0].is_ident("_"));
        assert!(toks[1].is_punct("=>"));
    }
}
