//! The committed allowlist: known findings tracked as explicit debt.
//!
//! The baseline file is a TOML subset — an optional header comment and
//! a sequence of `[[finding]]` tables with string/integer keys:
//!
//! ```toml
//! [[finding]]
//! rule = "panic-unwrap"
//! file = "crates/core/src/agg.rs"
//! line = 123
//! note = "documented panic: pub(crate) caller guarantees non-empty"
//! ```
//!
//! Findings are matched against the baseline on `(rule, file, line)`.
//! Only *new* findings fail the lint run; baseline entries that no
//! longer match anything are reported as stale (a warning, not a
//! failure) so the allowlist shrinks over time instead of fossilizing.
//!
//! Parsing is hand-rolled (the crate is dependency-free by design) and
//! deliberately strict: unknown keys, non-`[[finding]]` tables, or
//! malformed lines are errors rather than silently ignored allowances.

use std::fmt;

use crate::Finding;

/// One allowlisted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier, e.g. `panic-unwrap`.
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Why this finding is accepted (required: debt needs a reason).
    pub note: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

/// Baseline parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// Line in the baseline file where parsing failed.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parse the TOML-subset baseline format.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let err = |line: u32, msg: String| BaselineError { line, msg };
        let mut entries: Vec<BaselineEntry> = Vec::new();
        let mut open: Option<(BaselineEntry, u32, bool)> = None; // entry, start line, has_line

        let flush = |open: &mut Option<(BaselineEntry, u32, bool)>,
                     entries: &mut Vec<BaselineEntry>|
         -> Result<(), BaselineError> {
            if let Some((entry, at, has_line)) = open.take() {
                entries.push(finish_entry_full(entry, at, has_line)?);
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[finding]]" {
                flush(&mut open, &mut entries)?;
                open = Some((
                    BaselineEntry {
                        rule: String::new(),
                        file: String::new(),
                        line: 0,
                        note: String::new(),
                    },
                    lineno,
                    false,
                ));
                continue;
            }
            if line.starts_with('[') {
                return Err(err(lineno, format!("unexpected table `{line}`")));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = key.trim();
            let value = value.trim();
            let Some((entry, _, has_line)) = open.as_mut() else {
                return Err(err(lineno, format!("`{key}` outside a [[finding]] table")));
            };
            match key {
                "rule" => entry.rule = unquote(value).map_err(|m| err(lineno, m))?,
                "file" => entry.file = unquote(value).map_err(|m| err(lineno, m))?,
                "note" => entry.note = unquote(value).map_err(|m| err(lineno, m))?,
                "line" => {
                    entry.line = value
                        .parse::<u32>()
                        .map_err(|_| err(lineno, format!("`line` is not an integer: `{value}`")))?;
                    *has_line = true;
                }
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }
        flush(&mut open, &mut entries)?;
        Ok(Baseline { entries })
    }

    /// Render a findings list as a baseline file (`--write-baseline`).
    /// Output is deterministic: entries sorted by `(file, line, rule)`.
    pub fn render(findings: &[Finding]) -> String {
        let mut sorted: Vec<&Finding> = findings.iter().collect();
        sorted.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        let mut out = String::from(
            "# webcap lint baseline — explicitly tracked findings.\n\
             # Regenerate with: webcap lint --write-baseline\n\
             # Matching is on (rule, file, line); `note` records why the\n\
             # finding is accepted. Shrink this file, never grow it silently.\n",
        );
        for f in sorted {
            out.push('\n');
            out.push_str("[[finding]]\n");
            out.push_str(&format!("rule = {}\n", quote(f.rule)));
            out.push_str(&format!("file = {}\n", quote(&f.file)));
            out.push_str(&format!("line = {}\n", f.line));
            out.push_str(&format!("note = {}\n", quote(&f.note)));
        }
        out
    }

    /// True if `f` matches an entry on `(rule, file, line)`.
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == f.rule && e.file == f.file && e.line == f.line)
    }

    /// Entries that no longer match any current finding — stale debt
    /// that should be deleted from the baseline file.
    pub fn stale<'a>(&'a self, findings: &[Finding]) -> Vec<&'a BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !findings
                    .iter()
                    .any(|f| e.rule == f.rule && e.file == f.file && e.line == f.line)
            })
            .collect()
    }
}

fn finish_entry_full(
    entry: BaselineEntry,
    at: u32,
    has_line: bool,
) -> Result<BaselineEntry, BaselineError> {
    let missing = |what: &str| BaselineError {
        line: at,
        msg: format!("[[finding]] is missing `{what}`"),
    };
    if entry.rule.is_empty() {
        return Err(missing("rule"));
    }
    if entry.file.is_empty() {
        return Err(missing("file"));
    }
    if !has_line {
        return Err(missing("line"));
    }
    if entry.note.is_empty() {
        return Err(missing("note"));
    }
    Ok(entry)
}

/// Strip surrounding double quotes and resolve `\"` / `\\` escapes.
fn unquote(v: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{v}`"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => return Err(format!("unsupported escape `\\{other}`")),
                None => return Err("dangling backslash".to_string()),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Double-quote a string, escaping quotes and backslashes.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            note: "why".to_string(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings = vec![
            finding("panic-unwrap", "crates/core/src/agg.rs", 123),
            finding("nondet-time", "crates/bench/src/harness.rs", 196),
        ];
        let text = Baseline::render(&findings);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        // Render sorts by (file, line, rule).
        assert_eq!(parsed.entries[0].file, "crates/bench/src/harness.rs");
        assert!(parsed.covers(&findings[0]));
        assert!(parsed.covers(&findings[1]));
        assert!(!parsed.covers(&finding("panic-unwrap", "crates/core/src/agg.rs", 124)));
    }

    #[test]
    fn stale_entries_are_reported() {
        let text = Baseline::render(&[finding("panic-unwrap", "crates/core/src/agg.rs", 1)]);
        let parsed = Baseline::parse(&text).unwrap();
        let stale = parsed.stale(&[]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "crates/core/src/agg.rs");
        assert!(parsed
            .stale(&[finding("panic-unwrap", "crates/core/src/agg.rs", 1)])
            .is_empty());
    }

    #[test]
    fn missing_keys_and_unknown_keys_are_errors() {
        let missing = "[[finding]]\nrule = \"r\"\nfile = \"f\"\nline = 3\n";
        let e = Baseline::parse(missing).unwrap_err();
        assert!(e.msg.contains("note"), "{e}");
        let unknown = "[[finding]]\nrule = \"r\"\nseverity = \"error\"\n";
        let e = Baseline::parse(unknown).unwrap_err();
        assert!(e.msg.contains("unknown key"), "{e}");
        let outside = "rule = \"r\"\n";
        let e = Baseline::parse(outside).unwrap_err();
        assert!(e.msg.contains("outside"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n[[finding]]\nrule = \"r\"\nfile = \"f\"\nline = 1\nnote = \"n\"\n";
        let parsed = Baseline::parse(text).unwrap();
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].rule, "r");
    }

    #[test]
    fn escapes_round_trip() {
        let f = Finding {
            rule: "panic-unwrap",
            severity: Severity::Error,
            file: "crates/core/src/x.rs".to_string(),
            line: 1,
            note: "quote \" and backslash \\ and\nnewline".to_string(),
        };
        let parsed = Baseline::parse(&Baseline::render(&[f.clone()])).unwrap();
        assert_eq!(parsed.entries[0].note, f.note);
    }
}
