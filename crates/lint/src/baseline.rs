//! The committed allowlist: known findings tracked as explicit debt.
//!
//! The baseline file is a TOML subset — an optional header comment and
//! a sequence of `[[finding]]` tables with string/integer keys:
//!
//! ```toml
//! [[finding]]
//! rule = "nondet-time"
//! file = "crates/bench/src/harness.rs"
//! fingerprint = "a61b0f204c83d97e"
//! note = "wall-clock timing is the bench harness's purpose"
//! ```
//!
//! v2 entries carry a content-addressed `fingerprint` (computed by the
//! analyzer from rule + enclosing item + normalized snippet), so the
//! baseline survives line renumbering: a formatting-only commit needs
//! zero baseline edits. v1 entries carried `line` instead; the parser
//! still accepts them, and [`Baseline::covers`] falls back to
//! `(rule, file, line)` matching for them, which is the one-shot
//! migration path — run `webcap lint --write-baseline` once against a
//! v1 file and every entry is re-emitted with its fingerprint (curated
//! notes preserved).
//!
//! Only *new* findings fail the lint run; baseline entries that no
//! longer match anything are reported as stale (a warning, not a
//! failure) so the allowlist shrinks over time instead of fossilizing.
//!
//! Parsing is hand-rolled (the crate is dependency-free by design) and
//! deliberately strict: unknown keys, non-`[[finding]]` tables, or
//! malformed lines are errors rather than silently ignored allowances.

use std::fmt;

use crate::Finding;

/// One allowlisted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier, e.g. `panic-reachability`.
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Content-addressed identity (v2 entries); empty on legacy
    /// line-keyed entries.
    pub fingerprint: String,
    /// 1-based line number (legacy v1 entries); 0 on v2 entries.
    pub line: u32,
    /// Why this finding is accepted (required: debt needs a reason).
    pub note: String,
}

impl BaselineEntry {
    /// True if this entry matches `f`: by fingerprint when the entry
    /// has one, by `(line)` otherwise (legacy migration path). Rule and
    /// file must always match.
    pub fn matches(&self, f: &Finding) -> bool {
        if self.rule != f.rule || self.file != f.file {
            return false;
        }
        if !self.fingerprint.is_empty() {
            self.fingerprint == f.fingerprint
        } else {
            self.line == f.line
        }
    }
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

/// Baseline parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// Line in the baseline file where parsing failed.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parse the TOML-subset baseline format (v2 `fingerprint` entries
    /// and legacy v1 `line` entries both accepted).
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let err = |line: u32, msg: String| BaselineError { line, msg };
        let mut entries: Vec<BaselineEntry> = Vec::new();
        let mut open: Option<(BaselineEntry, u32, bool)> = None; // entry, start line, has_line

        let flush = |open: &mut Option<(BaselineEntry, u32, bool)>,
                     entries: &mut Vec<BaselineEntry>|
         -> Result<(), BaselineError> {
            if let Some((entry, at, has_line)) = open.take() {
                entries.push(finish_entry_full(entry, at, has_line)?);
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[finding]]" {
                flush(&mut open, &mut entries)?;
                open = Some((
                    BaselineEntry {
                        rule: String::new(),
                        file: String::new(),
                        fingerprint: String::new(),
                        line: 0,
                        note: String::new(),
                    },
                    lineno,
                    false,
                ));
                continue;
            }
            if line.starts_with('[') {
                return Err(err(lineno, format!("unexpected table `{line}`")));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = key.trim();
            let value = value.trim();
            let Some((entry, _, has_line)) = open.as_mut() else {
                return Err(err(lineno, format!("`{key}` outside a [[finding]] table")));
            };
            match key {
                "rule" => entry.rule = unquote(value).map_err(|m| err(lineno, m))?,
                "file" => entry.file = unquote(value).map_err(|m| err(lineno, m))?,
                "note" => entry.note = unquote(value).map_err(|m| err(lineno, m))?,
                "fingerprint" => {
                    entry.fingerprint = unquote(value).map_err(|m| err(lineno, m))?
                }
                "line" => {
                    entry.line = value
                        .parse::<u32>()
                        .map_err(|_| err(lineno, format!("`line` is not an integer: `{value}`")))?;
                    *has_line = true;
                }
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }
        flush(&mut open, &mut entries)?;
        Ok(Baseline { entries })
    }

    /// Render a findings list as a v2 baseline file
    /// (`--write-baseline`). Output is deterministic: entries sorted by
    /// `(file, line, rule)`; the line appears only as an informational
    /// comment, so a line shift alone never changes a key.
    ///
    /// `previous` is the baseline being regenerated over: curated notes
    /// are carried forward for every finding whose fingerprint matches
    /// an existing entry, with a fallback match on legacy
    /// `(rule, file, line)` — the one-shot v1 → v2 migration. (v1
    /// dropped notes on every regeneration; that is the bug this
    /// signature fixes.)
    pub fn render(findings: &[Finding], previous: &Baseline) -> String {
        let mut sorted: Vec<&Finding> = findings.iter().collect();
        sorted.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        let mut out = String::from(
            "# webcap lint baseline — explicitly tracked findings.\n\
             # Regenerate with: webcap lint --write-baseline\n\
             # Matching is on (rule, file, fingerprint); fingerprints are\n\
             # content-addressed (enclosing item + snippet), so line shifts\n\
             # never require regeneration. `note` records why the finding is\n\
             # accepted. Shrink this file, never grow it silently.\n",
        );
        for f in sorted {
            let note = previous
                .entries
                .iter()
                .find(|e| {
                    e.rule == f.rule
                        && e.file == f.file
                        && !e.fingerprint.is_empty()
                        && e.fingerprint == f.fingerprint
                })
                .or_else(|| {
                    // Legacy v1 entry: same site, identified by line.
                    previous.entries.iter().find(|e| {
                        e.rule == f.rule
                            && e.file == f.file
                            && e.fingerprint.is_empty()
                            && e.line == f.line
                    })
                })
                .map(|e| e.note.as_str())
                .filter(|n| !n.is_empty())
                .unwrap_or(f.note.as_str());
            out.push('\n');
            out.push_str("[[finding]]\n");
            out.push_str(&format!("# {}:{}\n", f.file, f.line));
            out.push_str(&format!("rule = {}\n", quote(f.rule)));
            out.push_str(&format!("file = {}\n", quote(&f.file)));
            out.push_str(&format!("fingerprint = {}\n", quote(&f.fingerprint)));
            out.push_str(&format!("note = {}\n", quote(note)));
        }
        out
    }

    /// True if `f` matches an entry (fingerprint, or legacy line).
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries.iter().any(|e| e.matches(f))
    }

    /// Entries that no longer match any current finding — stale debt
    /// that should be deleted from the baseline file.
    pub fn stale<'a>(&'a self, findings: &[Finding]) -> Vec<&'a BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| !findings.iter().any(|f| e.matches(f)))
            .collect()
    }
}

fn finish_entry_full(
    entry: BaselineEntry,
    at: u32,
    has_line: bool,
) -> Result<BaselineEntry, BaselineError> {
    let missing = |what: &str| BaselineError {
        line: at,
        msg: format!("[[finding]] is missing `{what}`"),
    };
    if entry.rule.is_empty() {
        return Err(missing("rule"));
    }
    if entry.file.is_empty() {
        return Err(missing("file"));
    }
    if entry.fingerprint.is_empty() && !has_line {
        return Err(missing("fingerprint` (or legacy `line`"));
    }
    if entry.note.is_empty() {
        return Err(missing("note"));
    }
    Ok(entry)
}

/// Strip surrounding double quotes and resolve `\"` / `\\` escapes.
fn unquote(v: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{v}`"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => return Err(format!("unsupported escape `\\{other}`")),
                None => return Err("dangling backslash".to_string()),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Double-quote a string, escaping quotes and backslashes.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn finding(rule: &'static str, file: &str, line: u32, fp: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            note: "why".to_string(),
            fingerprint: fp.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings = vec![
            finding("nondet-time", "crates/bench/src/harness.rs", 196, "aa00"),
            finding("panic-reachability", "crates/core/src/agg.rs", 123, "bb11"),
        ];
        let text = Baseline::render(&findings, &Baseline::default());
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        // Render sorts by (file, line, rule).
        assert_eq!(parsed.entries[0].file, "crates/bench/src/harness.rs");
        assert!(parsed.covers(&findings[0]));
        assert!(parsed.covers(&findings[1]));
        // Same site, different content → different fingerprint → not
        // covered, even at the same line.
        assert!(!parsed.covers(&finding(
            "panic-reachability",
            "crates/core/src/agg.rs",
            123,
            "cc22"
        )));
        // A pure line shift with the same fingerprint stays covered:
        // zero baseline edits for formatting commits.
        assert!(parsed.covers(&finding(
            "panic-reachability",
            "crates/core/src/agg.rs",
            999,
            "bb11"
        )));
    }

    #[test]
    fn legacy_line_entries_cover_by_line() {
        let v1 = "[[finding]]\nrule = \"nondet-time\"\nfile = \"f.rs\"\nline = 7\nnote = \"ok\"\n";
        let parsed = Baseline::parse(v1).unwrap();
        assert!(parsed.covers(&finding("nondet-time", "f.rs", 7, "aa00")));
        assert!(!parsed.covers(&finding("nondet-time", "f.rs", 8, "aa00")));
    }

    #[test]
    fn regeneration_preserves_curated_notes_by_fingerprint() {
        // The --write-baseline note-dropping bug: a curated note must
        // survive regeneration when the fingerprint is unchanged.
        let curated = "[[finding]]\nrule = \"nondet-time\"\nfile = \"f.rs\"\n\
                       fingerprint = \"aa00\"\nnote = \"curated: the bench clock is the point\"\n";
        let previous = Baseline::parse(curated).unwrap();
        let regenerated = Baseline::render(
            &[finding("nondet-time", "f.rs", 42, "aa00")],
            &previous,
        );
        let parsed = Baseline::parse(&regenerated).unwrap();
        assert_eq!(parsed.entries[0].note, "curated: the bench clock is the point");
        // A *changed* fingerprint means the code changed: the finding's
        // fresh note wins, not the stale curation.
        let regenerated = Baseline::render(
            &[finding("nondet-time", "f.rs", 42, "bb11")],
            &previous,
        );
        let parsed = Baseline::parse(&regenerated).unwrap();
        assert_eq!(parsed.entries[0].note, "why");
    }

    #[test]
    fn migration_carries_notes_from_legacy_line_entries() {
        let v1 = "[[finding]]\nrule = \"nondet-time\"\nfile = \"f.rs\"\nline = 7\n\
                  note = \"curated v1 note\"\n";
        let previous = Baseline::parse(v1).unwrap();
        let migrated = Baseline::render(&[finding("nondet-time", "f.rs", 7, "aa00")], &previous);
        let parsed = Baseline::parse(&migrated).unwrap();
        // The regenerated entry is fingerprint-keyed and kept its note.
        assert_eq!(parsed.entries[0].fingerprint, "aa00");
        assert_eq!(parsed.entries[0].line, 0);
        assert_eq!(parsed.entries[0].note, "curated v1 note");
    }

    #[test]
    fn stale_entries_are_reported() {
        let text = Baseline::render(
            &[finding("panic-reachability", "crates/core/src/agg.rs", 1, "aa00")],
            &Baseline::default(),
        );
        let parsed = Baseline::parse(&text).unwrap();
        let stale = parsed.stale(&[]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "crates/core/src/agg.rs");
        assert!(parsed
            .stale(&[finding(
                "panic-reachability",
                "crates/core/src/agg.rs",
                1,
                "aa00"
            )])
            .is_empty());
    }

    #[test]
    fn missing_keys_and_unknown_keys_are_errors() {
        let missing = "[[finding]]\nrule = \"r\"\nfile = \"f\"\nfingerprint = \"aa\"\n";
        let e = Baseline::parse(missing).unwrap_err();
        assert!(e.msg.contains("note"), "{e}");
        let no_identity = "[[finding]]\nrule = \"r\"\nfile = \"f\"\nnote = \"n\"\n";
        let e = Baseline::parse(no_identity).unwrap_err();
        assert!(e.msg.contains("fingerprint"), "{e}");
        let unknown = "[[finding]]\nrule = \"r\"\nseverity = \"error\"\n";
        let e = Baseline::parse(unknown).unwrap_err();
        assert!(e.msg.contains("unknown key"), "{e}");
        let outside = "rule = \"r\"\n";
        let e = Baseline::parse(outside).unwrap_err();
        assert!(e.msg.contains("outside"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n[[finding]]\n# f.rs:1\nrule = \"r\"\nfile = \"f\"\n\
                    fingerprint = \"aa\"\nnote = \"n\"\n";
        let parsed = Baseline::parse(text).unwrap();
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].rule, "r");
    }

    #[test]
    fn escapes_round_trip() {
        let f = Finding {
            rule: "panic-reachability",
            severity: Severity::Error,
            file: "crates/core/src/x.rs".to_string(),
            line: 1,
            note: "quote \" and backslash \\ and\nnewline".to_string(),
            fingerprint: "aa00".to_string(),
            chain: Vec::new(),
        };
        let parsed = Baseline::parse(&Baseline::render(&[f.clone()], &Baseline::default())).unwrap();
        assert_eq!(parsed.entries[0].note, f.note);
    }
}
