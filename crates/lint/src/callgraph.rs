//! Workspace symbol index and conservative call graph.
//!
//! Built from the [`crate::parser`] item trees of every workspace file,
//! this is the substrate the interprocedural analyses
//! (panic-reachability, determinism taint) walk. Resolution is
//! deliberately *conservative in the sound direction*: when a call
//! site's callee cannot be pinned to one function, edges are added to
//! **every** plausible target, so reachability over-approximates — a
//! function the graph calls unreachable really is unreachable through
//! any call chain the source spells out.
//!
//! What resolves exactly:
//! - `Type::method(..)` and `Self::method(..)` paths (uppercase
//!   qualifier → associated function);
//! - `module::path::func(..)` (lowercase qualifier → free function by
//!   final segment);
//! - `self.method(..)` inside an impl (the impl target's method);
//! - `x.method(..)` where `x` is a parameter or `let x = Type::..` /
//!   `let x: Type` binding whose type names a workspace type.
//!
//! What over-approximates: a method call whose receiver type is unknown
//! links to *every* workspace method of that name; function paths
//! passed as values (`map(Self::f)`) link as calls. Calls into the
//! standard library produce no edges — std panics surface at our call
//! sites as panic ops, not as graph nodes.
//!
//! Known blind spot (shared with every syntactic call graph): a bare
//! identifier passed as a callback (`run(handler)`) is indistinguishable
//! from a variable and produces no edge. The workspace idiom is
//! `Type::method` paths for callbacks, which do resolve.

use std::collections::HashMap;

use crate::lexer::{Tok, TokKind};
use crate::parser::ParsedFile;

/// One source file, parsed — the unit the graph builder consumes.
pub struct SourceUnit {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Short crate name (`core`, `net`, ... `webcap` for the root).
    pub crate_name: String,
    /// The full token stream.
    pub toks: Vec<Tok>,
    /// Per-token `#[cfg(test)]` mask (token-granular, used by the local
    /// rules; the graph uses the parser's per-fn flag).
    pub exempt: Vec<bool>,
    /// The item tree.
    pub parsed: ParsedFile,
}

impl SourceUnit {
    /// Lex, mask, and parse one file.
    pub fn new(rel_path: &str, source: &str) -> SourceUnit {
        let toks = crate::lexer::lex(source);
        let exempt = crate::rules::test_exempt_mask(&toks);
        let parsed = crate::parser::parse(&toks);
        SourceUnit {
            rel_path: rel_path.to_string(),
            crate_name: crate::rules::crate_of(rel_path),
            toks,
            exempt,
            parsed,
        }
    }
}

/// One function node in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Qualified name (`MergeNode::ingest` or `run_collector`).
    pub qual: String,
    /// Bare name.
    pub name: String,
    /// Short crate name.
    pub crate_name: String,
    /// Index into the unit slice the graph was built from.
    pub file_idx: usize,
    /// Index into that unit's `parsed.fns`.
    pub fn_idx: usize,
    /// Test-only function (excluded from traversals).
    pub is_test: bool,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All function nodes, in (file, fn) order — deterministic.
    pub nodes: Vec<FnNode>,
    /// `edges[n]` = sorted, deduplicated callee node ids of `n`.
    pub edges: Vec<Vec<usize>>,
    /// qual → node ids (lookup only; never iterated).
    by_qual: HashMap<String, Vec<usize>>,
    /// method name → node ids of associated fns (lookup only).
    methods_by_name: HashMap<String, Vec<usize>>,
    /// free-fn name → node ids (lookup only).
    free_by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over every function in `units` (test fns get
    /// nodes, for stable ids, but no edges and no traversal).
    pub fn build(units: &[SourceUnit]) -> CallGraph {
        let mut nodes = Vec::new();
        for (file_idx, u) in units.iter().enumerate() {
            for (fn_idx, f) in u.parsed.fns.iter().enumerate() {
                nodes.push(FnNode {
                    qual: f.qual.clone(),
                    name: f.name.clone(),
                    crate_name: u.crate_name.clone(),
                    file_idx,
                    fn_idx,
                    is_test: f.is_test,
                });
            }
        }
        let mut by_qual: HashMap<String, Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut free_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if n.is_test {
                continue;
            }
            by_qual.entry(n.qual.clone()).or_default().push(id);
            if n.qual.contains("::") {
                methods_by_name.entry(n.name.clone()).or_default().push(id);
            } else {
                free_by_name.entry(n.name.clone()).or_default().push(id);
            }
        }
        let mut g = CallGraph {
            edges: vec![Vec::new(); nodes.len()],
            nodes,
            by_qual,
            methods_by_name,
            free_by_name,
        };
        for id in 0..g.nodes.len() {
            if g.nodes[id].is_test {
                continue;
            }
            g.edges[id] = g.callees_of(units, id);
        }
        g
    }

    /// Node ids whose qualified name is exactly `qual` (non-test only).
    pub fn resolve_qual(&self, qual: &str) -> &[usize] {
        self.by_qual.get(qual).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Node ids matching `spec` within `crate_name`: `spec` is either a
    /// qualified `Type::name` or a bare free-fn name.
    pub fn resolve_entry(&self, crate_name: &str, spec: &str) -> Vec<usize> {
        self.resolve_qual(spec)
            .iter()
            .copied()
            .filter(|&id| self.nodes[id].crate_name == crate_name)
            .collect()
    }

    /// Extract and resolve every call site in node `id`'s body.
    fn callees_of(&self, units: &[SourceUnit], id: usize) -> Vec<usize> {
        let node = &self.nodes[id];
        let unit = &units[node.file_idx];
        let f = &unit.parsed.fns[node.fn_idx];
        let Some((open, close)) = f.body else {
            return Vec::new();
        };
        let toks = &unit.toks;
        // The impl target for Self:: / self. resolution.
        let self_ty: Option<&str> = f.qual.split_once("::").map(|(ty, _)| ty);
        // Light local type environment: parameter types plus
        // `let x = Type::..` / `let x: Type` bindings.
        let mut env: HashMap<&str, Vec<String>> = HashMap::new();
        for p in &f.params {
            let tys = type_idents(&p.ty);
            if !tys.is_empty() {
                env.insert(p.name.as_str(), tys);
            }
        }
        for i in open..close {
            if toks[i].is_ident("let") {
                bind_local(toks, i, close, &mut env);
            }
        }

        let mut out: Vec<usize> = Vec::new();
        let mut i = open;
        while i <= close {
            let t = &toks[i];
            if t.kind != TokKind::Ident || is_keyword(&t.text) {
                i += 1;
                continue;
            }
            let prev = if i > 0 { toks.get(i - 1) } else { None };
            let next = toks.get(i + 1);
            let after_dot = prev.is_some_and(|p| p.is_punct("."));
            let after_path = prev.is_some_and(|p| p.is_punct("::"));
            let called = next.is_some_and(|n| n.is_punct("("));

            if after_dot && called {
                // `recv.name(..)` — method call.
                let recv = if i >= 2 { toks.get(i - 2) } else { None };
                self.resolve_method(&t.text, recv, self_ty, &env, &mut out);
                i += 1;
                continue;
            }
            if !after_dot && !after_path && next.is_some_and(|n| n.is_punct("::")) {
                // Head of a path `a::b::..`: resolve at its last
                // segment, whether called or passed as a fn value —
                // unless it's a macro path.
                let (last, qualifier, end) = path_tail(toks, i, close);
                let is_macro = toks.get(end).is_some_and(|n| n.is_punct("!"));
                if !is_macro {
                    self.resolve_path(&last, qualifier.as_deref(), self_ty, &mut out);
                }
                i = end;
                continue;
            }
            if !after_dot && !after_path && called {
                // Plain `name(..)` — free fn (same crate first, then
                // anywhere: cross-crate imports make the name ambient).
                let candidates = self
                    .free_by_name
                    .get(&t.text)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                let local: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| self.nodes[c].crate_name == node.crate_name)
                    .collect();
                if !local.is_empty() {
                    out.extend(local);
                } else {
                    out.extend(candidates.iter().copied());
                }
            }
            i += 1;
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&c| c != id);
        out
    }

    /// Resolve a `recv.name(..)` method call.
    fn resolve_method(
        &self,
        name: &str,
        recv: Option<&Tok>,
        self_ty: Option<&str>,
        env: &HashMap<&str, Vec<String>>,
        out: &mut Vec<usize>,
    ) {
        let mut tys: Vec<&str> = Vec::new();
        if let Some(r) = recv {
            if r.is_ident("self") {
                if let Some(ty) = self_ty {
                    tys.push(ty);
                }
            } else if r.kind == TokKind::Ident {
                if let Some(bound) = env.get(r.text.as_str()) {
                    tys.extend(bound.iter().map(String::as_str));
                }
            }
        }
        let mut hit = false;
        for ty in &tys {
            let ids = self.resolve_qual(&format!("{ty}::{name}"));
            if !ids.is_empty() {
                out.extend(ids.iter().copied());
                hit = true;
            }
        }
        if hit {
            return;
        }
        // Unknown receiver: every workspace method of this name.
        if let Some(all) = self.methods_by_name.get(name) {
            out.extend(all.iter().copied());
        }
    }

    /// Resolve a path whose final segment is `last`, preceded by
    /// `qualifier` (the segment before it, if any).
    fn resolve_path(
        &self,
        last: &str,
        qualifier: Option<&str>,
        self_ty: Option<&str>,
        out: &mut Vec<usize>,
    ) {
        match qualifier {
            Some("Self") => {
                if let Some(ty) = self_ty {
                    out.extend(self.resolve_qual(&format!("{ty}::{last}")).iter().copied());
                }
            }
            Some(q) if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                // `Type::last` — associated fn; an enum path
                // (`TierId::App`) names a variant, not a fn, and simply
                // resolves to nothing.
                out.extend(self.resolve_qual(&format!("{q}::{last}")).iter().copied());
            }
            _ => {
                // `module::last` — free fn by final segment.
                if let Some(all) = self.free_by_name.get(last) {
                    out.extend(all.iter().copied());
                }
            }
        }
    }

    /// Breadth-first shortest distances and predecessors from `entries`.
    /// Deterministic: frontiers are visited in sorted order and edge
    /// lists are pre-sorted, so ties break toward the smallest node id.
    pub fn bfs(&self, entries: &[usize]) -> Reach {
        let mut dist: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut pred: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut frontier: Vec<usize> = entries.to_vec();
        frontier.sort_unstable();
        frontier.dedup();
        for &e in &frontier {
            dist[e] = Some(0);
        }
        let mut d = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &n in &frontier {
                for &c in &self.edges[n] {
                    if dist[c].is_none() && !self.nodes[c].is_test {
                        dist[c] = Some(d + 1);
                        pred[c] = Some(n);
                        next.push(c);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
            d += 1;
        }
        Reach { dist, pred }
    }
}

/// BFS result: per-node shortest distance and predecessor.
pub struct Reach {
    /// `dist[n]` = shortest hop count from any entry, `None` if
    /// unreachable.
    pub dist: Vec<Option<u32>>,
    /// Predecessor on one shortest path (smallest-id tiebreak).
    pub pred: Vec<Option<usize>>,
}

impl Reach {
    /// The shortest call chain entry → .. → `target` as qualified
    /// names, or `None` when unreachable.
    pub fn chain(&self, g: &CallGraph, target: usize) -> Option<Vec<String>> {
        self.dist[target]?;
        let mut chain = vec![g.nodes[target].qual.clone()];
        let mut cur = target;
        while let Some(p) = self.pred[cur] {
            chain.push(g.nodes[p].qual.clone());
            cur = p;
        }
        chain.reverse();
        Some(chain)
    }
}

/// Find the fn of `parsed` (by index) whose body contains token
/// `tok_idx`; innermost wins.
pub fn enclosing_fn(parsed: &ParsedFile, tok_idx: usize) -> Option<usize> {
    parsed
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.body
                .is_some_and(|(open, close)| open <= tok_idx && tok_idx <= close)
        })
        .max_by_key(|(_, f)| f.body.map(|(open, _)| open))
        .map(|(i, _)| i)
}

/// Uppercase-initial type idents mentioned in a normalized type string,
/// excluding wrapper/container types whose methods are std's, not ours.
fn type_idents(ty: &str) -> Vec<String> {
    const WRAPPERS: &[&str] = &[
        "Option", "Result", "Vec", "VecDeque", "Box", "Rc", "Arc", "RefCell", "Cell", "Mutex",
        "RwLock", "String", "PathBuf", "Path", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Cow",
        "Instant", "Duration", "SystemTime", "TcpStream", "TcpListener", "Self",
    ];
    ty.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        .filter(|s| !WRAPPERS.contains(s))
        .map(str::to_string)
        .collect()
}

/// Record `let name [: Ty] [= Ty::..]` type bindings into `env`.
fn bind_local<'t>(
    toks: &'t [Tok],
    let_idx: usize,
    close: usize,
    env: &mut HashMap<&'t str, Vec<String>>,
) {
    // `let [mut] name` — only simple ident patterns.
    let mut j = let_idx + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return;
    };
    let name = name_tok.text.as_str();
    // `: Type` annotation.
    if toks.get(j + 1).is_some_and(|t| t.is_punct(":")) {
        if let Some(ty_tok) = toks.get(j + 2).filter(|t| t.kind == TokKind::Ident) {
            let tys = type_idents(&ty_tok.text);
            if !tys.is_empty() {
                env.insert(name, tys);
                return;
            }
        }
    }
    // `= Type::..` initializer (walk past `&`/`mut`).
    let mut k = j + 1;
    while k <= close && !toks[k].is_punct("=") && !toks[k].is_punct(";") {
        k += 1;
    }
    if k > close || !toks[k].is_punct("=") {
        return;
    }
    let mut v = k + 1;
    while v <= close && (toks[v].is_punct("&") || toks[v].is_ident("mut")) {
        v += 1;
    }
    if let Some(head) = toks.get(v).filter(|t| t.kind == TokKind::Ident) {
        if toks.get(v + 1).is_some_and(|t| t.is_punct("::")) {
            let tys = type_idents(&head.text);
            if !tys.is_empty() {
                env.insert(name, tys);
            }
        }
    }
}

/// Walk a `a::b::c` path starting at its head ident; return the final
/// segment, the segment before it, and the token index just past the
/// path.
fn path_tail(toks: &[Tok], head: usize, close: usize) -> (String, Option<String>, usize) {
    let mut last = toks[head].text.clone();
    let mut qualifier: Option<String> = None;
    let mut i = head + 1;
    while i < close
        && toks.get(i).is_some_and(|t| t.is_punct("::"))
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
    {
        qualifier = Some(std::mem::take(&mut last));
        last = toks[i + 1].text.clone();
        i += 2;
    }
    (last, qualifier, i)
}

/// Rust keywords that head expressions, not calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "return"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "fn"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "mod"
            | "use"
            | "pub"
            | "const"
            | "static"
            | "where"
            | "unsafe"
            | "dyn"
            | "box"
            | "await"
            | "async"
            | "true"
            | "false"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::rules;

    fn units(srcs: &[(&str, &str)]) -> Vec<SourceUnit> {
        srcs.iter()
            .map(|(path, src)| {
                let toks = lex(src);
                let parsed = parse(&toks);
                SourceUnit {
                    rel_path: path.to_string(),
                    crate_name: rules::crate_of(path),
                    exempt: vec![false; toks.len()],
                    toks,
                    parsed,
                }
            })
            .collect()
    }

    fn node_id(g: &CallGraph, qual: &str) -> usize {
        g.resolve_qual(qual)[0]
    }

    fn callee_quals(g: &CallGraph, qual: &str) -> Vec<String> {
        g.edges[node_id(g, qual)]
            .iter()
            .map(|&c| g.nodes[c].qual.clone())
            .collect()
    }

    #[test]
    fn plain_and_qualified_calls_link() {
        let u = units(&[(
            "crates/core/src/a.rs",
            "fn top() { helper(); Window::push(1); other::mod_fn(); }\n\
             fn helper() {}\n\
             struct Window;\n\
             impl Window { fn push(_x: u32) {} }\n\
             fn mod_fn() {}",
        )]);
        let g = CallGraph::build(&u);
        let callees = callee_quals(&g, "top");
        assert!(callees.contains(&"helper".to_string()));
        assert!(callees.contains(&"Window::push".to_string()));
        assert!(callees.contains(&"mod_fn".to_string()));
        assert_eq!(callees.len(), 3, "{callees:?}");
    }

    #[test]
    fn method_calls_resolve_via_param_and_let_types() {
        let u = units(&[(
            "crates/core/src/a.rs",
            "struct Meter; impl Meter { fn read(&self) {} }\n\
             struct Gauge; impl Gauge { fn read(&self) {} }\n\
             fn typed(m: &Meter) { m.read(); }\n\
             fn bound() { let g = Gauge::new(); g.read(); }\n\
             impl Gauge { fn new() -> Gauge { Gauge } }",
        )]);
        let g = CallGraph::build(&u);
        // Param-typed receiver: only Meter::read.
        assert_eq!(callee_quals(&g, "typed"), vec!["Meter::read".to_string()]);
        // Let-bound receiver: only Gauge::read (plus Gauge::new).
        let bound = callee_quals(&g, "bound");
        assert!(bound.contains(&"Gauge::read".to_string()));
        assert!(bound.contains(&"Gauge::new".to_string()));
        assert!(!bound.contains(&"Meter::read".to_string()), "{bound:?}");
    }

    #[test]
    fn unknown_receiver_over_approximates_to_all_methods() {
        let u = units(&[(
            "crates/core/src/a.rs",
            "struct A; impl A { fn go(&self) {} }\n\
             struct B; impl B { fn go(&self) {} }\n\
             fn call() { make().go(); }\n\
             fn make() -> A { A }",
        )]);
        let g = CallGraph::build(&u);
        let callees = callee_quals(&g, "call");
        // `make().go()` has an untyped receiver: both A::go and B::go.
        assert!(callees.contains(&"A::go".to_string()));
        assert!(callees.contains(&"B::go".to_string()));
        assert!(callees.contains(&"make".to_string()));
    }

    #[test]
    fn self_calls_resolve_to_the_impl_target() {
        let u = units(&[(
            "crates/core/src/a.rs",
            "struct S; impl S {\n\
               fn outer(&self) { self.inner(); Self::assoc(); }\n\
               fn inner(&self) {}\n\
               fn assoc() {}\n\
             }",
        )]);
        let g = CallGraph::build(&u);
        let callees = callee_quals(&g, "S::outer");
        assert!(callees.contains(&"S::inner".to_string()));
        assert!(callees.contains(&"S::assoc".to_string()));
        assert_eq!(callees.len(), 2, "{callees:?}");
    }

    #[test]
    fn fn_path_references_count_as_calls() {
        let u = units(&[(
            "crates/core/src/a.rs",
            "struct S; impl S { fn hook(_x: u32) {} }\n\
             fn top(xs: Vec<u32>) { xs.into_iter().for_each(S::hook); }",
        )]);
        let g = CallGraph::build(&u);
        assert!(callee_quals(&g, "top").contains(&"S::hook".to_string()));
    }

    #[test]
    fn test_fns_are_excluded_from_graph_and_bfs() {
        let u = units(&[(
            "crates/core/src/a.rs",
            "fn runtime() { shared(); }\n\
             fn shared() {}\n\
             #[cfg(test)]\nmod tests { fn test_only() { super::shared(); } }",
        )]);
        let g = CallGraph::build(&u);
        assert!(g.resolve_qual("test_only").is_empty());
        let reach = g.bfs(&g.resolve_entry("core", "runtime"));
        let shared = node_id(&g, "shared");
        assert_eq!(reach.dist[shared], Some(1));
    }

    #[test]
    fn bfs_reports_shortest_chains_deterministically() {
        let u = units(&[(
            "crates/net/src/a.rs",
            "fn entry() { mid_a(); mid_b(); }\n\
             fn mid_a() { deep(); }\n\
             fn mid_b() { deep(); }\n\
             fn deep() { leaf(); }\n\
             fn leaf() {}\n\
             fn orphan() { leaf(); }",
        )]);
        let g = CallGraph::build(&u);
        let reach = g.bfs(&g.resolve_entry("net", "entry"));
        let leaf = node_id(&g, "leaf");
        let chain = reach.chain(&g, leaf).unwrap();
        assert_eq!(chain.first().map(String::as_str), Some("entry"));
        assert_eq!(chain.last().map(String::as_str), Some("leaf"));
        assert_eq!(chain.len(), 4, "{chain:?}");
        // The shortest path goes through mid_a (smallest node id wins
        // the tie), and a second run is identical.
        assert_eq!(chain[1], "mid_a");
        let again = g.bfs(&g.resolve_entry("net", "entry"));
        assert_eq!(again.chain(&g, leaf).unwrap(), chain);
        // orphan is not reachable from entry.
        let orphan = node_id(&g, "orphan");
        assert_eq!(reach.dist[orphan], None);
        assert!(reach.chain(&g, orphan).is_none());
    }

    #[test]
    fn cross_file_and_cross_crate_free_calls_link() {
        let u = units(&[
            (
                "crates/net/src/collector.rs",
                "fn run_collector() { snapshot_stats(); }",
            ),
            ("crates/core/src/monitor.rs", "pub fn snapshot_stats() {}"),
        ]);
        let g = CallGraph::build(&u);
        let reach = g.bfs(&g.resolve_entry("net", "run_collector"));
        let target = node_id(&g, "snapshot_stats");
        assert_eq!(reach.dist[target], Some(1));
    }

    #[test]
    fn enclosing_fn_attributes_tokens_to_their_item_level_fn() {
        // Nested fns are not item-level: their tokens (and call sites)
        // attribute to the enclosing item fn, which over-approximates
        // reachability in the sound direction.
        let toks = lex("fn outer() { fn inner() { mark(); } inner(); }\nfn other() {}");
        let parsed = parse(&toks);
        let mark = toks.iter().position(|t| t.is_ident("mark")).unwrap();
        let idx = enclosing_fn(&parsed, mark).unwrap();
        assert_eq!(parsed.fns[idx].name, "outer");
        assert!(enclosing_fn(&parsed, toks.len() - 1).is_some());
    }
}
