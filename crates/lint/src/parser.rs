//! A hand-rolled recursive-descent parser over the [`crate::lexer`]
//! token stream — the item-level structure the v2 interprocedural
//! analyses need, and nothing more.
//!
//! The grammar covered is the *item* grammar: functions (name, params
//! with their type text, body token range), `impl` blocks (target type,
//! methods qualified as `Type::method`), structs and enums (field /
//! variant order — what the wire-schema drift check compares against
//! the binary codec), `const`/`static` items (the codec's `TAG_*`
//! ledger), inline modules, and attributes (`#[cfg(test)]` / `#[test]`
//! scoping, derive lists). Expression grammar is deliberately *not*
//! parsed: the analyses that walk function bodies (call extraction,
//! panic sites, nondet sources) work on the body's token range
//! directly, which is robust against every expression form rustc will
//! ever add.
//!
//! Like the lexer, the parser never fails: source that already compiles
//! parses cleanly, and hostile fixture input degrades to fewer items,
//! not errors.

use crate::lexer::{Tok, TokKind};

/// One function parameter: the pattern's binding name (best effort) and
/// its type rendered as normalized token text (e.g. `& AppStats`,
/// `Option < & WireSample >`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name; `self` for receivers, `_` when the pattern has no
    /// single name.
    pub name: String,
    /// Normalized type text (tokens joined by single spaces); empty for
    /// bare receivers (`self`, `&mut self`).
    pub ty: String,
}

/// A parsed function (free or associated).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`ingest`).
    pub name: String,
    /// Qualified name: `Type::name` for associated fns (impl or trait
    /// body), bare `name` for free fns.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Token index range `[open_brace, close_brace]` of the body in the
    /// file's token stream; `None` for bodiless trait signatures.
    pub body: Option<(usize, usize)>,
    /// True when the fn is test-only: `#[test]`, `#[cfg(test)]`, or
    /// inside a `#[cfg(test)]` module.
    pub is_test: bool,
}

/// Struct vs enum — the drift check needs fields for one, variants for
/// the other, in declaration order either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct` with named fields (tuple/unit structs parse with an
    /// empty field list).
    Struct,
    /// `enum`; `fields` holds the variant names.
    Enum,
}

/// One named field (or enum variant) with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field or variant name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
}

/// A parsed struct or enum.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Struct or enum.
    pub kind: TypeKind,
    /// Named fields (struct) or variants (enum), in declaration order.
    pub fields: Vec<FieldDef>,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: u32,
    /// Idents appearing inside `#[derive(...)]` attributes on this type.
    pub derives: Vec<String>,
    /// True when declared under `#[cfg(test)]`.
    pub is_test: bool,
}

/// A `const`/`static` item, with its value kept as normalized token
/// text (the drift check reads the codec's `TAG_*` values from these).
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Item name.
    pub name: String,
    /// Normalized value text (tokens joined by spaces), e.g. `7`.
    pub value: String,
    /// 1-based line.
    pub line: u32,
    /// True when declared under `#[cfg(test)]`.
    pub is_test: bool,
}

/// Everything the parser extracts from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Functions (free and associated), in source order.
    pub fns: Vec<FnDef>,
    /// Structs and enums, in source order.
    pub types: Vec<TypeDef>,
    /// Consts and statics, in source order.
    pub consts: Vec<ConstDef>,
}

impl ParsedFile {
    /// The function whose body token range contains `tok_idx`, if any.
    /// Nested scopes resolve to the innermost (last-starting) match.
    pub fn fn_at(&self, tok_idx: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| {
                f.body
                    .is_some_and(|(open, close)| open <= tok_idx && tok_idx <= close)
            })
            .max_by_key(|f| f.body.map(|(open, _)| open))
    }

    /// Look up a struct/enum by name.
    pub fn type_named(&self, name: &str) -> Option<&TypeDef> {
        self.types.iter().find(|t| t.name == name)
    }
}

/// For each `{` token index, the index of its matching `}` (best effort
/// on unbalanced input).
pub fn brace_matches(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                out[open] = Some(i);
            }
        }
    }
    out
}

/// Parser state threaded through the recursive descent.
struct Parser<'a> {
    toks: &'a [Tok],
    matches: Vec<Option<usize>>,
    out: ParsedFile,
}

/// Attribute facts gathered ahead of an item.
#[derive(Debug, Clone, Default)]
struct Attrs {
    /// `#[test]` or `#[cfg(test)]` (any attribute containing the ident
    /// `test` — the same over-approximation the v1 mask used).
    has_test: bool,
    /// Idents inside `#[derive(...)]`.
    derives: Vec<String>,
}

/// Parse one file's token stream into its item tree.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let matches = brace_matches(toks);
    let mut p = Parser {
        toks,
        matches,
        out: ParsedFile::default(),
    };
    let end = toks.len();
    p.items(0, end, false, None);
    p.out
}

impl Parser<'_> {
    /// Parse items in `[from, to)`. `in_test` marks a `#[cfg(test)]`
    /// scope; `impl_target` qualifies fns inside an impl/trait body.
    fn items(&mut self, from: usize, to: usize, in_test: bool, impl_target: Option<&str>) {
        let mut i = from;
        let mut attrs = Attrs::default();
        while i < to {
            let t = &self.toks[i];
            // Attribute: scan to the matching `]`, note test/derive.
            if t.is_punct("#") {
                // `#![...]` inner attributes apply to the enclosing
                // scope; treat like outer ones for test detection.
                let mut j = i + 1;
                if j < to && self.toks[j].is_punct("!") {
                    j += 1;
                }
                if j < to && self.toks[j].is_punct("[") {
                    let (facts, after) = self.scan_attr(j, to);
                    attrs.has_test |= facts.has_test;
                    attrs.derives.extend(facts.derives);
                    i = after;
                    continue;
                }
                i += 1;
                continue;
            }
            if t.kind != TokKind::Ident {
                // Stray punctuation at item level (e.g. the `;` after a
                // unit struct) — skip without clearing attrs? Attrs
                // cling to the next item keyword; `;` ends the item.
                if t.is_punct(";") {
                    attrs = Attrs::default();
                } else if t.is_punct("{") {
                    // An unexpected brace at item level: skip the block.
                    i = self.close_of(i, to);
                    continue;
                }
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    // Visibility, possibly `pub(crate)` / `pub(in ...)`.
                    i += 1;
                    if i < to && self.toks[i].is_punct("(") {
                        i = self.skip_parens(i, to);
                    }
                }
                "fn" => {
                    let test = in_test || attrs.has_test;
                    i = self.parse_fn(i, to, test, impl_target);
                    attrs = Attrs::default();
                }
                "struct" | "enum" => {
                    let kind = if t.text == "struct" {
                        TypeKind::Struct
                    } else {
                        TypeKind::Enum
                    };
                    let test = in_test || attrs.has_test;
                    i = self.parse_type(i, to, kind, test, std::mem::take(&mut attrs).derives);
                }
                "union" => {
                    // Parse like a struct (fields in order).
                    let test = in_test || attrs.has_test;
                    i = self.parse_type(i, to, TypeKind::Struct, test, Vec::new());
                    attrs = Attrs::default();
                }
                "impl" | "trait" => {
                    let test = in_test || attrs.has_test;
                    i = self.parse_impl(i, to, test);
                    attrs = Attrs::default();
                }
                "mod" => {
                    let test = in_test || attrs.has_test;
                    // `mod name { items }` or `mod name;`.
                    let mut j = i + 1;
                    while j < to && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
                        j += 1;
                    }
                    if j < to && self.toks[j].is_punct("{") {
                        let close = self.close_of_idx(j, to);
                        self.items(j + 1, close, test, None);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                    attrs = Attrs::default();
                }
                "const" | "static" => {
                    let test = in_test || attrs.has_test;
                    i = self.parse_const(i, to, test);
                    attrs = Attrs::default();
                }
                "unsafe" | "async" | "extern" | "default" => {
                    // Qualifiers before fn/impl/trait; `extern "C"` may
                    // carry a string literal.
                    i += 1;
                    if i < to && self.toks[i].kind == TokKind::Str {
                        i += 1;
                    }
                }
                "use" | "type" => {
                    // Skip to the terminating `;` (braced use-trees have
                    // no item-level `{` that would confuse close_of
                    // because we skip balanced groups).
                    i = self.skip_to_semi(i, to);
                    attrs = Attrs::default();
                }
                "macro_rules" => {
                    // `macro_rules! name { ... }`.
                    let mut j = i + 1;
                    while j < to && !self.toks[j].is_punct("{") {
                        j += 1;
                    }
                    i = if j < to { self.close_of(j, to) } else { to };
                    attrs = Attrs::default();
                }
                _ => {
                    // Macro invocation at item level (`ident! { .. }` /
                    // `ident!(..);`) or something we don't model — skip
                    // conservatively to the next `;` or balanced block.
                    i = self.skip_to_semi(i, to);
                    attrs = Attrs::default();
                }
            }
        }
    }

    /// Scan an attribute starting at its `[` token; return the facts and
    /// the index just past the closing `]`.
    fn scan_attr(&self, open: usize, to: usize) -> (Attrs, usize) {
        let mut depth = 0usize;
        let mut j = open;
        let mut facts = Attrs::default();
        let mut in_derive = false;
        while j < to {
            let a = &self.toks[j];
            if a.is_punct("[") || a.is_punct("(") {
                depth += 1;
            } else if a.is_punct("]") || a.is_punct(")") {
                depth = depth.saturating_sub(1);
                if depth == 0 && a.is_punct("]") {
                    return (facts, j + 1);
                }
                if a.is_punct(")") {
                    in_derive = false;
                }
            } else if a.is_ident("test") {
                facts.has_test = true;
            } else if a.is_ident("derive") {
                in_derive = true;
            } else if in_derive && a.kind == TokKind::Ident {
                facts.derives.push(a.text.clone());
            }
            j += 1;
        }
        (facts, to)
    }

    /// Index just past the block opened by the `{` at or after `at`.
    fn close_of(&self, open: usize, to: usize) -> usize {
        self.close_of_idx(open, to) + 1
    }

    /// Index of the `}` matching the `{` at `open` (or `to - 1`).
    fn close_of_idx(&self, open: usize, to: usize) -> usize {
        match self.matches.get(open).copied().flatten() {
            Some(close) if close < to => close,
            _ => to.saturating_sub(1),
        }
    }

    /// Skip past a balanced `( .. )` group starting at `open`.
    fn skip_parens(&self, open: usize, to: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < to {
            if self.toks[j].is_punct("(") {
                depth += 1;
            } else if self.toks[j].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        to
    }

    /// Skip to just past the next item-terminating `;` at group depth 0,
    /// or past a balanced `{ .. }` block if one opens first (macro
    /// invocations with brace bodies need no `;`).
    fn skip_to_semi(&self, from: usize, to: usize) -> usize {
        let mut j = from;
        let mut depth = 0i32;
        while j < to {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                return self.close_of(j, to);
            } else if t.is_punct(";") && depth == 0 {
                return j + 1;
            }
            j += 1;
        }
        to
    }

    /// Parse `fn name <generics>? ( params ) -> ret? where..? { body }`
    /// starting at the `fn` token; returns the index just past the item.
    fn parse_fn(&mut self, at: usize, to: usize, is_test: bool, impl_target: Option<&str>) -> usize {
        let line = self.toks[at].line;
        let mut j = at + 1;
        let Some(name_tok) = self.toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            return j;
        };
        let name = name_tok.text.clone();
        j += 1;
        // Generics: skip a balanced `< .. >` run.
        if j < to && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, to);
        }
        // Params.
        let mut params = Vec::new();
        if j < to && self.toks[j].is_punct("(") {
            let close = self.skip_parens(j, to);
            params = self.parse_params(j + 1, close.saturating_sub(1));
            j = close;
        }
        // Return type / where clause: scan to the body `{` or `;` at
        // group depth 0 (angle depth tracked so `Result<T, {..}>` never
        // arises; const generics in return types are rare enough).
        let mut depth = 0i32;
        let mut body = None;
        while j < to {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                let close = self.close_of_idx(j, to);
                body = Some((j, close));
                j = close + 1;
                break;
            } else if t.is_punct(";") && depth == 0 {
                j += 1;
                break;
            }
            j += 1;
        }
        let qual = match impl_target {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        self.out.fns.push(FnDef {
            name,
            qual,
            line,
            params,
            body,
            is_test,
        });
        j
    }

    /// Skip a balanced angle-bracket run starting at `<`. `<<`/`>>`
    /// arrive merged from the lexer and count double.
    fn skip_angles(&self, from: usize, to: usize) -> usize {
        let mut depth = 0i32;
        let mut j = from;
        while j < to {
            match self.toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "->" | "=>" => {}
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                return j;
            }
        }
        to
    }

    /// Parse a parameter list's tokens (exclusive of the parens) into
    /// [`Param`]s: split on top-level commas; each item is
    /// `pattern : type` (receivers have no `:`).
    fn parse_params(&self, from: usize, to: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let mut start = from;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut j = from;
        let flush = |lo: usize, hi: usize, params: &mut Vec<Param>, toks: &[Tok]| {
            if lo >= hi {
                return;
            }
            // Find the top-level `:` (not `::`).
            let mut d = 0i32;
            let mut a = 0i32;
            let mut colon = None;
            for k in lo..hi {
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") {
                    d += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    d -= 1;
                } else if t.is_punct("<") {
                    a += 1;
                } else if t.is_punct(">") {
                    a -= 1;
                } else if t.is_punct(":") && d == 0 && a <= 0 {
                    colon = Some(k);
                    break;
                }
            }
            match colon {
                Some(c) => {
                    // Pattern name: last ident before the colon (covers
                    // `mut x`, plain `x`; tuple patterns get `_`).
                    let name = toks[lo..c]
                        .iter()
                        .rev()
                        .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                        .map(|t| t.text.clone())
                        .unwrap_or_else(|| "_".to_string());
                    let ty = toks[c + 1..hi]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    params.push(Param { name, ty });
                }
                None => {
                    // Receiver (`self`, `&self`, `&mut self`, `mut self`).
                    if toks[lo..hi].iter().any(|t| t.is_ident("self")) {
                        params.push(Param {
                            name: "self".to_string(),
                            ty: String::new(),
                        });
                    }
                }
            }
        };
        while j < to {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct(",") && depth == 0 && angle <= 0 {
                flush(start, j, &mut params, self.toks);
                start = j + 1;
            }
            j += 1;
        }
        flush(start, to, &mut params, self.toks);
        params
    }

    /// Parse `struct`/`enum` starting at the keyword token.
    fn parse_type(
        &mut self,
        at: usize,
        to: usize,
        kind: TypeKind,
        is_test: bool,
        derives: Vec<String>,
    ) -> usize {
        let line = self.toks[at].line;
        let Some(name_tok) = self.toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let mut j = at + 2;
        if j < to && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, to);
        }
        // Tuple struct `( .. )` or where clause before the body.
        let mut fields = Vec::new();
        let mut end = j;
        loop {
            if end >= to {
                break;
            }
            let t = &self.toks[end];
            if t.is_punct(";") {
                end += 1;
                break;
            }
            if t.is_punct("(") {
                end = self.skip_parens(end, to);
                continue;
            }
            if t.is_punct("{") {
                let close = self.close_of_idx(end, to);
                fields = self.parse_fields(end + 1, close, kind);
                end = close + 1;
                break;
            }
            end += 1;
        }
        self.out.types.push(TypeDef {
            name,
            kind,
            fields,
            line,
            derives,
            is_test,
        });
        end
    }

    /// Parse the braced body of a struct (named fields) or enum
    /// (variants): names at group depth 0, each the ident immediately
    /// preceding a `:` (struct) or at a comma/attribute boundary (enum).
    fn parse_fields(&self, from: usize, to: usize, kind: TypeKind) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        let mut j = from;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut expect_name = true;
        while j < to {
            let t = &self.toks[j];
            if t.is_punct("#") && j + 1 < to && self.toks[j + 1].is_punct("[") {
                let (_, after) = self.scan_attr(j + 1, to);
                j = after;
                continue;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct(",") && depth == 0 && angle <= 0 {
                expect_name = true;
                j += 1;
                continue;
            }
            if depth == 0 && angle <= 0 && expect_name && t.kind == TokKind::Ident {
                match kind {
                    TypeKind::Struct => {
                        if t.text == "pub" {
                            // Visibility; possibly pub(crate).
                            j += 1;
                            if j < to && self.toks[j].is_punct("(") {
                                j = self.skip_parens(j, to);
                            }
                            continue;
                        }
                        // Named field iff followed by `:`.
                        if j + 1 < to && self.toks[j + 1].is_punct(":") {
                            fields.push(FieldDef {
                                name: t.text.clone(),
                                line: t.line,
                            });
                            expect_name = false;
                        }
                    }
                    TypeKind::Enum => {
                        fields.push(FieldDef {
                            name: t.text.clone(),
                            line: t.line,
                        });
                        expect_name = false;
                    }
                }
            }
            j += 1;
        }
        fields
    }

    /// Parse `impl .. { items }` / `trait Name { items }` starting at the
    /// keyword; recurses into the body with the target type as qualifier.
    fn parse_impl(&mut self, at: usize, to: usize, is_test: bool) -> usize {
        // Collect the target: the last type ident at angle-depth 0
        // before the body brace; `for` resets it (trait impls qualify by
        // the implementing type, not the trait).
        let mut angle = 0i32;
        let mut target: Option<String> = None;
        let mut j = at + 1;
        while j < to {
            let t = &self.toks[j];
            if t.is_punct("{") && angle <= 0 {
                break;
            }
            if t.is_punct(";") {
                return j + 1;
            }
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "for" if t.kind == TokKind::Ident && angle <= 0 => target = None,
                "where" if t.kind == TokKind::Ident && angle <= 0 => {
                    // Skip the where clause to the body brace.
                    while j < to && !self.toks[j].is_punct("{") {
                        j += 1;
                    }
                    break;
                }
                _ => {
                    if t.kind == TokKind::Ident && angle <= 0 && t.text != "dyn" && t.text != "impl"
                    {
                        target = Some(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        if j >= to || !self.toks[j].is_punct("{") {
            return j;
        }
        let close = self.close_of_idx(j, to);
        let target = target.unwrap_or_else(|| "?".to_string());
        self.items(j + 1, close, is_test, Some(&target));
        close + 1
    }

    /// Parse `const NAME: Ty = value;` / `static NAME: Ty = value;`.
    fn parse_const(&mut self, at: usize, to: usize, is_test: bool) -> usize {
        let line = self.toks[at].line;
        let mut j = at + 1;
        // `const fn` is a function, not a const item.
        if j < to && self.toks[j].is_ident("fn") {
            return j;
        }
        if j < to && self.toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(name_tok) = self.toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            return j;
        };
        let name = name_tok.text.clone();
        // Find `=` then the value up to the terminating `;` at depth 0.
        let mut depth = 0i32;
        let mut eq = None;
        let mut k = j + 1;
        while k < to {
            let t = &self.toks[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct("=") && depth == 0 {
                eq = Some(k);
            } else if t.is_punct(";") && depth == 0 {
                let value = match eq {
                    Some(e) => self.toks[e + 1..k]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" "),
                    None => String::new(),
                };
                self.out.consts.push(ConstDef {
                    name,
                    value,
                    line,
                    is_test,
                });
                return k + 1;
            }
            k += 1;
        }
        to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_and_associated_fns_are_qualified() {
        let p = parse_src(
            "pub fn free(a: u32) -> u32 { a }\n\
             struct S;\n\
             impl S { pub fn method(&self, b: &str) {} }\n\
             impl Display for S { fn fmt(&self) {} }",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["free", "S::method", "S::fmt"]);
        assert_eq!(p.fns[0].params, vec![Param { name: "a".into(), ty: "u32".into() }]);
        assert_eq!(p.fns[1].params[0].name, "self");
        assert_eq!(p.fns[1].params[1].ty, "& str");
    }

    #[test]
    fn struct_fields_keep_declaration_order() {
        let p = parse_src(
            "pub struct WireSample {\n\
               pub seq: u64,\n\
               pub t_s: f64,\n\
               #[serde(default)]\n\
               pub app: Option<AppStats>,\n\
             }",
        );
        let t = p.type_named("WireSample").unwrap();
        let names: Vec<&str> = t.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["seq", "t_s", "app"]);
        assert_eq!(t.kind, TypeKind::Struct);
    }

    #[test]
    fn enum_variants_parse_with_payloads_skipped() {
        let p = parse_src(
            "pub enum Frame {\n\
               Hello { tier: TierId, caps: WireCaps },\n\
               Sample(WireSample),\n\
               Bye { last_seq: u64 },\n\
             }",
        );
        let t = p.type_named("Frame").unwrap();
        let names: Vec<&str> = t.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["Hello", "Sample", "Bye"]);
        assert_eq!(t.kind, TypeKind::Enum);
    }

    #[test]
    fn derives_are_collected() {
        let p = parse_src("#[derive(Debug, Serialize, Deserialize)]\nstruct W { x: u32 }");
        assert_eq!(
            p.type_named("W").unwrap().derives,
            vec!["Debug", "Serialize", "Deserialize"]
        );
    }

    #[test]
    fn cfg_test_scoping_marks_fns_and_nested_mods() {
        let p = parse_src(
            "fn runtime() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
               fn helper() {}\n\
               #[test]\n\
               fn case() {}\n\
             }\n\
             #[test]\nfn top_level_case() {}",
        );
        let tests: Vec<(&str, bool)> = p.fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(
            tests,
            vec![
                ("runtime", false),
                ("helper", true),
                ("case", true),
                ("top_level_case", true)
            ]
        );
    }

    #[test]
    fn consts_capture_values() {
        let p = parse_src("const TAG_HELLO: u8 = 0;\npub const TAG_DIGEST: u8 = 7;\nstatic N: usize = 3;");
        let vals: Vec<(&str, &str)> = p
            .consts
            .iter()
            .map(|c| (c.name.as_str(), c.value.as_str()))
            .collect();
        assert_eq!(
            vals,
            vec![("TAG_HELLO", "0"), ("TAG_DIGEST", "7"), ("N", "3")]
        );
    }

    #[test]
    fn fn_bodies_cover_their_token_ranges() {
        let src = "fn a() { inner(); }\nfn b() {}";
        let toks = lex(src);
        let p = parse(&toks);
        let a = &p.fns[0];
        let (open, close) = a.body.unwrap();
        assert!(toks[open].is_punct("{") && toks[close].is_punct("}"));
        let idx_inner = toks.iter().position(|t| t.is_ident("inner")).unwrap();
        assert_eq!(p.fn_at(idx_inner).unwrap().name, "a");
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn generics_where_clauses_and_lifetimes_do_not_derail() {
        let p = parse_src(
            "impl<'a, T: Clone> Holder<'a, T> where T: Send {\n\
               fn get<const N: usize>(&self, arr: &[T; N]) -> Option<&T> { arr.first() }\n\
             }",
        );
        assert_eq!(p.fns[0].qual, "Holder::get");
        assert_eq!(p.fns[0].params[1].name, "arr");
    }

    #[test]
    fn trait_signatures_without_bodies_parse() {
        let p = parse_src("trait Source { fn next(&mut self) -> Option<u32>; fn reset(&mut self) {} }");
        assert_eq!(p.fns[0].qual, "Source::next");
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn tuple_and_unit_structs_parse_with_empty_fields() {
        let p = parse_src("struct Unit;\nstruct Tuple(u32, String);\nstruct After { x: u32 }");
        assert!(p.type_named("Unit").unwrap().fields.is_empty());
        assert!(p.type_named("Tuple").unwrap().fields.is_empty());
        assert_eq!(p.type_named("After").unwrap().fields.len(), 1);
    }
}
