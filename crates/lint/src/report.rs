//! Deterministic rendering of lint reports.
//!
//! Two formats: `human` (one line per finding, grep-friendly, with the
//! call chain indented under interprocedural findings) and `json`
//! (hand-rolled emission — the crate is dependency-free — with stable
//! key order and findings pre-sorted, so identical inputs produce
//! byte-identical reports suitable for CI artifact diffing).

use crate::{Finding, Report};

/// Render the report as stable, pretty-printed JSON.
pub fn to_json(report: &Report) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"new_findings\": {},\n",
        report.new_findings.len()
    ));
    out.push_str(&format!(
        "  \"baselined_findings\": {},\n",
        report.baselined_findings.len()
    ));
    out.push_str(&format!(
        "  \"stale_baseline_entries\": {},\n",
        report.stale_baseline.len()
    ));
    out.push_str("  \"findings\": [");
    let all: Vec<(&Finding, bool)> = report
        .new_findings
        .iter()
        .map(|f| (f, false))
        .chain(report.baselined_findings.iter().map(|f| (f, true)))
        .collect();
    for (i, (f, baselined)) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        out.push_str(&format!(
            "\"severity\": {}, ",
            json_str(f.severity.as_str())
        ));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"fingerprint\": {}, ", json_str(&f.fingerprint)));
        out.push_str(&format!("\"baselined\": {}, ", baselined));
        out.push_str("\"chain\": [");
        for (j, hop) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(hop));
        }
        out.push_str("], ");
        out.push_str(&format!("\"note\": {}", json_str(&f.note)));
        out.push('}');
    }
    if all.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"stale_baseline\": [");
    for (i, e) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(&e.rule)));
        out.push_str(&format!("\"file\": {}, ", json_str(&e.file)));
        out.push_str(&format!("\"fingerprint\": {}, ", json_str(&e.fingerprint)));
        out.push_str(&format!("\"line\": {}", e.line));
        out.push('}');
    }
    if report.stale_baseline.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

fn push_finding(out: &mut String, f: &Finding, label: &str) {
    out.push_str(&format!(
        "{}:{}: [{}] {} — {}\n",
        f.file, f.line, label, f.rule, f.note
    ));
    if !f.chain.is_empty() {
        out.push_str(&format!("    chain: {}\n", f.chain.join(" -> ")));
    }
}

/// Render the report as grep-friendly text, one `file:line: rule` line
/// per finding (call chain indented beneath it) plus a summary tail.
pub fn to_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.new_findings {
        push_finding(&mut out, f, f.severity.as_str());
    }
    for f in &report.baselined_findings {
        push_finding(&mut out, f, "baselined");
    }
    for e in &report.stale_baseline {
        let id = if e.fingerprint.is_empty() {
            format!("{}", e.line)
        } else {
            e.fingerprint.clone()
        };
        out.push_str(&format!(
            "{}:{}: [stale-baseline] {} — entry no longer matches any finding; delete it\n",
            e.file, id, e.rule
        ));
    }
    out.push_str(&format!(
        "webcap lint: {} file(s) scanned, {} new finding(s), {} baselined, {} stale baseline entr{}\n",
        report.files_scanned,
        report.new_findings.len(),
        report.baselined_findings.len(),
        report.stale_baseline.len(),
        if report.stale_baseline.len() == 1 { "y" } else { "ies" },
    ));
    out
}

/// JSON-escape a string (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEntry;
    use crate::Severity;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            note: "note \"with quotes\"".to_string(),
            fingerprint: "deadbeef00112233".to_string(),
            chain: vec!["run_collector".to_string(), "helper".to_string()],
        }
    }

    fn report() -> Report {
        Report {
            files_scanned: 3,
            new_findings: vec![finding("panic-reachability", "crates/net/src/a.rs", 7)],
            baselined_findings: vec![finding("nondet-time", "crates/bench/src/h.rs", 196)],
            stale_baseline: vec![BaselineEntry {
                rule: "panic-unwrap".to_string(),
                file: "crates/core/src/old.rs".to_string(),
                fingerprint: "0011223344556677".to_string(),
                line: 0,
                note: "gone".to_string(),
            }],
        }
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let r = report();
        let a = to_json(&r);
        let b = to_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"new_findings\": 1"));
        assert!(a.contains("\\\"with quotes\\\""));
        assert!(a.contains("\"baselined\": true"));
        assert!(a.contains("\"baselined\": false"));
        assert!(a.contains("\"fingerprint\": \"deadbeef00112233\""));
        assert!(a.contains("\"chain\": [\"run_collector\", \"helper\"]"));
        assert!(a.contains("\"stale_baseline\""));
    }

    #[test]
    fn empty_report_renders_valid_json_shape() {
        let r = Report {
            files_scanned: 0,
            new_findings: vec![],
            baselined_findings: vec![],
            stale_baseline: vec![],
        };
        let j = to_json(&r);
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"stale_baseline\": []"));
    }

    #[test]
    fn human_output_lists_each_category_and_chains() {
        let h = to_human(&report());
        assert!(h.contains("crates/net/src/a.rs:7: [error] panic-reachability"));
        assert!(h.contains("    chain: run_collector -> helper"));
        assert!(h.contains("[baselined] nondet-time"));
        assert!(h.contains("[stale-baseline] panic-unwrap"));
        assert!(h.contains("1 new finding(s), 1 baselined, 1 stale"));
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
    }
}
