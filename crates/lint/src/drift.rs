//! Wire-schema drift: cross-check the hand-rolled WCB3 binary codec
//! (`net/src/binary.rs`) against the struct declarations it serializes
//! and the `Frame` enum's tag space.
//!
//! The codec is the one place where struct layout is spelled out twice:
//! once in the declaration (`frame.rs`, plus `TierSample` and friends
//! in `core`) and once in the encode/decode bodies. The WCB3 proptests
//! catch a divergence *if* the generator happens to exercise it; this
//! analysis catches it structurally, before a test has to:
//!
//! - **encode order** — every `put_*` function that takes a known wire
//!   struct must touch each of its fields, in declaration order (first
//!   touch counts);
//! - **decode order** — every struct literal of a known wire struct
//!   built in the codec file must list fields in declaration order, and
//!   completely unless it uses `..`;
//! - **tag bijection** — `TAG_*` constants must correspond one-to-one
//!   with `Frame` variants (by name, `TAG_SAMPLE_BATCH` ⇄
//!   `SampleBatch`), with unique values, and both `encode_frame` and
//!   `decode_frame` must mention every tag (a one-sided match arm is
//!   exactly how a silent dialect fork starts).
//!
//! "Known wire struct" means: declared (non-test) in any scanned unit
//! *outside* the codec file itself — codec-internal helpers like the
//! decode cursor are exempt. Fixture trees supply their own
//! `frame.rs`/`binary.rs` pair; when either file is absent the analysis
//! is silent.

use crate::callgraph::SourceUnit;
use crate::lexer::TokKind;
use crate::parser::{TypeDef, TypeKind};
use crate::rules::{CODEC_FILE_SUFFIX, PROTOCOL_FILE_SUFFIX};
use crate::{Finding, Severity};

fn finding(file: &str, line: u32, note: String) -> Finding {
    Finding {
        rule: "wire-drift",
        severity: Severity::Error,
        file: file.to_string(),
        line,
        note,
        fingerprint: String::new(),
        chain: Vec::new(),
    }
}

/// `TAG_SAMPLE_BATCH` → `SampleBatch`.
fn variant_of_tag(tag_const: &str) -> String {
    let mut out = String::new();
    for part in tag_const.trim_start_matches("TAG_").split('_') {
        let mut chars = part.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.extend(chars.flat_map(|c| c.to_lowercase()));
        }
    }
    out
}

/// Run the drift analysis over the unit set.
pub fn wire_drift(units: &[SourceUnit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(proto) = units
        .iter()
        .find(|u| u.rel_path.ends_with(PROTOCOL_FILE_SUFFIX))
    else {
        return findings;
    };
    let Some(codec) = units
        .iter()
        .find(|u| u.rel_path.ends_with(CODEC_FILE_SUFFIX))
    else {
        return findings;
    };
    // Wire structs: declared anywhere but in the codec file itself.
    let structs: Vec<(&TypeDef, &str)> = units
        .iter()
        .filter(|u| u.rel_path != codec.rel_path)
        .flat_map(|u| {
            u.parsed
                .types
                .iter()
                .filter(|t| !t.is_test && t.kind == TypeKind::Struct && !t.fields.is_empty())
                .map(move |t| (t, u.rel_path.as_str()))
        })
        .collect();
    check_encode_order(codec, &structs, &mut findings);
    check_decode_literals(codec, &structs, &mut findings);
    check_tags(proto, codec, &mut findings);
    findings
}

fn struct_named<'a>(structs: &'a [(&'a TypeDef, &'a str)], name: &str) -> Option<&'a TypeDef> {
    structs.iter().find(|(t, _)| t.name == name).map(|(t, _)| *t)
}

/// Encode side: for each fn whose first non-output parameter's type
/// names a known wire struct, the sequence of distinct `param.field`
/// touches must equal the declared field order.
fn check_encode_order(
    codec: &SourceUnit,
    structs: &[(&TypeDef, &str)],
    findings: &mut Vec<Finding>,
) {
    for f in &codec.parsed.fns {
        if f.is_test || !f.name.starts_with("put_") {
            continue;
        }
        let Some((param, ty)) = f.params.iter().find_map(|p| {
            let t = p
                .ty
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .find_map(|seg| struct_named(structs, seg));
            t.map(|t| (p.name.as_str(), t))
        }) else {
            continue;
        };
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        // First-touch order of `param.field` for declared fields.
        let toks = &codec.toks;
        let mut touched: Vec<&str> = Vec::new();
        let mut i = body_start;
        while i + 2 <= body_end {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == param
                && toks[i + 1].is_punct(".")
                && toks[i + 2].kind == TokKind::Ident
            {
                let field = toks[i + 2].text.as_str();
                if ty.fields.iter().any(|fd| fd.name == field)
                    && !touched.iter().any(|t| *t == field)
                {
                    touched.push(field);
                }
            }
            i += 1;
        }
        if touched.is_empty() {
            // Encoded entirely through accessors (e.g. a histogram's
            // `bucket_counts()`/`len()`): field order is the accessor
            // API's contract, not this codec's.
            continue;
        }
        let declared: Vec<&str> = ty.fields.iter().map(|fd| fd.name.as_str()).collect();
        if touched != declared {
            findings.push(finding(
                &codec.rel_path,
                f.line,
                format!(
                    "`{}` encodes `{}` fields as [{}] but the declaration \
                     orders them [{}]; the WCB3 codec must track field \
                     declarations exactly (PR 8 invariant)",
                    f.name,
                    ty.name,
                    touched.join(", "),
                    declared.join(", "),
                ),
            ));
        }
    }
}

/// Decode side: struct literals of known wire structs in the codec
/// file must list fields in declaration order (fully, unless `..`).
fn check_decode_literals(
    codec: &SourceUnit,
    structs: &[(&TypeDef, &str)],
    findings: &mut Vec<Finding>,
) {
    let toks = &codec.toks;
    let matches = crate::parser::brace_matches(toks);
    for i in 0..toks.len() {
        if codec.exempt[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(ty) = struct_named(structs, &toks[i].text) else {
            continue;
        };
        // A literal is `Name {` — not `Name::`, not a type position.
        if i + 1 >= toks.len() || !toks[i + 1].is_punct("{") {
            continue;
        }
        let open = i + 1;
        let Some(close) = matches[open] else { continue };
        // Collect `field:` entries at depth 1 (an entry starts right
        // after `{` or a depth-1 `,`), plus a trailing `..` rest.
        let mut listed: Vec<&str> = Vec::new();
        let mut has_rest = false;
        let mut depth = 0usize;
        let mut entry_start = true;
        for (j, t) in toks.iter().enumerate().take(close + 1).skip(open) {
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                depth += 1;
                continue;
            }
            if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
                continue;
            }
            if depth != 1 {
                continue;
            }
            if t.is_punct(",") {
                entry_start = true;
                continue;
            }
            if entry_start {
                if t.kind == TokKind::Ident
                    && j + 1 < toks.len()
                    && toks[j + 1].is_punct(":")
                {
                    listed.push(t.text.as_str());
                } else if t.is_punct("..") {
                    has_rest = true;
                }
                entry_start = false;
            }
        }
        if listed.is_empty() && !has_rest {
            continue; // `Name {}` or shorthand-only: nothing to check.
        }
        let declared: Vec<&str> = ty.fields.iter().map(|fd| fd.name.as_str()).collect();
        let ok = if has_rest {
            // In-order subsequence of the declaration.
            let mut di = 0usize;
            listed.iter().all(|f| {
                while di < declared.len() && declared[di] != *f {
                    di += 1;
                }
                if di < declared.len() {
                    di += 1;
                    true
                } else {
                    false
                }
            })
        } else {
            listed == declared
        };
        if !ok {
            findings.push(finding(
                &codec.rel_path,
                toks[i].line,
                format!(
                    "`{}` literal lists fields [{}] but the declaration \
                     orders them [{}]; decode must rebuild structs in \
                     declaration order (PR 8 invariant)",
                    ty.name,
                    listed.join(", "),
                    declared.join(", "),
                ),
            ));
        }
    }
}

/// Tag space: `TAG_*` consts ⇄ `Frame` variants, unique values, and
/// both codec directions mention every tag.
fn check_tags(proto: &SourceUnit, codec: &SourceUnit, findings: &mut Vec<Finding>) {
    let Some(frame) = proto
        .parsed
        .types
        .iter()
        .find(|t| t.name == "Frame" && t.kind == TypeKind::Enum)
    else {
        return;
    };
    let tags: Vec<_> = codec
        .parsed
        .consts
        .iter()
        .filter(|c| !c.is_test && c.name.starts_with("TAG_"))
        .collect();
    for tag in &tags {
        let variant = variant_of_tag(&tag.name);
        if !frame.fields.iter().any(|v| v.name == variant) {
            findings.push(finding(
                &codec.rel_path,
                tag.line,
                format!(
                    "tag `{}` has no matching `Frame::{}` variant; \
                     the WCB3 tag space must mirror the Frame enum \
                     (PR 8 invariant)",
                    tag.name, variant
                ),
            ));
        }
    }
    for v in &frame.fields {
        if !tags.iter().any(|t| variant_of_tag(&t.name) == v.name) {
            findings.push(finding(
                &proto.rel_path,
                v.line,
                format!(
                    "`Frame::{}` has no TAG_* constant in the binary \
                     codec; add one (and handle it in encode_frame and \
                     decode_frame) or the variant cannot cross a WCB3 \
                     session (PR 8 invariant)",
                    v.name
                ),
            ));
        }
    }
    // Unique tag values.
    for (a_idx, a) in tags.iter().enumerate() {
        for b in tags.iter().skip(a_idx + 1) {
            if a.value == b.value {
                findings.push(finding(
                    &codec.rel_path,
                    b.line,
                    format!(
                        "tags `{}` and `{}` share value {}; tag bytes \
                         must be unique (PR 8 invariant)",
                        a.name, b.name, b.value
                    ),
                ));
            }
        }
    }
    // Symmetric handling: both directions must mention every tag.
    for dir in ["encode_frame", "decode_frame"] {
        let Some(f) = codec.parsed.fns.iter().find(|f| f.qual == dir) else {
            findings.push(finding(
                &codec.rel_path,
                1,
                format!("codec file defines no `{dir}`; the WCB3 codec must implement both directions (PR 8 invariant)"),
            ));
            continue;
        };
        let Some((start, end)) = f.body else { continue };
        for tag in &tags {
            let mentioned = codec.toks[start..=end]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == tag.name);
            if !mentioned {
                findings.push(finding(
                    &codec.rel_path,
                    f.line,
                    format!(
                        "`{}` never references `{}`; encode and decode \
                         must cover the same tag set or the dialect \
                         forks silently (PR 8 invariant)",
                        dir, tag.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(srcs: &[(&str, &str)]) -> Vec<(u32, String)> {
        let units: Vec<SourceUnit> = srcs
            .iter()
            .map(|(p, s)| SourceUnit::new(p, s))
            .collect();
        wire_drift(&units)
            .into_iter()
            .map(|f| (f.line, f.note))
            .collect()
    }

    const PROTO_OK: &str = "pub struct WireSample { pub seq: u64, pub t_s: f64 }\n\
                            pub enum Frame { Sample(WireSample), Bye { last_seq: u64 } }";

    #[test]
    fn clean_codec_produces_no_findings() {
        let hits = run(&[
            ("crates/net/src/frame.rs", PROTO_OK),
            (
                "crates/net/src/binary.rs",
                "const TAG_SAMPLE: u8 = 1;\n\
                 const TAG_BYE: u8 = 6;\n\
                 fn put_wire_sample(out: &mut Vec<u8>, cur: &WireSample) {\n\
                   put_u64(out, cur.seq); put_f64(out, cur.t_s);\n\
                 }\n\
                 fn wire_sample() -> WireSample { WireSample { seq: 0, t_s: 0.0 } }\n\
                 pub fn encode_frame(f: &Frame) { match f { Frame::Sample(_) => TAG_SAMPLE, Frame::Bye { .. } => TAG_BYE }; }\n\
                 pub fn decode_frame(tag: u8) { if tag == TAG_SAMPLE {} else if tag == TAG_BYE {} }",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn encode_field_order_swap_is_drift() {
        let hits = run(&[
            ("crates/net/src/frame.rs", PROTO_OK),
            (
                "crates/net/src/binary.rs",
                "const TAG_SAMPLE: u8 = 1;\nconst TAG_BYE: u8 = 6;\n\
                 fn put_wire_sample(out: &mut Vec<u8>, cur: &WireSample) {\n\
                   put_f64(out, cur.t_s); put_u64(out, cur.seq);\n\
                 }\n\
                 pub fn encode_frame(f: &Frame) { let _ = (TAG_SAMPLE, TAG_BYE); }\n\
                 pub fn decode_frame(tag: u8) { let _ = (TAG_SAMPLE, TAG_BYE); }",
            ),
        ]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, 3);
        assert!(hits[0].1.contains("[t_s, seq]"), "{}", hits[0].1);
    }

    #[test]
    fn decode_literal_order_and_missing_tag_are_drift() {
        let hits = run(&[
            (
                "crates/net/src/frame.rs",
                "pub struct WireSample { pub seq: u64, pub t_s: f64 }\n\
                 pub enum Frame { Sample(WireSample), Bye { last_seq: u64 } }",
            ),
            (
                "crates/net/src/binary.rs",
                "const TAG_SAMPLE: u8 = 1;\n\
                 fn wire_sample() -> WireSample { WireSample { t_s: 0.0, seq: 0 } }\n\
                 pub fn encode_frame(f: &Frame) { let _ = TAG_SAMPLE; }\n\
                 pub fn decode_frame(tag: u8) { let _ = TAG_SAMPLE; }",
            ),
        ]);
        // Two findings: the swapped literal, and Frame::Bye without a tag.
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|(l, n)| *l == 2 && n.contains("literal")));
        assert!(hits.iter().any(|(_, n)| n.contains("Frame::Bye")));
    }

    #[test]
    fn one_sided_tag_handling_and_duplicate_values_are_drift() {
        let hits = run(&[
            ("crates/net/src/frame.rs", PROTO_OK),
            (
                "crates/net/src/binary.rs",
                "const TAG_SAMPLE: u8 = 1;\nconst TAG_BYE: u8 = 1;\n\
                 pub fn encode_frame(f: &Frame) { let _ = (TAG_SAMPLE, TAG_BYE); }\n\
                 pub fn decode_frame(tag: u8) { let _ = TAG_SAMPLE; }",
            ),
        ]);
        // Duplicate value + decode_frame missing TAG_BYE.
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|(_, n)| n.contains("share value 1")));
        assert!(hits
            .iter()
            .any(|(_, n)| n.contains("decode_frame") && n.contains("TAG_BYE")));
    }

    #[test]
    fn rest_literals_allow_partial_but_ordered_fields() {
        let hits = run(&[
            (
                "crates/net/src/frame.rs",
                "pub struct WireCaps { pub codec: u8, pub batch: u8, pub depth: u8 }\n\
                 pub enum Frame { Hello { caps: WireCaps } }",
            ),
            (
                "crates/net/src/binary.rs",
                "const TAG_HELLO: u8 = 0;\n\
                 fn caps() -> WireCaps { WireCaps { codec: 1, depth: 2, ..Default::default() } }\n\
                 fn bad() -> WireCaps { WireCaps { depth: 2, codec: 1, ..Default::default() } }\n\
                 pub fn encode_frame(f: &Frame) { let _ = TAG_HELLO; }\n\
                 pub fn decode_frame(tag: u8) { let _ = TAG_HELLO; }",
            ),
        ]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn absent_codec_pair_is_silent() {
        assert!(run(&[("crates/core/src/meter.rs", "pub fn f() {}")]).is_empty());
    }
}
