//! Interprocedural analyses over the call graph: panic-reachability
//! and determinism taint.
//!
//! **Panic-reachability** replaces the v1 line-local `panic-*` rules.
//! Instead of flagging every `.unwrap()` / `x[i]` in a panic-free crate
//! and baselining the ~60 that are "bounded by construction", it walks
//! the conservative call graph from the runtime entry points and
//! reports only the panic sites an entry point can actually reach —
//! with the shortest call chain as evidence. Everything else is proved
//! unreachable by the graph's sound over-approximation and needs no
//! baseline entry at all.
//!
//! **Determinism taint** closes the interprocedural gap in the local
//! `nondet-*` rules: a nondeterministic source (wall clock, ambient
//! entropy, unordered hash iteration, raw env read) buried in a helper
//! crate must not be *callable from* a byte-stable sink — the
//! serializers whose output the golden suites pin byte-for-byte. The
//! analysis BFSes forward from each sink and flags any reachable
//! source, chain attached.
//!
//! Both analyses skip `#[cfg(test)]` code and silently skip entry
//! points / sinks that do not resolve in the unit set (fixture trees
//! rarely define all of them); the workspace self-check test asserts
//! that every registered entry point and sink resolves in the real
//! tree, so a rename cannot quietly disable an analysis.

use crate::callgraph::{enclosing_fn, CallGraph, SourceUnit};
use crate::rules::{
    clock_entropy_sites, env_read_sites, hash_iteration_sites, panic_sites, test_adjacent_path,
    Site, DETERMINISTIC_CRATES, PANIC_FREE_CRATES,
};
use crate::{Finding, Severity};

/// Runtime entry points, as `(crate, fn-spec)`. These are the
/// functions a deployment actually invokes: the agent and collector
/// event loops, the loopback/supervised harness drivers, the fleet
/// merge surface, the capsearch executors, and the chaos mesh.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("net", "run_agent"),
    ("net", "run_collector"),
    ("net", "run_loopback"),
    ("net", "run_loopback_scheduled"),
    ("net", "run_supervised_loopback"),
    ("net", "run_supervised_collector"),
    ("fleet", "run_fleet"),
    ("fleet", "MergeNode::ingest"),
    ("fleet", "MergeNode::ingest_at"),
    ("fleet", "MergeNode::finalize"),
    ("capsearch", "score_probe"),
    ("capsearch", "SimExecutor::measure"),
    ("capsearch", "LoopbackExecutor::measure"),
    ("capsearch", "FleetExecutor::measure"),
    ("chaosnet", "run_net_mesh"),
    ("chaosnet", "merge_stream"),
];

/// Byte-stable sinks, as `(crate, fn-spec)`: serializers whose output
/// the golden/equivalence suites pin byte-for-byte.
pub const SINKS: &[(&str, &str)] = &[
    ("core", "CapacityMeter::to_json"),
    ("capsearch", "CapacityReport::render"),
    ("capsearch", "config_hash"),
    ("capsearch", "Scenario::to_toml"),
    ("fleet", "MergeNode::finalize"),
    ("fleet", "FleetTopology::to_toml"),
];

/// Map `(file_idx, fn_idx)` to its graph node id.
fn node_of(g: &CallGraph, file_idx: usize, fn_idx: usize) -> Option<usize> {
    g.nodes
        .iter()
        .position(|n| n.file_idx == file_idx && n.fn_idx == fn_idx)
}

/// Resolve a `(crate, spec)` list against the graph, deduplicated and
/// sorted for deterministic traversal order.
fn resolve_all(g: &CallGraph, specs: &[(&str, &str)]) -> Vec<usize> {
    let mut ids = Vec::new();
    for (crate_name, spec) in specs {
        ids.extend(g.resolve_entry(crate_name, spec));
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// `(crate, spec)` pairs in `specs` that resolve to no function in the
/// graph — used by the workspace self-check to catch silent renames.
pub fn unresolved(g: &CallGraph, specs: &[(&str, &str)]) -> Vec<(String, String)> {
    specs
        .iter()
        .filter(|(c, s)| g.resolve_entry(c, s).is_empty())
        .map(|(c, s)| (c.to_string(), s.to_string()))
        .collect()
}

fn render_chain(chain: &[String]) -> String {
    chain.join(" -> ")
}

/// Panic-reachability: every panic site in a panic-free crate that an
/// entry point can reach, with its shortest call chain.
pub fn panic_reachability(units: &[SourceUnit], g: &CallGraph) -> Vec<Finding> {
    let entries = resolve_all(g, ENTRY_POINTS);
    let mut findings = Vec::new();
    if entries.is_empty() {
        return findings;
    }
    let reach = g.bfs(&entries);
    for (file_idx, unit) in units.iter().enumerate() {
        if !PANIC_FREE_CRATES.contains(&unit.crate_name.as_str())
            || test_adjacent_path(&unit.rel_path)
        {
            continue;
        }
        for site in panic_sites(unit) {
            let Some(fn_idx) = enclosing_fn(&unit.parsed, site.tok) else {
                // Top-level position (const initializer): evaluated at
                // compile time, so a panic there cannot reach runtime.
                continue;
            };
            if unit.parsed.fns[fn_idx].is_test {
                continue;
            }
            let Some(node) = node_of(g, file_idx, fn_idx) else {
                continue;
            };
            let Some(chain) = reach.chain(g, node) else {
                continue; // Proved unreachable from every entry point.
            };
            findings.push(Finding {
                rule: "panic-reachability",
                severity: Severity::Error,
                file: unit.rel_path.clone(),
                line: site.line,
                note: format!(
                    "{} in `{}` is reachable from entry point `{}` via {} \
                     ({} call{}); runtime paths of panic-free crate `{}` \
                     must fail with typed errors (PR 4 invariant)",
                    site.what,
                    unit.parsed.fns[fn_idx].qual,
                    chain[0],
                    render_chain(&chain),
                    chain.len() - 1,
                    if chain.len() == 2 { "" } else { "s" },
                    unit.crate_name,
                ),
                fingerprint: String::new(),
                chain,
            });
        }
    }
    findings
}

/// True when the enclosing function is a typed env shim (`*_env` by
/// convention: `try_from_env`, `parse_jobs_env`, ...) — the one place
/// raw environment reads are allowed.
fn is_env_shim(name: &str) -> bool {
    name.ends_with("_env")
}

/// Nondeterministic source sites in one unit, for the taint analysis.
/// Clock/entropy and hash-iteration sources are only collected in
/// crates *outside* [`DETERMINISTIC_CRATES`] — inside them the local
/// `nondet-*` rules already flag the same token, and double-reporting
/// would force every finding into the baseline twice. Env reads are
/// collected everywhere (no local rule covers them), minus the typed
/// `*_env` shims.
fn taint_sources(unit: &SourceUnit) -> Vec<Site> {
    let mut sites = Vec::new();
    if !DETERMINISTIC_CRATES.contains(&unit.crate_name.as_str()) {
        sites.extend(clock_entropy_sites(unit));
        sites.extend(hash_iteration_sites(unit));
    }
    for site in env_read_sites(unit) {
        let shim = enclosing_fn(&unit.parsed, site.tok)
            .map(|fi| is_env_shim(&unit.parsed.fns[fi].name))
            .unwrap_or(false);
        if !shim {
            sites.push(site);
        }
    }
    sites.sort_by_key(|s| s.tok);
    sites
}

/// Determinism taint: a byte-stable sink must not be able to call its
/// way to a nondeterministic source. Reported at the source site with
/// the chain sink → ... → source.
pub fn determinism_taint(units: &[SourceUnit], g: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Pre-compute per-unit sources once (most units have none).
    let sources: Vec<Vec<Site>> = units
        .iter()
        .map(|u| {
            if test_adjacent_path(&u.rel_path) {
                Vec::new()
            } else {
                taint_sources(u)
            }
        })
        .collect();
    if sources.iter().all(Vec::is_empty) {
        return findings;
    }
    for (crate_name, spec) in SINKS {
        let sink_ids = g.resolve_entry(crate_name, spec);
        if sink_ids.is_empty() {
            continue;
        }
        let reach = g.bfs(&sink_ids);
        for (file_idx, unit) in units.iter().enumerate() {
            for site in &sources[file_idx] {
                let Some(fn_idx) = enclosing_fn(&unit.parsed, site.tok) else {
                    continue;
                };
                if unit.parsed.fns[fn_idx].is_test {
                    continue;
                }
                let Some(node) = node_of(g, file_idx, fn_idx) else {
                    continue;
                };
                let Some(chain) = reach.chain(g, node) else {
                    continue;
                };
                findings.push(Finding {
                    rule: "determinism-taint",
                    severity: Severity::Error,
                    file: unit.rel_path.clone(),
                    line: site.line,
                    note: format!(
                        "{} in `{}` can influence byte-stable sink \
                         `{}::{}` via {}; pinned outputs must be pure \
                         functions of their inputs (PR 1/5 invariant)",
                        site.what,
                        unit.parsed.fns[fn_idx].qual,
                        crate_name,
                        spec,
                        render_chain(&chain),
                    ),
                    fingerprint: String::new(),
                    chain,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(srcs: &[(&str, &str)]) -> Vec<SourceUnit> {
        srcs.iter().map(|(p, s)| SourceUnit::new(p, s)).collect()
    }

    fn panic_hits(srcs: &[(&str, &str)]) -> Vec<(String, u32, Vec<String>)> {
        let us = units(srcs);
        let g = CallGraph::build(&us);
        panic_reachability(&us, &g)
            .into_iter()
            .map(|f| (f.file, f.line, f.chain))
            .collect()
    }

    fn taint_hits(srcs: &[(&str, &str)]) -> Vec<(String, u32, Vec<String>)> {
        let us = units(srcs);
        let g = CallGraph::build(&us);
        determinism_taint(&us, &g)
            .into_iter()
            .map(|f| (f.file, f.line, f.chain))
            .collect()
    }

    #[test]
    fn reachable_panic_reports_shortest_chain() {
        let hits = panic_hits(&[
            (
                "crates/net/src/collector.rs",
                "pub fn run_collector() { step(); }\n\
                 fn step() { decode(); }\n\
                 fn decode() { let v: Vec<u32> = Vec::new(); v[0]; }",
            ),
            (
                "crates/net/src/unused.rs",
                "fn orphan() { let v: Vec<u32> = Vec::new(); v[0]; }",
            ),
        ]);
        // The orphan's indexing is proved unreachable; only the
        // entry-connected chain is reported.
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "crates/net/src/collector.rs");
        assert_eq!(hits[0].1, 3);
        assert_eq!(hits[0].2, vec!["run_collector", "step", "decode"]);
    }

    #[test]
    fn panic_sites_outside_panic_free_crates_are_not_reported() {
        let hits = panic_hits(&[(
            "crates/capsearch/src/executor.rs",
            "pub fn score_probe() { helper(); }\n\
             fn helper() { Some(1).unwrap(); }",
        )]);
        // capsearch is deterministic but not panic-free; reachable
        // unwraps there are a (pre-existing) policy choice, not a
        // finding.
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn shortest_chain_wins_when_two_paths_reach_a_site() {
        let hits = panic_hits(&[(
            "crates/net/src/collector.rs",
            "pub fn run_collector() { a(); deep(); }\n\
             fn deep() { mid(); }\n\
             fn mid() { a(); }\n\
             fn a() { x.unwrap(); }",
        )]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].2, vec!["run_collector", "a"]);
    }

    #[test]
    fn taint_flags_env_read_reachable_from_sink() {
        let hits = taint_hits(&[(
            "crates/fleet/src/topology.rs",
            "pub struct FleetTopology;\n\
             impl FleetTopology {\n\
               pub fn to_toml(&self) -> String { label() }\n\
             }\n\
             fn label() -> String { std::env::var(\"HOST\").unwrap_or_default() }",
        )]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 5);
        assert_eq!(hits[0].2, vec!["FleetTopology::to_toml", "label"]);
    }

    #[test]
    fn env_shims_are_exempt_and_clocks_outside_sink_reach_are_clean() {
        let hits = taint_hits(&[(
            "crates/fleet/src/topology.rs",
            "pub struct FleetTopology;\n\
             impl FleetTopology {\n\
               pub fn to_toml(&self) -> String { parse_host_env() }\n\
             }\n\
             fn parse_host_env() -> String { std::env::var(\"HOST\").unwrap_or_default() }\n\
             fn unrelated() { let _ = std::env::var(\"OTHER\"); }",
        )]);
        // The shim is allowed; `unrelated` is not reachable from the
        // sink, so its raw read is out of scope for taint.
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn clock_source_in_nondeterministic_crate_taints_sink_through_crates() {
        let hits = taint_hits(&[
            (
                "crates/capsearch/src/report.rs",
                "pub struct CapacityReport;\n\
                 impl CapacityReport {\n\
                   pub fn render(&self) -> String { stamp() }\n\
                 }",
            ),
            (
                "crates/net/src/clock.rs",
                "pub fn stamp() -> String { let _t = std::time::Instant::now(); String::new() }",
            ),
        ]);
        // `Instant::now` in net is fine locally (nondet-time does not
        // apply there) but must not flow into a pinned report.
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "crates/net/src/clock.rs");
        assert_eq!(hits[0].2, vec!["CapacityReport::render", "stamp"]);
    }

    #[test]
    fn unresolved_lists_missing_specs() {
        let us = units(&[("crates/net/src/a.rs", "pub fn run_agent() {}")]);
        let g = CallGraph::build(&us);
        let missing = unresolved(&g, &[("net", "run_agent"), ("net", "run_collector")]);
        assert_eq!(
            missing,
            vec![("net".to_string(), "run_collector".to_string())]
        );
    }
}
