//! Site detectors and the local (single-file) rules — each rule makes a
//! PR's manually-audited invariant machine-checked.
//!
//! | rule | scope | guards |
//! |------|-------|--------|
//! | `nondet-time` | deterministic crates | PR 1's byte-identical determinism: no wall clocks or entropy in deterministic paths |
//! | `nondet-iteration` | deterministic crates | PR 1/3: no unordered `HashMap`/`HashSet` iteration that could reorder serialized output |
//! | `protocol-wildcard-match` | net/src/frame.rs | PR 2: wire-enum matches stay exhaustive so a new `Frame` variant forces every site to be revisited |
//! | `protocol-wire-registry` | net/src/frame.rs | PR 2: every serialized wire type is consciously registered (and `PROTO_VERSION` bumped) |
//! | `config-bypass` | workspace | PR 2/4: validated config structs are built through their checked constructors, not struct literals |
//!
//! The v1 line-local `panic-unwrap`/`panic-indexing` rules are gone:
//! panic sites are now detected here ([`panic_sites`]) but *reported*
//! interprocedurally by [`crate::taint`]'s panic-reachability analysis,
//! which only flags sites an actual runtime entry point can reach — and
//! proves the rest unreachable instead of baselining them.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt
//! from the determinism and panic detectors: tests legitimately unwrap.

use crate::lexer::{Tok, TokKind};
use crate::{Finding, Severity, SourceUnit, WorkspaceIndex};

/// Crates whose outputs must be byte-identical across runs and thread
/// counts (the PR 1 determinism harness covers these, the capsearch
/// golden suite extends the same contract to capacity reports, the
/// PR 7 fleet merge must be a pure function of its input frame set, and
/// the PR 9 chaos schedule must be a pure function of
/// `(seed, connection, frame index)` or its oracles are meaningless).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "ml",
    "sim",
    "parallel",
    "bench",
    "capsearch",
    "fleet",
    "chaosnet",
];

/// Crates whose runtime paths must be panic-free (the PR 4 audit; the
/// PR 7 fleet digest/merge path inherits the same contract, and the
/// PR 9 chaos interposer must survive every byte stream it fabricates).
pub const PANIC_FREE_CRATES: &[&str] = &["core", "net", "fleet", "chaosnet"];

/// The wire-protocol definition file; the `protocol-*` rules apply here.
pub const PROTOCOL_FILE_SUFFIX: &str = "net/src/frame.rs";

/// The binary codec file; [`crate::drift`] cross-checks it against the
/// protocol file.
pub const CODEC_FILE_SUFFIX: &str = "net/src/binary.rs";

/// Registered wire types in the protocol file. Adding a `Serialize`
/// type to `frame.rs` without listing it here (and bumping
/// `PROTO_VERSION`) is a finding: serialized layout changes must be
/// conscious, versioned decisions — the metric-schema hash only covers
/// feature rows, not frame shapes.
pub const WIRE_TYPE_REGISTRY: &[&str] = &[
    "AppStats",
    "WireSample",
    "Frame",
    "AppWindowDigest",
    "TierWindowDigest",
    "DigestFin",
    "DigestFrame",
    "WireCaps",
    "WireCodec",
    // Wire-visible audit vocabulary (PR 9): shed causes cross the wire
    // in `Reject` reasons and reports; partition events are the fleet
    // merge's serialized liveness audit. Registered here so renaming or
    // reshaping either is a conscious protocol decision even though
    // they are defined outside `frame.rs`.
    "ShedKind",
    "PartitionEvent",
];

/// Methods whose calls on a hash collection iterate it in
/// nondeterministic order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = ..`, `return [x]`, `in [1, 2]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "if", "else", "match", "mut", "ref", "move", "as", "const", "static",
    "where", "for", "while", "loop", "break", "continue", "use", "pub", "fn", "type", "struct",
    "enum", "impl", "trait", "mod", "dyn", "unsafe", "box", "await", "yield",
];

/// One detected site: token index, 1-based line, and a human
/// description of the operation.
pub struct Site {
    /// Token index into the unit's stream.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// What the operation is (`\`.unwrap()\``, `\`Instant::now()\``, ...).
    pub what: String,
}

fn finding(unit: &SourceUnit, rule: &'static str, line: u32, note: String) -> Finding {
    Finding {
        rule,
        severity: Severity::Error,
        file: unit.rel_path.clone(),
        line,
        note,
        fingerprint: String::new(),
        chain: Vec::new(),
    }
}

/// Short crate name for a workspace-relative path: `crates/net/src/..`
/// → `net`; the root package's `src/..` → `webcap`.
pub fn crate_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        match rest.split('/').next() {
            Some(name) => name.to_string(),
            None => "webcap".to_string(),
        }
    } else {
        "webcap".to_string()
    }
}

/// True for paths the analyzer skips wholesale: integration tests,
/// benches, and examples are test-adjacent by construction.
pub fn test_adjacent_path(rel_path: &str) -> bool {
    rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
        || rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
}

/// Mark every token inside a `#[cfg(test)]` / `#[test]`-guarded block
/// as exempt. The attribute applies to the next braced item (`mod` or
/// `fn`); an attribute consumed by a non-block item (`use`, `const`)
/// clears at its `;`.
pub(crate) fn test_exempt_mask(toks: &[Tok]) -> Vec<bool> {
    let matches = crate::parser::brace_matches(toks);
    let mut exempt = vec![false; toks.len()];
    let mut pending = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Scan the attribute to its matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < toks.len() {
                let a = &toks[j];
                if a.is_punct("[") {
                    depth += 1;
                } else if a.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if has_test {
                pending = true;
            }
            i = j + 1;
            continue;
        }
        if pending {
            if t.is_punct("{") {
                if let Some(close) = matches[i] {
                    for e in exempt.iter_mut().take(close + 1).skip(i) {
                        *e = true;
                    }
                    pending = false;
                    i = close + 1;
                    continue;
                }
                // Unbalanced file: exempt the rest.
                for e in exempt.iter_mut().skip(i) {
                    *e = true;
                }
                return exempt;
            }
            if t.is_punct(";") {
                pending = false;
            }
        }
        i += 1;
    }
    exempt
}

/// Run every applicable local rule over one file.
pub fn lint_file(unit: &SourceUnit, index: &WorkspaceIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    if test_adjacent_path(&unit.rel_path) {
        return findings;
    }
    if DETERMINISTIC_CRATES.contains(&unit.crate_name.as_str()) {
        for s in clock_entropy_sites(unit) {
            findings.push(finding(
                unit,
                "nondet-time",
                s.line,
                format!(
                    "{} in deterministic crate `{}`: results must be \
                     byte-identical across runs (PR 1 invariant)",
                    s.what, unit.crate_name
                ),
            ));
        }
        for s in hash_iteration_sites(unit) {
            findings.push(finding(
                unit,
                "nondet-iteration",
                s.line,
                format!(
                    "{} iterates a hash collection in arbitrary order in \
                     deterministic crate `{}`; use a BTreeMap/BTreeSet, sort \
                     first, or count densely (PR 1/3 invariant)",
                    s.what, unit.crate_name
                ),
            ));
        }
    }
    if unit.rel_path.ends_with(PROTOCOL_FILE_SUFFIX) {
        rule_protocol_wildcard_match(unit, &mut findings);
        rule_protocol_wire_registry(unit, &mut findings);
    }
    rule_config_bypass(unit, index, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    findings
}

/// Wall clocks and ambient entropy: `SystemTime::now`, `Instant::now`,
/// `thread_rng`, `rand::rng`, `from_entropy`, `from_os_rng`, `OsRng`.
pub fn clock_entropy_sites(unit: &SourceUnit) -> Vec<Site> {
    let toks = &unit.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if unit.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("now")
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("`{}::now()`", t.text),
            });
        }
        let ambient = t.is_ident("thread_rng")
            || t.is_ident("from_entropy")
            || t.is_ident("from_os_rng")
            || t.is_ident("OsRng")
            || (t.is_ident("rand")
                && i + 2 < toks.len()
                && toks[i + 1].is_punct("::")
                && toks[i + 2].is_ident("rng"));
        if ambient {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("ambient entropy (`{}`)", t.text),
            });
        }
    }
    out
}

/// Iteration-shaped uses of names declared with a `HashMap`/`HashSet`
/// type in this file. Names are resolved lexically.
pub fn hash_iteration_sites(unit: &SourceUnit) -> Vec<Site> {
    let toks = &unit.toks;
    let mut out = Vec::new();
    // Pass 1: names declared with a hash-collection type.
    let mut hash_names: Vec<String> = Vec::new();
    let note_name = |name: &str, hash_names: &mut Vec<String>| {
        if !hash_names.iter().any(|n| n == name) {
            hash_names.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if unit.exempt[i] || !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            // A name declared inside test code is out of scope for
            // runtime code; collecting it would only manufacture
            // false positives (e.g. a test-only HashMap reference
            // implementation shadowing a runtime Vec of the same name).
            continue;
        }
        // `name: [&[mut]] [std::collections::] HashMap<..>` — walk back
        // over the optional path and reference tokens to the `:`.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct("::")
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_punct("&")
                || p.is_ident("mut")
                || p.kind == TokKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            note_name(&toks[j - 2].text, &mut hash_names);
        }
        // `name = HashMap::new()` / `= HashSet::from(..)`.
        if j >= 2 && toks[j - 1].is_punct("=") && toks[j - 2].kind == TokKind::Ident {
            note_name(&toks[j - 2].text, &mut hash_names);
        }
    }
    if hash_names.is_empty() {
        return out;
    }
    // Pass 2: iteration-shaped uses of those names.
    for i in 0..toks.len() {
        if unit.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !hash_names.iter().any(|n| *n == t.text) {
            continue;
        }
        // `name.iter()` and friends.
        if i + 2 < toks.len()
            && toks[i + 1].is_punct(".")
            && toks[i + 2].kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&toks[i + 2].text.as_str())
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("`{}.{}()`", t.text, toks[i + 2].text),
            });
        }
        // `for k in [&[mut]] name {`.
        let mut back = i;
        while back > 0 && (toks[back - 1].is_punct("&") || toks[back - 1].is_ident("mut")) {
            back -= 1;
        }
        if back > 0
            && toks[back - 1].is_ident("in")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("{")
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("`for .. in {}`", t.text),
            });
        }
    }
    out
}

/// Environment reads: `env::var(..)` / `env::var_os(..)` (with or
/// without a `std::` prefix). Shim exemption (functions whose name
/// marks them as the typed env seam) is applied by the taint analysis,
/// which knows the enclosing function.
pub fn env_read_sites(unit: &SourceUnit) -> Vec<Site> {
    let toks = &unit.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if unit.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if !(t.is_ident("var") || t.is_ident("var_os")) {
            continue;
        }
        if i >= 2
            && toks[i - 1].is_punct("::")
            && toks[i - 2].is_ident("env")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("`env::{}()`", t.text),
            });
        }
    }
    out
}

/// Panic sites: `.unwrap()`/`.expect()`, panicking macros, and direct
/// indexing/slicing (`x[i]`). Reported by panic-reachability only when
/// an entry point can actually reach the enclosing function.
pub fn panic_sites(unit: &SourceUnit) -> Vec<Site> {
    let toks = &unit.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if unit.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_punct(".")
            && i + 2 < toks.len()
            && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
            && toks[i + 2].is_punct("(")
        {
            out.push(Site {
                tok: i + 1,
                line: toks[i + 1].line,
                what: format!("`.{}()`", toks[i + 1].text),
            });
        }
        let panicky = t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented");
        if panicky && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("`{}!`", t.text),
            });
        }
        if i > 0 && t.is_punct("[") {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if indexes {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: "direct indexing".to_string(),
                });
            }
        }
    }
    out
}

/// `protocol-wildcard-match`: a `_ =>` arm in the protocol file
/// silently swallows future `Frame` variants instead of forcing every
/// match site to be revisited when the wire dialect grows.
fn rule_protocol_wildcard_match(unit: &SourceUnit, findings: &mut Vec<Finding>) {
    let toks = &unit.toks;
    for i in 0..toks.len() {
        if unit.exempt[i] {
            continue;
        }
        if toks[i].is_ident("_") && i + 1 < toks.len() && toks[i + 1].is_punct("=>") {
            findings.push(finding(
                unit,
                "protocol-wildcard-match",
                toks[i].line,
                "wildcard `_ =>` arm in the wire-protocol file: matches on wire \
                 enums must stay exhaustive so adding a Frame variant is a \
                 compile-time event at every site (PR 2 invariant)"
                    .to_string(),
            ));
        }
    }
}

/// `protocol-wire-registry`: every `Serialize`/`Deserialize` type in
/// the protocol file must be listed in [`WIRE_TYPE_REGISTRY`] — the
/// reviewable ledger of what bytes cross the wire.
fn rule_protocol_wire_registry(unit: &SourceUnit, findings: &mut Vec<Finding>) {
    for ty in &unit.parsed.types {
        if ty.is_test {
            continue;
        }
        let serde = ty
            .derives
            .iter()
            .any(|d| d == "Serialize" || d == "Deserialize");
        if serde && !WIRE_TYPE_REGISTRY.contains(&ty.name.as_str()) {
            findings.push(finding(
                unit,
                "protocol-wire-registry",
                ty.line,
                format!(
                    "serialized wire type `{}` is not in the wire-type \
                     registry: register it in webcap-lint's \
                     WIRE_TYPE_REGISTRY and bump PROTO_VERSION so the \
                     layout change is a conscious, versioned decision \
                     (PR 2 invariant)",
                    ty.name
                ),
            ));
        }
    }
}

/// `config-bypass`: struct-literal construction of a validated config
/// type outside its defining file skips `validate()` — exactly the bug
/// class `try_new` exists to prevent.
fn rule_config_bypass(unit: &SourceUnit, index: &WorkspaceIndex, findings: &mut Vec<Finding>) {
    if index.validated_configs.is_empty() {
        return;
    }
    let toks = &unit.toks;
    for i in 0..toks.len() {
        if unit.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some((_, def_file)) = index
            .validated_configs
            .iter()
            .find(|(name, _)| *name == t.text)
        else {
            continue;
        };
        if *def_file == unit.rel_path {
            continue;
        }
        if i + 1 >= toks.len() || !toks[i + 1].is_punct("{") {
            continue;
        }
        // Walk back past item-definition keywords: `struct X {`,
        // `impl X {`, `impl T for X {` are definitions, and
        // `fn f() -> X {` is a return type followed by the body brace —
        // none of them literals.
        let mut back = i;
        let mut is_definition = false;
        let mut steps = 0;
        while back > 0 && steps < 8 {
            let p = &toks[back - 1];
            if p.is_punct("->") {
                is_definition = true;
                break;
            }
            if p.is_punct("{")
                || p.is_punct("}")
                || p.is_punct(";")
                || p.is_punct("(")
                || p.is_punct(",")
                || p.is_punct("=")
            {
                break;
            }
            if p.kind == TokKind::Ident
                && matches!(
                    p.text.as_str(),
                    "struct" | "enum" | "impl" | "trait" | "mod" | "for" | "fn" | "union"
                )
            {
                is_definition = true;
                break;
            }
            back -= 1;
            steps += 1;
        }
        if !is_definition {
            findings.push(finding(
                unit,
                "config-bypass",
                t.line,
                format!(
                    "struct-literal construction of validated config `{}` \
                     bypasses its checked constructor; build it via \
                     Default/try_new and mutate fields, or call validate() \
                     (PR 2/4 invariant)",
                    t.text
                ),
            ));
        }
    }
}

/// Scan one file for validated config types: any `impl X {{ .. }}`
/// block containing `fn try_new` or `fn validate`, where `X` ends in
/// `Config`, marks `X` as validated (defined in this file).
pub fn collect_validated_configs(unit: &SourceUnit) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for f in &unit.parsed.fns {
        if f.is_test || !(f.name == "try_new" || f.name == "validate") {
            continue;
        }
        if let Some((ty, _)) = f.qual.split_once("::") {
            if ty.ends_with("Config") {
                out.push((ty.to_string(), unit.rel_path.clone()));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(path: &str, src: &str) -> SourceUnit {
        SourceUnit::new(path, src)
    }

    fn rules_on(path: &str, src: &str) -> Vec<Finding> {
        lint_file(&unit(path, src), &WorkspaceIndex::default())
    }

    #[test]
    fn crate_names_resolve_from_paths() {
        assert_eq!(crate_of("crates/net/src/frame.rs"), "net");
        assert_eq!(crate_of("src/lib.rs"), "webcap");
    }

    #[test]
    fn instant_now_flagged_in_deterministic_crate_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let hits = rules_on("crates/sim/src/engine.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "nondet-time");
        assert_eq!(hits[0].line, 1);
        // `net` is not a deterministic crate (wall clocks are part of
        // its job: timeouts, heartbeats).
        assert!(rules_on("crates/net/src/agent.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); let t = Instant::now(); }\n}";
        assert!(rules_on("crates/core/src/meter.rs", src).is_empty());
        assert!(panic_sites(&unit("crates/core/src/meter.rs", src)).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_by_declared_name() {
        let src = "struct S { counts: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> String { s.counts.iter().map(|_| String::new()).collect() }";
        let hits = rules_on("crates/ml/src/info.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "nondet-iteration");
        assert_eq!(hits[0].line, 2);
        // Keyed access is fine.
        let keyed = "fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(rules_on("crates/ml/src/info.rs", keyed).is_empty());
    }

    #[test]
    fn panic_sites_detect_each_construct() {
        let src = "fn f(v: Vec<u32>) -> u32 {\n let x = v.first().unwrap();\n v[0] + x;\n panic!(\"no\")\n}";
        let sites = panic_sites(&unit("crates/net/src/agent.rs", src));
        let at: Vec<(u32, &str)> = sites.iter().map(|s| (s.line, s.what.as_str())).collect();
        assert_eq!(
            at,
            vec![
                (2, "`.unwrap()`"),
                (3, "direct indexing"),
                (4, "`panic!`")
            ]
        );
        // unwrap_or is not unwrap; slice patterns and array literals
        // are not indexing.
        let ok = "fn f(v: [u32; 2]) -> u32 { let [a, _b] = v; v.first().copied().unwrap_or(a) }";
        assert!(panic_sites(&unit("crates/net/src/agent.rs", ok)).is_empty());
    }

    #[test]
    fn env_reads_are_detected() {
        let src = "fn try_from_env() { let _ = std::env::var(\"X\"); }\n\
                   fn other() { let _ = env::var_os(\"Y\"); }";
        let sites = env_read_sites(&unit("crates/net/src/frame.rs", src));
        let at: Vec<u32> = sites.iter().map(|s| s.line).collect();
        assert_eq!(at, vec![1, 2]);
    }

    #[test]
    fn wildcard_arm_flagged_only_in_protocol_file() {
        let src = "fn f(x: u32) -> u32 { match x { 1 => 0, _ => 1 } }";
        let hits = rules_on("crates/net/src/frame.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "protocol-wildcard-match");
        assert!(rules_on("crates/net/src/collector.rs", src).is_empty());
    }

    #[test]
    fn unregistered_wire_type_flagged() {
        let src = "#[derive(Debug, Serialize, Deserialize)]\npub struct Sneaky { x: u32 }";
        let hits = rules_on("crates/net/src/frame.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "protocol-wire-registry");
        assert_eq!(hits[0].line, 2);
        let ok = "#[derive(Debug, Serialize, Deserialize)]\npub struct WireSample { x: u32 }";
        assert!(rules_on("crates/net/src/frame.rs", ok).is_empty());
    }

    #[test]
    fn config_bypass_flagged_outside_defining_file() {
        let index = WorkspaceIndex {
            validated_configs: vec![(
                "AdmissionConfig".to_string(),
                "crates/core/src/admission.rs".to_string(),
            )],
        };
        let src = "fn f() { let c = AdmissionConfig { min_ebs: 0 }; }";
        let hits = lint_file(&unit("crates/cli/src/commands.rs", src), &index);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "config-bypass");
        // The defining file may construct literals (Default impl).
        assert!(lint_file(&unit("crates/core/src/admission.rs", src), &index).is_empty());
        // try_new is not a literal.
        let ok = "fn f() { let c = AdmissionController::try_new(AdmissionConfig::default(), 1); }";
        assert!(lint_file(&unit("crates/cli/src/commands.rs", ok), &index).is_empty());
        // A return type followed by the body brace is not a literal.
        let ret = "fn f() -> AdmissionConfig { AdmissionConfig::default() }";
        assert!(lint_file(&unit("crates/cli/src/commands.rs", ret), &index).is_empty());
    }

    #[test]
    fn validated_config_collection_sees_validate_impls() {
        let src = "pub struct FooConfig { pub x: u32 }\n\
                   impl FooConfig { pub fn validate(&self) -> Result<(), ()> { Ok(()) } }\n\
                   pub struct Bar;\n\
                   impl Bar { pub fn try_new() -> Result<Bar, ()> { Ok(Bar) } }";
        let got = collect_validated_configs(&unit("crates/core/src/x.rs", src));
        // Bar has try_new but is not a *Config type.
        assert_eq!(
            got,
            vec![("FooConfig".to_string(), "crates/core/src/x.rs".to_string())]
        );
    }

    #[test]
    fn integration_test_files_are_fully_exempt() {
        let src = "fn f() { x.unwrap(); let t = Instant::now(); }";
        assert!(rules_on("crates/core/tests/determinism.rs", src).is_empty());
    }
}
