//! The project-specific rules — each one makes a PR's manually-audited
//! invariant machine-checked.
//!
//! | rule | crates | guards |
//! |------|--------|--------|
//! | `nondet-time` | core, ml, sim, parallel, bench, capsearch, fleet, chaosnet | PR 1's byte-identical determinism: no wall clocks or entropy in deterministic paths |
//! | `nondet-iteration` | core, ml, sim, parallel, bench, capsearch, fleet, chaosnet | PR 1/3: no unordered `HashMap`/`HashSet` iteration that could reorder serialized output |
//! | `panic-unwrap` | core, net, fleet, chaosnet | PR 4's audit: no `unwrap`/`expect`/`panic!` in runtime paths |
//! | `panic-indexing` | core, net, fleet, chaosnet | PR 4: no direct indexing (`x[i]`) that can panic in runtime paths |
//! | `protocol-wildcard-match` | net/src/frame.rs | PR 2: wire-enum matches stay exhaustive so a new `Frame` variant forces every site to be revisited |
//! | `protocol-wire-registry` | net/src/frame.rs | PR 2: every serialized wire type is consciously registered (and `PROTO_VERSION` bumped) |
//! | `config-bypass` | workspace | PR 2/4: validated config structs are built through their checked constructors, not struct literals |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt
//! from the determinism and panic rules: tests legitimately unwrap.

use crate::lexer::{Tok, TokKind};
use crate::{Finding, Severity, WorkspaceIndex};

/// Crates whose outputs must be byte-identical across runs and thread
/// counts (the PR 1 determinism harness covers these, the capsearch
/// golden suite extends the same contract to capacity reports, the
/// PR 7 fleet merge must be a pure function of its input frame set, and
/// the PR 9 chaos schedule must be a pure function of
/// `(seed, connection, frame index)` or its oracles are meaningless).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "ml",
    "sim",
    "parallel",
    "bench",
    "capsearch",
    "fleet",
    "chaosnet",
];

/// Crates whose runtime paths must be panic-free (the PR 4 audit; the
/// PR 7 fleet digest/merge path inherits the same contract, and the
/// PR 9 chaos interposer must survive every byte stream it fabricates).
pub const PANIC_FREE_CRATES: &[&str] = &["core", "net", "fleet", "chaosnet"];

/// The wire-protocol definition file; the `protocol-*` rules apply here.
pub const PROTOCOL_FILE_SUFFIX: &str = "net/src/frame.rs";

/// Registered wire types in the protocol file. Adding a `Serialize`
/// type to `frame.rs` without listing it here (and bumping
/// `PROTO_VERSION`) is a finding: serialized layout changes must be
/// conscious, versioned decisions — the metric-schema hash only covers
/// feature rows, not frame shapes.
pub const WIRE_TYPE_REGISTRY: &[&str] = &[
    "AppStats",
    "WireSample",
    "Frame",
    "AppWindowDigest",
    "TierWindowDigest",
    "DigestFin",
    "DigestFrame",
    "WireCaps",
    "WireCodec",
    // Wire-visible audit vocabulary (PR 9): shed causes cross the wire
    // in `Reject` reasons and reports; partition events are the fleet
    // merge's serialized liveness audit. Registered here so renaming or
    // reshaping either is a conscious protocol decision even though
    // they are defined outside `frame.rs`.
    "ShedKind",
    "PartitionEvent",
];

/// Methods whose calls on a hash collection iterate it in
/// nondeterministic order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = ..`, `return [x]`, `in [1, 2]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "if", "else", "match", "mut", "ref", "move", "as", "const", "static",
    "where", "for", "while", "loop", "break", "continue", "use", "pub", "fn", "type", "struct",
    "enum", "impl", "trait", "mod", "dyn", "unsafe", "box", "await", "yield",
];

/// A lexed file plus everything the rules need to scope themselves.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Crate short name (`core`, `net`, ... or `webcap` for the root).
    pub crate_name: String,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Per-token test-code mask (`#[cfg(test)]` / `#[test]` regions).
    pub exempt: Vec<bool>,
}

impl FileCtx {
    /// Lex `source` and compute the test-exemption mask.
    pub fn new(rel_path: &str, source: &str) -> FileCtx {
        let toks = crate::lexer::lex(source);
        let exempt = test_exempt_mask(&toks);
        FileCtx {
            rel_path: rel_path.to_string(),
            crate_name: crate_of(rel_path),
            toks,
            exempt,
        }
    }

    fn finding(&self, rule: &'static str, line: u32, note: String) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: self.rel_path.clone(),
            line,
            note,
        }
    }
}

/// Short crate name for a workspace-relative path: `crates/net/src/..`
/// → `net`; the root package's `src/..` → `webcap`.
pub fn crate_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        match rest.split('/').next() {
            Some(name) => name.to_string(),
            None => "webcap".to_string(),
        }
    } else {
        "webcap".to_string()
    }
}

/// For each `{` token index, the index of its matching `}`.
fn brace_matches(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                out[open] = Some(i);
            }
        }
    }
    out
}

/// Mark every token inside a `#[cfg(test)]` / `#[test]`-guarded block
/// as exempt. The attribute applies to the next braced item (`mod` or
/// `fn`); an attribute consumed by a non-block item (`use`, `const`)
/// clears at its `;`.
fn test_exempt_mask(toks: &[Tok]) -> Vec<bool> {
    let matches = brace_matches(toks);
    let mut exempt = vec![false; toks.len()];
    let mut pending = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Scan the attribute to its matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < toks.len() {
                let a = &toks[j];
                if a.is_punct("[") {
                    depth += 1;
                } else if a.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if has_test {
                pending = true;
            }
            i = j + 1;
            continue;
        }
        if pending {
            if t.is_punct("{") {
                if let Some(close) = matches[i] {
                    for e in exempt.iter_mut().take(close + 1).skip(i) {
                        *e = true;
                    }
                    pending = false;
                    i = close + 1;
                    continue;
                }
                // Unbalanced file: exempt the rest.
                for e in exempt.iter_mut().skip(i) {
                    *e = true;
                }
                return exempt;
            }
            if t.is_punct(";") {
                pending = false;
            }
        }
        i += 1;
    }
    exempt
}

/// Run every applicable rule over one file.
pub fn lint_file(ctx: &FileCtx, index: &WorkspaceIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Files outside `src/` trees (integration tests, benches, examples)
    // are test-adjacent by construction.
    if ctx.rel_path.contains("/tests/")
        || ctx.rel_path.contains("/benches/")
        || ctx.rel_path.contains("/examples/")
        || ctx.rel_path.starts_with("tests/")
        || ctx.rel_path.starts_with("examples/")
    {
        return findings;
    }
    if DETERMINISTIC_CRATES.contains(&ctx.crate_name.as_str()) {
        rule_nondet_time(ctx, &mut findings);
        rule_nondet_iteration(ctx, &mut findings);
    }
    if PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        rule_panic_unwrap(ctx, &mut findings);
        rule_panic_indexing(ctx, &mut findings);
    }
    if ctx.rel_path.ends_with(PROTOCOL_FILE_SUFFIX) {
        rule_protocol_wildcard_match(ctx, &mut findings);
        rule_protocol_wire_registry(ctx, &mut findings);
    }
    rule_config_bypass(ctx, index, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    findings
}

/// `nondet-time`: wall clocks and entropy sources are banned in the
/// deterministic crates — one `Instant::now()` in a training path and
/// the byte-identity harness can no longer hold.
fn rule_nondet_time(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if ctx.exempt[i] {
            continue;
        }
        let t = &toks[i];
        // `SystemTime::now` / `Instant::now`.
        if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("now")
        {
            findings.push(ctx.finding(
                "nondet-time",
                t.line,
                format!(
                    "{}::now() in deterministic crate `{}`: results must be \
                     byte-identical across runs (PR 1 invariant)",
                    t.text, ctx.crate_name
                ),
            ));
        }
        // Ambient entropy: `thread_rng`, `rand::rng`, `from_entropy`,
        // `from_os_rng`, `OsRng`.
        let ambient = t.is_ident("thread_rng")
            || t.is_ident("from_entropy")
            || t.is_ident("from_os_rng")
            || t.is_ident("OsRng")
            || (t.is_ident("rand")
                && i + 2 < toks.len()
                && toks[i + 1].is_punct("::")
                && toks[i + 2].is_ident("rng"));
        if ambient {
            findings.push(ctx.finding(
                "nondet-time",
                t.line,
                format!(
                    "ambient entropy (`{}`) in deterministic crate `{}`: seed \
                     explicitly so runs replay byte-identically (PR 1 invariant)",
                    t.text, ctx.crate_name
                ),
            ));
        }
    }
}

/// `nondet-iteration`: iterating a `HashMap`/`HashSet` yields a
/// platform- and run-dependent order; if that order reaches serialized
/// output the byte-identity promise breaks. Names are resolved
/// lexically: any binding, field, or static declared with a hash type
/// in this file is tracked, and iteration-shaped uses of it flagged.
fn rule_nondet_iteration(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    // Pass 1: names declared with a hash-collection type.
    let mut hash_names: Vec<String> = Vec::new();
    let note_name = |name: &str, hash_names: &mut Vec<String>| {
        if !hash_names.iter().any(|n| n == name) {
            hash_names.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if ctx.exempt[i] || !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            // A name declared inside test code is out of scope for
            // runtime code; collecting it would only manufacture
            // false positives (e.g. a test-only HashMap reference
            // implementation shadowing a runtime Vec of the same name).
            continue;
        }
        // `name: [&[mut]] [std::collections::] HashMap<..>` — walk back
        // over the optional path and reference tokens to the `:`.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct("::")
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_punct("&")
                || p.is_ident("mut")
                || p.kind == TokKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            note_name(&toks[j - 2].text, &mut hash_names);
        }
        // `name = HashMap::new()` / `= HashSet::from(..)`.
        if j >= 2 && toks[j - 1].is_punct("=") && toks[j - 2].kind == TokKind::Ident {
            note_name(&toks[j - 2].text, &mut hash_names);
        }
    }
    if hash_names.is_empty() {
        return;
    }
    // Pass 2: iteration-shaped uses of those names.
    for i in 0..toks.len() {
        if ctx.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !hash_names.iter().any(|n| *n == t.text) {
            continue;
        }
        // `name.iter()` and friends.
        if i + 2 < toks.len()
            && toks[i + 1].is_punct(".")
            && toks[i + 2].kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&toks[i + 2].text.as_str())
        {
            findings.push(ctx.finding(
                "nondet-iteration",
                t.line,
                format!(
                    "`{}.{}()` iterates a hash collection in arbitrary order in \
                     deterministic crate `{}`; use a BTreeMap/BTreeSet, sort \
                     first, or count densely (PR 1/3 invariant)",
                    t.text,
                    toks[i + 2].text,
                    ctx.crate_name
                ),
            ));
        }
        // `for k in [&[mut]] name {`.
        let mut back = i;
        while back > 0 && (toks[back - 1].is_punct("&") || toks[back - 1].is_ident("mut")) {
            back -= 1;
        }
        if back > 0
            && toks[back - 1].is_ident("in")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("{")
        {
            findings.push(ctx.finding(
                "nondet-iteration",
                t.line,
                format!(
                    "`for .. in {}` iterates a hash collection in arbitrary \
                     order in deterministic crate `{}` (PR 1/3 invariant)",
                    t.text, ctx.crate_name
                ),
            ));
        }
    }
}

/// `panic-unwrap`: `unwrap`/`expect` calls and panicking macros in the
/// runtime paths of the panic-free crates.
fn rule_panic_unwrap(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if ctx.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_punct(".")
            && i + 2 < toks.len()
            && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
            && toks[i + 2].is_punct("(")
        {
            findings.push(ctx.finding(
                "panic-unwrap",
                toks[i + 1].line,
                format!(
                    "`.{}()` in a runtime path of `{}`: return a typed error or \
                     handle the None/Err arm (PR 4 invariant)",
                    toks[i + 1].text,
                    ctx.crate_name
                ),
            ));
        }
        let panicky = t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented");
        if panicky && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
            findings.push(ctx.finding(
                "panic-unwrap",
                t.line,
                format!(
                    "`{}!` in a runtime path of `{}`: runtime code must fail \
                     with typed errors, not panics (PR 4 invariant)",
                    t.text, ctx.crate_name
                ),
            ));
        }
    }
}

/// `panic-indexing`: `x[i]` / `x[a..b]` panics on out-of-bounds; in the
/// panic-free crates every such site is either rewritten (`get`,
/// iterators) or consciously baselined with a bounds argument.
fn rule_panic_indexing(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for i in 1..toks.len() {
        if ctx.exempt[i] {
            continue;
        }
        if !toks[i].is_punct("[") {
            continue;
        }
        let prev = &toks[i - 1];
        let indexes = match prev.kind {
            TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if indexes {
            findings.push(ctx.finding(
                "panic-indexing",
                toks[i].line,
                format!(
                    "direct indexing in a runtime path of `{}`: out-of-bounds \
                     panics here; prefer `get`/iterators, or baseline with a \
                     bounds argument (PR 4 invariant)",
                    ctx.crate_name
                ),
            ));
        }
    }
}

/// `protocol-wildcard-match`: a `_ =>` arm in the protocol file
/// silently swallows future `Frame` variants instead of forcing every
/// match site to be revisited when the wire dialect grows.
fn rule_protocol_wildcard_match(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if ctx.exempt[i] {
            continue;
        }
        if toks[i].is_ident("_") && i + 1 < toks.len() && toks[i + 1].is_punct("=>") {
            findings.push(
                ctx.finding(
                    "protocol-wildcard-match",
                    toks[i].line,
                    "wildcard `_ =>` arm in the wire-protocol file: matches on wire \
                 enums must stay exhaustive so adding a Frame variant is a \
                 compile-time event at every site (PR 2 invariant)"
                        .to_string(),
                ),
            );
        }
    }
}

/// `protocol-wire-registry`: every `Serialize`/`Deserialize` type in
/// the protocol file must be listed in [`WIRE_TYPE_REGISTRY`] — the
/// reviewable ledger of what bytes cross the wire.
fn rule_protocol_wire_registry(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        // Scan the attribute.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_serde_derive = false;
        let mut saw_derive = false;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct("[") {
                depth += 1;
            } else if a.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.is_ident("derive") {
                saw_derive = true;
            } else if saw_derive && (a.is_ident("Serialize") || a.is_ident("Deserialize")) {
                is_serde_derive = true;
            }
            j += 1;
        }
        let attr_exempt = ctx.exempt[i];
        i = j + 1;
        if !is_serde_derive || attr_exempt {
            continue;
        }
        // Find the struct/enum name this derive applies to, skipping
        // further attributes and visibility.
        let mut k = i;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("#") && k + 1 < toks.len() && toks[k + 1].is_punct("[") {
                let mut d = 0usize;
                let mut m = k + 1;
                while m < toks.len() {
                    if toks[m].is_punct("[") {
                        d += 1;
                    } else if toks[m].is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                k = m + 1;
                continue;
            }
            if (t.is_ident("struct") || t.is_ident("enum"))
                && k + 1 < toks.len()
                && toks[k + 1].kind == TokKind::Ident
            {
                let name = &toks[k + 1];
                if !WIRE_TYPE_REGISTRY.contains(&name.text.as_str()) {
                    findings.push(ctx.finding(
                        "protocol-wire-registry",
                        name.line,
                        format!(
                            "serialized wire type `{}` is not in the wire-type \
                             registry: register it in webcap-lint's \
                             WIRE_TYPE_REGISTRY and bump PROTO_VERSION so the \
                             layout change is a conscious, versioned decision \
                             (PR 2 invariant)",
                            name.text
                        ),
                    ));
                }
                break;
            }
            if t.is_ident("pub")
                || t.is_punct("(")
                || t.is_punct(")")
                || t.is_ident("crate")
                || t.is_ident("super")
            {
                k += 1;
                continue;
            }
            break;
        }
    }
}

/// `config-bypass`: struct-literal construction of a validated config
/// type outside its defining file skips `validate()` — exactly the bug
/// class `try_new` exists to prevent.
fn rule_config_bypass(ctx: &FileCtx, index: &WorkspaceIndex, findings: &mut Vec<Finding>) {
    if index.validated_configs.is_empty() {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if ctx.exempt[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some((_, def_file)) = index
            .validated_configs
            .iter()
            .find(|(name, _)| *name == t.text)
        else {
            continue;
        };
        if *def_file == ctx.rel_path {
            continue;
        }
        if i + 1 >= toks.len() || !toks[i + 1].is_punct("{") {
            continue;
        }
        // Walk back past item-definition keywords: `struct X {`,
        // `impl X {`, `impl T for X {` are definitions, and
        // `fn f() -> X {` is a return type followed by the body brace —
        // none of them literals.
        let mut back = i;
        let mut is_definition = false;
        let mut steps = 0;
        while back > 0 && steps < 8 {
            let p = &toks[back - 1];
            if p.is_punct("->") {
                is_definition = true;
                break;
            }
            if p.is_punct("{")
                || p.is_punct("}")
                || p.is_punct(";")
                || p.is_punct("(")
                || p.is_punct(",")
                || p.is_punct("=")
            {
                break;
            }
            if p.kind == TokKind::Ident
                && matches!(
                    p.text.as_str(),
                    "struct" | "enum" | "impl" | "trait" | "mod" | "for" | "fn" | "union"
                )
            {
                is_definition = true;
                break;
            }
            back -= 1;
            steps += 1;
        }
        if !is_definition {
            findings.push(ctx.finding(
                "config-bypass",
                t.line,
                format!(
                    "struct-literal construction of validated config `{}` \
                     bypasses its checked constructor; build it via \
                     Default/try_new and mutate fields, or call validate() \
                     (PR 2/4 invariant)",
                    t.text
                ),
            ));
        }
    }
}

/// Scan one file for validated config types: any `impl X {{ .. }}`
/// block containing `fn try_new` or `fn validate`, where `X` ends in
/// `Config`, marks `X` as validated (defined in this file).
pub fn collect_validated_configs(ctx: &FileCtx) -> Vec<(String, String)> {
    let toks = &ctx.toks;
    let matches = brace_matches(toks);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Collect the impl target: idents at angle-depth 0 between
        // `impl` and `{`; `for` resets (trait impl target follows it);
        // `where` ends the scan.
        let mut angle: i32 = 0;
        let mut target: Option<String> = None;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") && angle <= 0 {
                break;
            }
            if t.is_punct(";") {
                break;
            }
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "for" if t.kind == TokKind::Ident && angle <= 0 => target = None,
                "where" if t.kind == TokKind::Ident && angle <= 0 => break,
                _ => {
                    if t.kind == TokKind::Ident && angle <= 0 {
                        target = Some(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        let Some(name) = target else {
            i = j + 1;
            continue;
        };
        if !(toks.get(j).is_some_and(|t| t.is_punct("{")) && name.ends_with("Config")) {
            i = j + 1;
            continue;
        }
        let close = matches[j].unwrap_or(toks.len().saturating_sub(1));
        let mut has_validated_ctor = false;
        let mut k = j;
        while k + 1 <= close {
            if toks[k].is_ident("fn")
                && (toks[k + 1].is_ident("try_new") || toks[k + 1].is_ident("validate"))
            {
                has_validated_ctor = true;
                break;
            }
            k += 1;
        }
        if has_validated_ctor {
            out.push((name, ctx.rel_path.clone()));
        }
        i = close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src)
    }

    fn rules_on(path: &str, src: &str) -> Vec<Finding> {
        lint_file(&ctx(path, src), &WorkspaceIndex::default())
    }

    #[test]
    fn crate_names_resolve_from_paths() {
        assert_eq!(crate_of("crates/net/src/frame.rs"), "net");
        assert_eq!(crate_of("src/lib.rs"), "webcap");
    }

    #[test]
    fn instant_now_flagged_in_deterministic_crate_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let hits = rules_on("crates/sim/src/engine.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "nondet-time");
        assert_eq!(hits[0].line, 1);
        // `net` is not a deterministic crate (wall clocks are part of
        // its job: timeouts, heartbeats).
        assert!(rules_on("crates/net/src/agent.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); let t = Instant::now(); }\n}";
        assert!(rules_on("crates/core/src/meter.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_by_declared_name() {
        let src = "struct S { counts: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> String { s.counts.iter().map(|_| String::new()).collect() }";
        let hits = rules_on("crates/ml/src/info.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "nondet-iteration");
        assert_eq!(hits[0].line, 2);
        // Keyed access is fine.
        let keyed = "fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(rules_on("crates/ml/src/info.rs", keyed).is_empty());
    }

    #[test]
    fn unwrap_and_panic_flagged_in_panic_free_crates() {
        let src = "fn f(v: Vec<u32>) -> u32 {\n let x = v.first().unwrap();\n panic!(\"no\")\n}";
        let hits = rules_on("crates/net/src/agent.rs", src);
        let at: Vec<(&str, u32)> = hits.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(at, vec![("panic-unwrap", 2), ("panic-unwrap", 3)]);
        // unwrap_or is not unwrap.
        let ok = "fn f(v: Vec<u32>) -> u32 { v.first().copied().unwrap_or(0) }";
        assert!(rules_on("crates/net/src/agent.rs", ok).is_empty());
    }

    #[test]
    fn indexing_flagged_but_slice_patterns_are_not() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        let hits = rules_on("crates/core/src/agg.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "panic-indexing");
        let pat = "fn f(v: [u32; 2]) -> u32 { let [a, _b] = v; a }";
        assert!(rules_on("crates/core/src/agg.rs", pat).is_empty());
        let arr = "fn f() -> [u32; 2] { [1, 2] }";
        assert!(rules_on("crates/core/src/agg.rs", arr).is_empty());
    }

    #[test]
    fn wildcard_arm_flagged_only_in_protocol_file() {
        let src = "fn f(x: u32) -> u32 { match x { 1 => 0, _ => 1 } }";
        let hits = rules_on("crates/net/src/frame.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "protocol-wildcard-match");
        assert!(rules_on("crates/net/src/collector.rs", src).is_empty());
    }

    #[test]
    fn unregistered_wire_type_flagged() {
        let src = "#[derive(Debug, Serialize, Deserialize)]\npub struct Sneaky { x: u32 }";
        let hits = rules_on("crates/net/src/frame.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "protocol-wire-registry");
        assert_eq!(hits[0].line, 2);
        let ok = "#[derive(Debug, Serialize, Deserialize)]\npub struct WireSample { x: u32 }";
        assert!(rules_on("crates/net/src/frame.rs", ok).is_empty());
    }

    #[test]
    fn config_bypass_flagged_outside_defining_file() {
        let index = WorkspaceIndex {
            validated_configs: vec![(
                "AdmissionConfig".to_string(),
                "crates/core/src/admission.rs".to_string(),
            )],
        };
        let src = "fn f() { let c = AdmissionConfig { min_ebs: 0 }; }";
        let hits = lint_file(&ctx("crates/cli/src/commands.rs", src), &index);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "config-bypass");
        // The defining file may construct literals (Default impl).
        assert!(lint_file(&ctx("crates/core/src/admission.rs", src), &index).is_empty());
        // try_new is not a literal.
        let ok = "fn f() { let c = AdmissionController::try_new(AdmissionConfig::default(), 1); }";
        assert!(lint_file(&ctx("crates/cli/src/commands.rs", ok), &index).is_empty());
        // A return type followed by the body brace is not a literal.
        let ret = "fn f() -> AdmissionConfig { AdmissionConfig::default() }";
        assert!(lint_file(&ctx("crates/cli/src/commands.rs", ret), &index).is_empty());
    }

    #[test]
    fn validated_config_collection_sees_validate_impls() {
        let src = "pub struct FooConfig { pub x: u32 }\n\
                   impl FooConfig { pub fn validate(&self) -> Result<(), ()> { Ok(()) } }\n\
                   pub struct Bar;\n\
                   impl Bar { pub fn try_new() -> Result<Bar, ()> { Ok(Bar) } }";
        let got = collect_validated_configs(&ctx("crates/core/src/x.rs", src));
        // Bar has try_new but is not a *Config type.
        assert_eq!(
            got,
            vec![("FooConfig".to_string(), "crates/core/src/x.rs".to_string())]
        );
    }

    #[test]
    fn integration_test_files_are_fully_exempt() {
        let src = "fn f() { x.unwrap(); let t = Instant::now(); }";
        assert!(rules_on("crates/core/tests/determinism.rs", src).is_empty());
    }
}
