//! `webcap-lint` — the workspace invariant analyzer.
//!
//! PRs 1–4 established the properties this codebase depends on:
//! byte-identical determinism in the measurement/training pipeline, an
//! unwrap-free runtime in the capacity-critical crates, an exhaustively
//! matched and versioned wire protocol, and validated configuration.
//! v1 enforced them with token-level, line-local rules. v2 grows the
//! crate into a workspace *static analyzer*: the [`lexer`] feeds a
//! hand-rolled recursive-descent [`parser`] (item trees: fns, impls,
//! structs/enums with field order, `cfg(test)` scoping), the item trees
//! feed a conservative [`callgraph`], and on top of the graph run the
//! interprocedural analyses in [`taint`] (panic-reachability from the
//! runtime entry points, determinism taint from the byte-stable sinks)
//! and [`drift`] (WCB3 codec ⇄ declaration cross-check). Local rules
//! live in [`rules`].
//!
//! Findings are identified by content-addressed **fingerprints** (rule
//! + enclosing item + normalized item snippet + occurrence), so the
//! committed `lint-baseline.toml` survives line renumbering: a
//! formatting-only commit requires zero baseline edits.
//!
//! Entry points:
//! - [`lint_workspace`] — walk a workspace root and produce a [`Report`]
//!   (what the `webcap lint` subcommand calls);
//! - [`lint_sources`] — run the full pipeline over in-memory files (the
//!   seam the analysis fixture tests use);
//! - [`lint_source`] — local rules only, one file (the v1 seam, kept
//!   for the single-file fixtures).
//!
//! The analyzer is deliberately dependency-free — not even `syn` — so
//! it builds in hermetic environments and can never be the reason the
//! workspace fails to resolve. Rules that would require full type
//! resolution belong in clippy, not here; everything the graph cannot
//! resolve is over-approximated in the sound direction.

pub mod baseline;
pub mod callgraph;
pub mod drift;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineEntry, BaselineError};
pub use callgraph::{CallGraph, SourceUnit};

/// Finding severity. Every current rule is [`Severity::Error`]; the
/// distinction exists so future advisory rules can ride the same
/// report without gating CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never fails the run.
    Warning,
    /// Violation of an enforced invariant: fails the run unless
    /// baselined.
    Error,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `panic-reachability`); static because
    /// rules are compiled in.
    pub rule: &'static str,
    /// Severity of the violation.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation including which invariant is at risk.
    pub note: String,
    /// Content-addressed identity (16 hex chars): rule + enclosing item
    /// + normalized snippet + occurrence. Stable across line shifts.
    pub fingerprint: String,
    /// For interprocedural findings: the shortest call chain as
    /// qualified names (entry → … → site, or sink → … → source).
    pub chain: Vec<String>,
}

/// Cross-file facts gathered before per-file linting: currently the
/// set of validated config types (name, defining file) used by the
/// `config-bypass` rule.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceIndex {
    /// `(type name, workspace-relative defining file)` for every
    /// `*Config` type with a `try_new`/`validate` impl.
    pub validated_configs: Vec<(String, String)>,
}

/// The outcome of a lint run, after baseline diffing.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by the baseline — these fail the run.
    pub new_findings: Vec<Finding>,
    /// Findings covered by the baseline — reported, never failing.
    pub baselined_findings: Vec<Finding>,
    /// Baseline entries matching no current finding — stale debt to
    /// delete from the allowlist (warned, never failing).
    pub stale_baseline: Vec<BaselineEntry>,
}

impl Report {
    /// True when the run should exit nonzero.
    pub fn failed(&self) -> bool {
        !self.new_findings.is_empty()
    }
}

/// Errors from walking or reading the workspace.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem failure, with the path that produced it.
    Io(PathBuf, io::Error),
    /// The workspace root doesn't look like this workspace.
    BadRoot(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::BadRoot(path) => write!(
                f,
                "{} does not contain a `crates/` directory; pass the workspace root via --root",
                path.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Lint a single in-memory source file with the *local* rules only.
/// `rel_path` selects which rules apply (crate scoping, protocol-file
/// detection, test-file exemption). Fingerprints are filled in.
pub fn lint_source(rel_path: &str, source: &str, index: &WorkspaceIndex) -> Vec<Finding> {
    let unit = SourceUnit::new(rel_path, source);
    let mut findings = rules::lint_file(&unit, index);
    fingerprint_findings(std::slice::from_ref(&unit), &mut findings);
    findings
}

/// Run the full v2 pipeline — local rules, panic-reachability,
/// determinism taint, wire drift — over in-memory files. Findings are
/// sorted by `(file, line, rule)`, deduplicated, and fingerprinted.
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let units: Vec<SourceUnit> = sources
        .iter()
        .map(|(rel, text)| SourceUnit::new(rel, text))
        .collect();
    let index = build_index_from_units(&units);
    let graph = CallGraph::build(&units);
    let mut findings: Vec<Finding> = Vec::new();
    for unit in &units {
        findings.extend(rules::lint_file(unit, &index));
    }
    findings.extend(taint::panic_reachability(&units, &graph));
    findings.extend(taint::determinism_taint(&units, &graph));
    findings.extend(drift::wire_drift(&units));
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    fingerprint_findings(&units, &mut findings);
    findings
}

/// Collect every workspace `.rs` source file under `root`, as
/// `(workspace-relative path, absolute path)` pairs sorted by relative
/// path. Covers `crates/*/src/**` and the root facade's `src/**`;
/// `target/` and hidden directories are never entered.
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::BadRoot(root.to_path_buf()));
    }
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let entries = fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(crates_dir.clone(), e))?;
        let path = entry.path();
        if path.is_dir() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        // Only src/ trees: integration tests and benches are linted by
        // rustc/clippy, and the rules exempt them anyway.
        roots.push(dir.join("src"));
    }
    for sub in roots {
        if sub.is_dir() {
            walk_rs(root, &sub, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Build the cross-file [`WorkspaceIndex`] from already-loaded sources.
pub fn build_index(sources: &[(String, String)]) -> WorkspaceIndex {
    let units: Vec<SourceUnit> = sources
        .iter()
        .map(|(rel, text)| SourceUnit::new(rel, text))
        .collect();
    build_index_from_units(&units)
}

fn build_index_from_units(units: &[SourceUnit]) -> WorkspaceIndex {
    let mut validated_configs = Vec::new();
    for unit in units {
        validated_configs.extend(rules::collect_validated_configs(unit));
    }
    validated_configs.sort();
    validated_configs.dedup();
    WorkspaceIndex { validated_configs }
}

/// Lint every workspace source under `root` and diff against
/// `baseline`. Findings are deterministic: sorted by
/// `(file, line, rule)` and deduplicated.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> Result<Report, LintError> {
    let files = workspace_sources(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, abs) in &files {
        let text = fs::read_to_string(abs).map_err(|e| LintError::Io(abs.clone(), e))?;
        sources.push((rel.clone(), text));
    }
    let findings = lint_sources(&sources);
    let mut new_findings = Vec::new();
    let mut baselined_findings = Vec::new();
    for f in findings.iter() {
        if baseline.covers(f) {
            baselined_findings.push(f.clone());
        } else {
            new_findings.push(f.clone());
        }
    }
    let stale_baseline = baseline.stale(&findings).into_iter().cloned().collect();
    Ok(Report {
        files_scanned: sources.len(),
        new_findings,
        baselined_findings,
        stale_baseline,
    })
}

/// All findings for a workspace ignoring any baseline — what
/// `--write-baseline` renders.
pub fn all_findings(root: &Path) -> Result<Vec<Finding>, LintError> {
    let report = lint_workspace(root, &Baseline::default())?;
    Ok(report.new_findings)
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

/// FNV-1a over bytes, 64-bit. Dependency-free and stable across
/// platforms — the identity function for baseline entries.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The normalized content of the item enclosing `line` in `unit`:
/// `("fn:<qual>", body tokens joined)`, `("type:<name>", shape)`,
/// `("const:<name>", value)`, or the tokens of the line itself when no
/// item encloses it. Line numbers never participate — that is the
/// whole point.
fn enclosing_scope(unit: &SourceUnit, line: u32) -> (String, String) {
    // Functions first (innermost item granularity the parser keeps).
    for f in &unit.parsed.fns {
        let Some((start, end)) = f.body else { continue };
        let end_line = unit.toks[end].line;
        if f.line <= line && line <= end_line {
            let body: Vec<&str> = unit.toks[start..=end]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            return (format!("fn:{}", f.qual), body.join(" "));
        }
    }
    for t in &unit.parsed.types {
        let end_line = t.fields.iter().map(|fd| fd.line).max().unwrap_or(t.line);
        if t.line <= line && line <= end_line {
            let fields: Vec<&str> = t.fields.iter().map(|fd| fd.name.as_str()).collect();
            return (format!("type:{}", t.name), fields.join(" "));
        }
    }
    for c in &unit.parsed.consts {
        if c.line == line {
            return (format!("const:{}", c.name), c.value.clone());
        }
    }
    let line_toks: Vec<&str> = unit
        .toks
        .iter()
        .filter(|t| t.line == line)
        .map(|t| t.text.as_str())
        .collect();
    ("file".to_string(), line_toks.join(" "))
}

/// Fill in `fingerprint` for every finding. Identity =
/// `fnv64(rule \0 file \0 scope \0 content \0 occurrence)` where
/// `occurrence` disambiguates repeated identical findings within one
/// `(rule, scope)` group by their order of appearance (not their line).
fn fingerprint_findings(units: &[SourceUnit], findings: &mut [Finding]) {
    let mut seen: Vec<(String, usize)> = Vec::new();
    for f in findings.iter_mut() {
        let (scope, content) = match units.iter().find(|u| u.rel_path == f.file) {
            Some(unit) => enclosing_scope(unit, f.line),
            None => ("file".to_string(), String::new()),
        };
        let base = format!("{}\0{}\0{}\0{}", f.rule, f.file, scope, content);
        let occurrence = match seen.iter_mut().find(|(k, _)| *k == base) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                seen.push((base.clone(), 0));
                0
            }
        };
        f.fingerprint = format!("{:016x}", fnv64(format!("{base}\0{occurrence}").as_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_crate_scoping() {
        let index = WorkspaceIndex::default();
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lint_source("crates/core/src/x.rs", src, &index).len(), 1);
        assert!(lint_source("crates/net/src/x.rs", src, &index).is_empty());
    }

    #[test]
    fn report_failed_tracks_new_findings_only() {
        let mut r = Report::default();
        assert!(!r.failed());
        let f = Finding {
            rule: "nondet-time",
            severity: Severity::Error,
            file: "f".into(),
            line: 1,
            note: "n".into(),
            fingerprint: String::new(),
            chain: Vec::new(),
        };
        r.baselined_findings.push(f.clone());
        assert!(!r.failed());
        r.new_findings.push(f);
        assert!(r.failed());
    }

    #[test]
    fn build_index_collects_configs_across_files() {
        let sources = vec![(
            "crates/core/src/cfg.rs".to_string(),
            "pub struct TierConfig { pub n: u32 }\n\
             impl TierConfig { pub fn try_new(n: u32) -> Result<Self, ()> { Ok(TierConfig { n }) } }"
                .to_string(),
        )];
        let index = build_index(&sources);
        assert_eq!(
            index.validated_configs,
            vec![(
                "TierConfig".to_string(),
                "crates/core/src/cfg.rs".to_string()
            )]
        );
    }

    #[test]
    fn fingerprints_survive_line_shifts_but_track_content() {
        let index = WorkspaceIndex::default();
        let v1 = "fn f() { let t = Instant::now(); }";
        // Same item, pushed down by comments and whitespace.
        let v2 = "// a comment\n\n// another\nfn f() { let t = Instant::now(); }";
        // Same line number as v1, different enclosing content.
        let v3 = "fn f() { let t = Instant::now(); t.elapsed(); }";
        let fp = |src: &str| lint_source("crates/core/src/x.rs", src, &index)[0]
            .fingerprint
            .clone();
        assert_eq!(fp(v1), fp(v2));
        assert_ne!(fp(v1), fp(v3));
        assert_eq!(fp(v1).len(), 16);
    }

    #[test]
    fn repeated_identical_sites_get_distinct_fingerprints() {
        let index = WorkspaceIndex::default();
        let src = "fn f() {\n let a = Instant::now();\n let b = Instant::now();\n}";
        let findings = lint_source("crates/core/src/x.rs", src, &index);
        assert_eq!(findings.len(), 2);
        assert_ne!(findings[0].fingerprint, findings[1].fingerprint);
    }

    #[test]
    fn lint_sources_runs_the_interprocedural_analyses() {
        let sources = vec![
            (
                "crates/net/src/collector.rs".to_string(),
                "pub fn run_collector() { helper(); }\nfn helper() { x.unwrap(); }".to_string(),
            ),
            (
                "crates/core/src/quiet.rs".to_string(),
                "pub fn fine() -> u32 { 1 }".to_string(),
            ),
        ];
        let findings = lint_sources(&sources);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "panic-reachability");
        assert_eq!(findings[0].chain, vec!["run_collector", "helper"]);
        assert!(!findings[0].fingerprint.is_empty());
    }
}
