//! `webcap-lint` — the workspace invariant analyzer.
//!
//! PRs 1–4 established the properties this codebase depends on:
//! byte-identical determinism in the measurement/training pipeline, an
//! unwrap-free runtime in the capacity-critical crates, an exhaustively
//! matched and versioned wire protocol, and validated configuration.
//! Each was enforced by a one-off manual audit. This crate turns those
//! audits into a machine-checked pass: a dependency-free, token-level
//! static analyzer that walks every workspace source file, applies the
//! project-specific rules in [`rules`], and diffs the findings against
//! the committed `lint-baseline.toml` allowlist so pre-existing,
//! documented debt is tracked explicitly and only *new* findings fail.
//!
//! Entry points:
//! - [`lint_workspace`] — walk a workspace root and produce a [`Report`]
//!   (what the `webcap lint` subcommand calls);
//! - [`lint_source`] — lint one in-memory file against an index (the
//!   seam the fixture tests use to pin exact `file:line` findings).
//!
//! The analyzer is deliberately dependency-free — not even `syn` — so
//! it builds in hermetic environments and can never be the reason the
//! workspace fails to resolve. The hand-rolled [`lexer`] is sufficient
//! for every token-level rule the workspace needs; rules that would
//! require full type resolution belong in clippy, not here.

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineEntry, BaselineError};

/// Finding severity. Every current rule is [`Severity::Error`]; the
/// distinction exists so future advisory rules can ride the same
/// report without gating CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never fails the run.
    Warning,
    /// Violation of an enforced invariant: fails the run unless
    /// baselined.
    Error,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `panic-unwrap`); static because rules are
    /// compiled in.
    pub rule: &'static str,
    /// Severity of the violation.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation including which invariant is at risk.
    pub note: String,
}

/// Cross-file facts gathered before per-file linting: currently the
/// set of validated config types (name, defining file) used by the
/// `config-bypass` rule.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceIndex {
    /// `(type name, workspace-relative defining file)` for every
    /// `*Config` type with a `try_new`/`validate` impl.
    pub validated_configs: Vec<(String, String)>,
}

/// The outcome of a lint run, after baseline diffing.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by the baseline — these fail the run.
    pub new_findings: Vec<Finding>,
    /// Findings covered by the baseline — reported, never failing.
    pub baselined_findings: Vec<Finding>,
    /// Baseline entries matching no current finding — stale debt to
    /// delete from the allowlist (warned, never failing).
    pub stale_baseline: Vec<BaselineEntry>,
}

impl Report {
    /// True when the run should exit nonzero.
    pub fn failed(&self) -> bool {
        !self.new_findings.is_empty()
    }
}

/// Errors from walking or reading the workspace.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem failure, with the path that produced it.
    Io(PathBuf, io::Error),
    /// The workspace root doesn't look like this workspace.
    BadRoot(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::BadRoot(path) => write!(
                f,
                "{} does not contain a `crates/` directory; pass the workspace root via --root",
                path.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Lint a single in-memory source file. `rel_path` selects which rules
/// apply (crate scoping, protocol-file detection, test-file exemption).
/// This is the seam the fixture tests use.
pub fn lint_source(rel_path: &str, source: &str, index: &WorkspaceIndex) -> Vec<Finding> {
    let ctx = rules::FileCtx::new(rel_path, source);
    rules::lint_file(&ctx, index)
}

/// Collect every workspace `.rs` source file under `root`, as
/// `(workspace-relative path, absolute path)` pairs sorted by relative
/// path. Covers `crates/*/src/**` and the root facade's `src/**`;
/// `target/` and hidden directories are never entered.
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::BadRoot(root.to_path_buf()));
    }
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let entries = fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(crates_dir.clone(), e))?;
        let path = entry.path();
        if path.is_dir() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        // Only src/ trees: integration tests and benches are linted by
        // rustc/clippy, and the rules exempt them anyway.
        roots.push(dir.join("src"));
    }
    for sub in roots {
        if sub.is_dir() {
            walk_rs(root, &sub, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Build the cross-file [`WorkspaceIndex`] from already-loaded sources.
pub fn build_index(sources: &[(String, String)]) -> WorkspaceIndex {
    let mut validated_configs = Vec::new();
    for (rel, text) in sources {
        let ctx = rules::FileCtx::new(rel, text);
        validated_configs.extend(rules::collect_validated_configs(&ctx));
    }
    validated_configs.sort();
    validated_configs.dedup();
    WorkspaceIndex { validated_configs }
}

/// Lint every workspace source under `root` and diff against
/// `baseline`. Findings are deterministic: sorted by
/// `(file, line, rule)` and deduplicated.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> Result<Report, LintError> {
    let files = workspace_sources(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, abs) in &files {
        let text = fs::read_to_string(abs).map_err(|e| LintError::Io(abs.clone(), e))?;
        sources.push((rel.clone(), text));
    }
    let index = build_index(&sources);
    let mut findings: Vec<Finding> = Vec::new();
    for (rel, text) in &sources {
        findings.extend(lint_source(rel, text, &index));
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);

    let mut new_findings = Vec::new();
    let mut baselined_findings = Vec::new();
    for f in findings.iter() {
        if baseline.covers(f) {
            baselined_findings.push(f.clone());
        } else {
            new_findings.push(f.clone());
        }
    }
    let stale_baseline = baseline.stale(&findings).into_iter().cloned().collect();
    Ok(Report {
        files_scanned: sources.len(),
        new_findings,
        baselined_findings,
        stale_baseline,
    })
}

/// All findings for a workspace ignoring any baseline — what
/// `--write-baseline` renders.
pub fn all_findings(root: &Path) -> Result<Vec<Finding>, LintError> {
    let report = lint_workspace(root, &Baseline::default())?;
    Ok(report.new_findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_crate_scoping() {
        let index = WorkspaceIndex::default();
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lint_source("crates/core/src/x.rs", src, &index).len(), 1);
        assert!(lint_source("crates/net/src/x.rs", src, &index).is_empty());
    }

    #[test]
    fn report_failed_tracks_new_findings_only() {
        let mut r = Report::default();
        assert!(!r.failed());
        r.baselined_findings.push(Finding {
            rule: "panic-unwrap",
            severity: Severity::Error,
            file: "f".into(),
            line: 1,
            note: "n".into(),
        });
        assert!(!r.failed());
        r.new_findings.push(Finding {
            rule: "panic-unwrap",
            severity: Severity::Error,
            file: "f".into(),
            line: 2,
            note: "n".into(),
        });
        assert!(r.failed());
    }

    #[test]
    fn build_index_collects_configs_across_files() {
        let sources = vec![(
            "crates/core/src/cfg.rs".to_string(),
            "pub struct TierConfig { pub n: u32 }\n\
             impl TierConfig { pub fn try_new(n: u32) -> Result<Self, ()> { Ok(TierConfig { n }) } }"
                .to_string(),
        )];
        let index = build_index(&sources);
        assert_eq!(
            index.validated_configs,
            vec![(
                "TierConfig".to_string(),
                "crates/core/src/cfg.rs".to_string()
            )]
        );
    }
}
