// Fixture: struct-literal construction of a validated config outside
// its defining file. Linted as crates/cli/src/fixture.rs against an
// index that maps AdmissionConfig to crates/core/src/admission.rs.

fn bypasses_validation() -> AdmissionConfig {
    AdmissionConfig {
        min_ebs: 0,
        max_ebs: 0,
    }
}

fn validated_path_is_fine() -> AdmissionConfig {
    AdmissionConfig::default()
}
