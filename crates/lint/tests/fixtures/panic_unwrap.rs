// Fixture: panicking constructs in a panic-free crate's runtime path.
// Linted as crates/net/src/fixture.rs.

fn unwraps(v: Vec<u32>) -> u32 {
    let first = v.first().unwrap();
    let last = v.last().expect("non-empty");
    first + last
}

fn macros(x: u32) -> u32 {
    if x > 10 {
        panic!("too big");
    }
    match x {
        0 => todo!(),
        1 => unreachable!(),
        _ => x,
    }
}

fn handled_is_fine(v: Vec<u32>) -> u32 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        let _ = v.first().unwrap();
    }
}
