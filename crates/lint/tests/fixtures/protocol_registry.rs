// Fixture: a serialized wire type missing from the registry. Linted as
// crates/net/src/frame.rs (the protocol file).

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SneakyExtra {
    pub value: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireSample {
    pub registered: bool,
}
