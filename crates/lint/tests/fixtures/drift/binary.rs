//! Seeded fixture codec (linted as `crates/net/src/binary.rs`):
//! encode-order swap, decode-literal swap, and a missing tag for
//! `Frame::Bye` — one of each drift class.

const TAG_PROBE: u8 = 1;

fn put_probe(out: &mut Vec<u8>, cur: &WireProbe) {
    put_f64(out, cur.t_s);
    put_u64(out, cur.seq);
    put_u8(out, cur.tier);
}

fn probe() -> WireProbe {
    WireProbe {
        tier: 0,
        seq: 0,
        t_s: 0.0,
    }
}

pub fn encode_frame(f: &Frame) {
    let _ = TAG_PROBE;
}

pub fn decode_frame(tag: u8) {
    let _ = TAG_PROBE;
}
