//! Seeded fixture protocol file (linted as `crates/net/src/frame.rs`):
//! one wire struct and the `Frame` enum. The codec half
//! (`drift/binary.rs`) gets all three drift classes wrong against it.

/// Wire struct the codec fixture encodes and decodes out of order.
pub struct WireProbe {
    pub seq: u64,
    pub t_s: f64,
    pub tier: u8,
}

/// Frame space: `Bye` has no `TAG_*` constant in the codec fixture.
pub enum Frame {
    Probe(WireProbe),
    Bye { last_seq: u64 },
}
