// Fixture: a wildcard arm swallowing wire-enum variants. Linted as
// crates/net/src/frame.rs (the protocol file).

enum Frame {
    Hello,
    Sample,
    Goodbye,
}

fn dispatch(frame: Frame) -> u32 {
    match frame {
        Frame::Hello => 1,
        _ => 0,
    }
}
