// Fixture: wall clocks and ambient entropy in a deterministic crate.
// Linted as crates/sim/src/fixture.rs.
use std::time::{Instant, SystemTime};

fn wall_clocks() -> u64 {
    let started = Instant::now();
    let _ = SystemTime::now();
    started.elapsed().as_nanos() as u64
}

fn ambient_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.random()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
