// Fixture: code every rule accepts, in the strictest scope (a
// deterministic and panic-free crate). Linted as crates/core/src/fixture.rs.
use std::collections::BTreeMap;

fn ordered_iteration(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

fn checked_access(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0) + v.iter().sum::<u32>()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_do_anything() {
        let t = Instant::now();
        let v = vec![1u32];
        assert_eq!(v[0], 1);
        let _ = t.elapsed();
    }
}
