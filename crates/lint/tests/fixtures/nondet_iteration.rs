// Fixture: unordered hash-collection iteration in a deterministic
// crate. Linted as crates/ml/src/fixture.rs.
use std::collections::{HashMap, HashSet};

fn serialize_counts(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

fn visit_all(seen: HashSet<u64>) -> u64 {
    let mut sum = 0;
    for v in seen {
        sum += v;
    }
    sum
}

fn keyed_lookup_is_fine(counts: &HashMap<String, u64>) -> u64 {
    counts.get("total").copied().unwrap_or(0)
}
