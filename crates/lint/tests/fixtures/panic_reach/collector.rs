//! Seeded fixture crate (linted as `crates/net/src/collector.rs`):
//! one panic site wired to a registered entry point through two
//! helpers, plus an orphaned panic the call graph proves unreachable.

/// Entry point (matches the registered `net` entry `run_collector`).
pub fn run_collector() {
    step();
}

fn step() {
    decode();
}

fn decode() {
    let v: Vec<u32> = Vec::new();
    let _ = v[0];
}

fn orphan() {
    let _ = Option::<u32>::None.unwrap();
}
