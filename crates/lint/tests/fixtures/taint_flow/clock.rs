//! Helper-crate half of the taint fixture (linted as
//! `crates/net/src/clock.rs`): the nondeterministic source. A wall
//! clock is legal in `net` locally; flowing into a pinned report is
//! the defect.

/// Wall-clock stamp.
pub fn stamp() -> String {
    let _t = std::time::Instant::now();
    String::new()
}
