//! Seeded fixture crate (linted as `crates/capsearch/src/report.rs`):
//! a byte-stable report whose render path reaches a wall clock defined
//! in a helper crate — clean locally, poison interprocedurally.

/// Pinned report (matches the registered sink
/// `capsearch::CapacityReport::render`).
pub struct CapacityReport;

impl CapacityReport {
    /// Render the byte-pinned report.
    pub fn render(&self) -> String {
        stamp()
    }
}
