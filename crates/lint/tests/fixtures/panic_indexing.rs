// Fixture: direct indexing in a panic-free crate's runtime path.
// Linted as crates/core/src/fixture.rs.

fn indexes(v: &[u32], i: usize) -> u32 {
    let head = v[0];
    head + v[i]
}

fn slices(v: &[u32]) -> &[u32] {
    &v[1..]
}

fn patterns_and_literals_are_fine(pair: [u32; 2]) -> [u32; 2] {
    let [a, b] = pair;
    [b, a]
}
