//! Fixture tests, two tiers:
//!
//! - single-file fixtures under `tests/fixtures/*.rs` pin the local
//!   rules to exact `(rule, line)` output under a virtual path;
//! - seeded fixture *crates* under `tests/fixtures/{panic_reach,
//!   taint_flow,drift}/` pin the interprocedural analyses to exact
//!   `(rule, file, line, fingerprint, chain)` output through the full
//!   [`webcap_lint::lint_sources`] pipeline — proving each analysis
//!   fires, with the right evidence, and nowhere else.
//!
//! The pinned fingerprints are content-addressed (FNV-1a over
//! rule/file/enclosing-scope/line-content), so they only change when a
//! fixture's *content* changes — which is exactly when these tests
//! should force a conscious re-pin.

use webcap_lint::{lint_source, lint_sources, WorkspaceIndex};

/// Lint a fixture under a virtual workspace path and return the
/// `(rule, line)` pairs it produces, in report order.
fn run(fixture: &str, as_path: &str, index: &WorkspaceIndex) -> Vec<(String, u32)> {
    lint_source(as_path, fixture, index)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn expect(fixture: &str, as_path: &str, expected: &[(&str, u32)]) {
    let got = run(fixture, as_path, &WorkspaceIndex::default());
    let want: Vec<(String, u32)> = expected.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(got, want, "fixture linted as {as_path}");
}

/// Run the full pipeline over a virtual fixture crate and return every
/// finding as `(rule, file, line, fingerprint, chain)`.
fn run_crate(srcs: &[(&str, &str)]) -> Vec<(String, String, u32, String, Vec<String>)> {
    let sources: Vec<(String, String)> = srcs
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_sources(&sources)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.file, f.line, f.fingerprint, f.chain))
        .collect()
}

#[test]
fn nondet_time_fires_on_clocks_and_entropy() {
    expect(
        include_str!("fixtures/nondet_time.rs"),
        "crates/sim/src/fixture.rs",
        &[("nondet-time", 6), ("nondet-time", 7), ("nondet-time", 12)],
    );
}

#[test]
fn nondet_time_is_scoped_to_deterministic_crates() {
    // The same snippet in `net` (wall clocks are part of its job) is clean.
    let got = run(
        include_str!("fixtures/nondet_time.rs"),
        "crates/net/src/fixture.rs",
        &WorkspaceIndex::default(),
    );
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn nondet_iteration_fires_on_hash_iteration_only() {
    expect(
        include_str!("fixtures/nondet_iteration.rs"),
        "crates/ml/src/fixture.rs",
        &[("nondet-iteration", 7), ("nondet-iteration", 15)],
    );
}

#[test]
fn protocol_wildcard_fires_in_the_protocol_file_only() {
    let fixture = include_str!("fixtures/protocol_wildcard.rs");
    expect(
        fixture,
        "crates/net/src/frame.rs",
        &[("protocol-wildcard-match", 13)],
    );
    // The same match elsewhere in `net` is ordinary Rust.
    let got = run(
        fixture,
        "crates/net/src/collector.rs",
        &WorkspaceIndex::default(),
    );
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn protocol_registry_flags_unregistered_wire_types() {
    expect(
        include_str!("fixtures/protocol_registry.rs"),
        "crates/net/src/frame.rs",
        &[("protocol-wire-registry", 5)],
    );
}

#[test]
fn config_bypass_flags_literal_construction() {
    let index = WorkspaceIndex {
        validated_configs: vec![(
            "AdmissionConfig".to_string(),
            "crates/core/src/admission.rs".to_string(),
        )],
    };
    let got = run(
        include_str!("fixtures/config_bypass.rs"),
        "crates/cli/src/fixture.rs",
        &index,
    );
    assert_eq!(got, vec![("config-bypass".to_string(), 6)]);
    // The defining file itself may build literals (its Default impl).
    let got = run(
        include_str!("fixtures/config_bypass.rs"),
        "crates/core/src/admission.rs",
        &index,
    );
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn clean_fixture_passes_the_strictest_scope() {
    expect(
        include_str!("fixtures/clean.rs"),
        "crates/core/src/fixture.rs",
        &[],
    );
}

#[test]
fn panic_reach_crate_reports_the_entry_connected_chain_only() {
    let got = run_crate(&[(
        "crates/net/src/collector.rs",
        include_str!("fixtures/panic_reach/collector.rs"),
    )]);
    // `orphan`'s unwrap is proved unreachable: exactly one finding, at
    // the indexing site, with the shortest entry chain as evidence.
    assert_eq!(
        got,
        vec![(
            "panic-reachability".to_string(),
            "crates/net/src/collector.rs".to_string(),
            16,
            "f01af66fe792507e".to_string(),
            vec![
                "run_collector".to_string(),
                "step".to_string(),
                "decode".to_string(),
            ],
        )]
    );
}

#[test]
fn taint_flow_crate_reports_the_source_with_the_sink_chain() {
    let got = run_crate(&[
        (
            "crates/capsearch/src/report.rs",
            include_str!("fixtures/taint_flow/report.rs"),
        ),
        (
            "crates/net/src/clock.rs",
            include_str!("fixtures/taint_flow/clock.rs"),
        ),
    ]);
    // The clock is legal in `net` locally; the finding sits at the
    // source site with the sink → source chain attached.
    assert_eq!(
        got,
        vec![(
            "determinism-taint".to_string(),
            "crates/net/src/clock.rs".to_string(),
            8,
            "3357a510835603e5".to_string(),
            vec!["CapacityReport::render".to_string(), "stamp".to_string()],
        )]
    );
}

#[test]
fn drift_crate_reports_one_finding_per_drift_class() {
    let got = run_crate(&[
        (
            "crates/net/src/frame.rs",
            include_str!("fixtures/drift/frame.rs"),
        ),
        (
            "crates/net/src/binary.rs",
            include_str!("fixtures/drift/binary.rs"),
        ),
    ]);
    let want: Vec<(String, String, u32, String, Vec<String>)> = vec![
        (
            "wire-drift".to_string(),
            "crates/net/src/binary.rs".to_string(),
            7,
            "443c233f15153615".to_string(),
            Vec::new(),
        ),
        (
            "wire-drift".to_string(),
            "crates/net/src/binary.rs".to_string(),
            14,
            "1eb54f93f8e6d908".to_string(),
            Vec::new(),
        ),
        (
            "wire-drift".to_string(),
            "crates/net/src/frame.rs".to_string(),
            15,
            "83282feb4815f073".to_string(),
            Vec::new(),
        ),
    ];
    assert_eq!(got, want);
}
