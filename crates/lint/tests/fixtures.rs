//! Fixture tests: each known-bad snippet under `tests/fixtures/` must
//! produce exactly the expected `(rule, line)` findings when linted
//! under its intended virtual path — proving every rule fires, at the
//! right place, and nowhere else.

use webcap_lint::{lint_source, WorkspaceIndex};

/// Lint a fixture under a virtual workspace path and return the
/// `(rule, line)` pairs it produces, in report order.
fn run(fixture: &str, as_path: &str, index: &WorkspaceIndex) -> Vec<(String, u32)> {
    lint_source(as_path, fixture, index)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn expect(fixture: &str, as_path: &str, expected: &[(&str, u32)]) {
    let got = run(fixture, as_path, &WorkspaceIndex::default());
    let want: Vec<(String, u32)> = expected.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(got, want, "fixture linted as {as_path}");
}

#[test]
fn nondet_time_fires_on_clocks_and_entropy() {
    expect(
        include_str!("fixtures/nondet_time.rs"),
        "crates/sim/src/fixture.rs",
        &[("nondet-time", 6), ("nondet-time", 7), ("nondet-time", 12)],
    );
}

#[test]
fn nondet_time_is_scoped_to_deterministic_crates() {
    // The same snippet in `net` (wall clocks are part of its job) is clean.
    let got = run(
        include_str!("fixtures/nondet_time.rs"),
        "crates/net/src/fixture.rs",
        &WorkspaceIndex::default(),
    );
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn nondet_iteration_fires_on_hash_iteration_only() {
    expect(
        include_str!("fixtures/nondet_iteration.rs"),
        "crates/ml/src/fixture.rs",
        &[("nondet-iteration", 7), ("nondet-iteration", 15)],
    );
}

#[test]
fn panic_unwrap_fires_on_each_construct() {
    expect(
        include_str!("fixtures/panic_unwrap.rs"),
        "crates/net/src/fixture.rs",
        &[
            ("panic-unwrap", 5),
            ("panic-unwrap", 6),
            ("panic-unwrap", 12),
            ("panic-unwrap", 15),
            ("panic-unwrap", 16),
        ],
    );
}

#[test]
fn panic_indexing_fires_on_index_expressions_only() {
    expect(
        include_str!("fixtures/panic_indexing.rs"),
        "crates/core/src/fixture.rs",
        &[
            ("panic-indexing", 5),
            ("panic-indexing", 6),
            ("panic-indexing", 10),
        ],
    );
}

#[test]
fn protocol_wildcard_fires_in_the_protocol_file_only() {
    let fixture = include_str!("fixtures/protocol_wildcard.rs");
    expect(
        fixture,
        "crates/net/src/frame.rs",
        &[("protocol-wildcard-match", 13)],
    );
    // The same match elsewhere in `net` is ordinary Rust.
    let got = run(
        fixture,
        "crates/net/src/collector.rs",
        &WorkspaceIndex::default(),
    );
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn protocol_registry_flags_unregistered_wire_types() {
    expect(
        include_str!("fixtures/protocol_registry.rs"),
        "crates/net/src/frame.rs",
        &[("protocol-wire-registry", 5)],
    );
}

#[test]
fn config_bypass_flags_literal_construction() {
    let index = WorkspaceIndex {
        validated_configs: vec![(
            "AdmissionConfig".to_string(),
            "crates/core/src/admission.rs".to_string(),
        )],
    };
    let got = run(
        include_str!("fixtures/config_bypass.rs"),
        "crates/cli/src/fixture.rs",
        &index,
    );
    assert_eq!(got, vec![("config-bypass".to_string(), 6)]);
    // The defining file itself may build literals (its Default impl).
    let got = run(
        include_str!("fixtures/config_bypass.rs"),
        "crates/core/src/admission.rs",
        &index,
    );
    assert_eq!(got, Vec::<(String, u32)>::new());
}

#[test]
fn clean_fixture_passes_the_strictest_scope() {
    expect(
        include_str!("fixtures/clean.rs"),
        "crates/core/src/fixture.rs",
        &[],
    );
}
