//! Self-check: the committed workspace must be clean modulo the
//! committed `lint-baseline.toml`, every registered entry point and
//! sink must still resolve against the real tree (a rename must not
//! silently disable an analysis), and injecting a known-bad snippet
//! into a scratch workspace must produce a failing report — the
//! directions of the CI gate.

use std::fs;
use std::path::{Path, PathBuf};

use webcap_lint::taint::{ENTRY_POINTS, SINKS};
use webcap_lint::{lint_workspace, taint, Baseline, CallGraph, SourceUnit};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_is_clean_modulo_the_committed_baseline() {
    let root = workspace_root();
    let baseline_path = root.join("lint-baseline.toml");
    let text = fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    let report = lint_workspace(&root, &baseline).expect("workspace lints");
    assert!(report.files_scanned > 10, "workspace walk found the crates");
    assert!(
        report.new_findings.is_empty(),
        "non-baselined findings — fix them or consciously baseline them:\n{}",
        report
            .new_findings
            .iter()
            .map(|f| format!(
                "  {}:{}: [{}] fingerprint={} {}",
                f.file, f.line, f.rule, f.fingerprint, f.note
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries — delete them from lint-baseline.toml:\n{}",
        report
            .stale_baseline
            .iter()
            .map(|e| format!("  {} {} fingerprint={}", e.file, e.rule, e.fingerprint))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_registered_entry_point_and_sink_resolves_in_the_real_tree() {
    let root = workspace_root();
    let sources = webcap_lint::workspace_sources(&root).expect("workspace walk");
    let units: Vec<SourceUnit> = sources
        .iter()
        .map(|(rel, abs)| {
            let text = fs::read_to_string(abs).unwrap_or_else(|e| panic!("{rel}: {e}"));
            SourceUnit::new(rel, &text)
        })
        .collect();
    let g = CallGraph::build(&units);
    assert_eq!(
        taint::unresolved(&g, ENTRY_POINTS),
        Vec::<(String, String)>::new(),
        "renamed/removed entry point: update taint::ENTRY_POINTS"
    );
    assert_eq!(
        taint::unresolved(&g, SINKS),
        Vec::<(String, String)>::new(),
        "renamed/removed sink: update taint::SINKS"
    );
}

#[test]
fn injected_finding_fails_a_scratch_workspace() {
    // A minimal workspace with one bad file; unique per test process so
    // parallel runs never collide.
    let scratch =
        std::env::temp_dir().join(format!("webcap-lint-selfcheck-{}", std::process::id()));
    let src_dir = scratch.join("crates").join("net").join("src");
    fs::create_dir_all(&src_dir).expect("scratch workspace dirs");
    fs::write(
        src_dir.join("lib.rs"),
        "//! Scratch crate.\n\
         pub fn run_collector(v: Vec<u32>) -> u32 {\n\
             helper(&v)\n\
         }\n\
         fn helper(v: &[u32]) -> u32 {\n\
             let first = *v.first().unwrap();\n\
             first + v[1]\n\
         }\n\
         fn unreachable_helper(v: &[u32]) -> u32 {\n\
             v[0]\n\
         }\n",
    )
    .expect("scratch source");

    let report = lint_workspace(&scratch, &Baseline::default()).expect("scratch lints");
    assert!(report.failed(), "injected snippet must fail the run");
    let got: Vec<(&str, u32, &[String])> = report
        .new_findings
        .iter()
        .map(|f| (f.rule, f.line, f.chain.as_slice()))
        .collect();
    // Both panic sites in `helper` are entry-reachable with the same
    // two-call chain; `unreachable_helper` is proved away.
    let chain = ["run_collector".to_string(), "helper".to_string()];
    assert_eq!(
        got,
        vec![
            ("panic-reachability", 6, &chain[..]),
            ("panic-reachability", 7, &chain[..]),
        ]
    );
    let prints: Vec<&str> = report
        .new_findings
        .iter()
        .map(|f| f.fingerprint.as_str())
        .collect();
    assert!(
        prints.iter().all(|p| p.len() == 16) && prints[0] != prints[1],
        "same-line duplicate sites must get distinct fingerprints: {prints:?}"
    );

    // Baselining exactly those findings turns the same workspace green.
    let baseline = Baseline::parse(&Baseline::render(&report.new_findings, &Baseline::default()))
        .expect("rendered baseline parses");
    let green = lint_workspace(&scratch, &baseline).expect("scratch lints again");
    assert!(!green.failed(), "baselined findings must not fail");
    assert_eq!(green.baselined_findings.len(), 2);
    assert!(green.stale_baseline.is_empty());

    fs::remove_dir_all(&scratch).ok();
}
