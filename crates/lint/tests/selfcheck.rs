//! Self-check: the committed workspace must be clean modulo the
//! committed `lint-baseline.toml`, and injecting a known-bad snippet
//! into a scratch workspace must produce a failing report — the two
//! directions of the CI gate.

use std::fs;
use std::path::{Path, PathBuf};

use webcap_lint::{lint_workspace, Baseline};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_is_clean_modulo_the_committed_baseline() {
    let root = workspace_root();
    let baseline_path = root.join("lint-baseline.toml");
    let text = fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    let report = lint_workspace(&root, &baseline).expect("workspace lints");
    assert!(report.files_scanned > 10, "workspace walk found the crates");
    assert!(
        report.new_findings.is_empty(),
        "non-baselined findings — fix them or consciously baseline them:\n{}",
        report
            .new_findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.note))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries — delete them from lint-baseline.toml:\n{}",
        report
            .stale_baseline
            .iter()
            .map(|e| format!("  {}:{}: {}", e.file, e.line, e.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn injected_finding_fails_a_scratch_workspace() {
    // A minimal workspace with one bad file; unique per test process so
    // parallel runs never collide.
    let scratch =
        std::env::temp_dir().join(format!("webcap-lint-selfcheck-{}", std::process::id()));
    let src_dir = scratch.join("crates").join("core").join("src");
    fs::create_dir_all(&src_dir).expect("scratch workspace dirs");
    fs::write(
        src_dir.join("lib.rs"),
        "//! Scratch crate.\npub fn f(v: Vec<u32>) -> u32 { v.first().unwrap() + v[1] }\n",
    )
    .expect("scratch source");

    let report = lint_workspace(&scratch, &Baseline::default()).expect("scratch lints");
    assert!(report.failed(), "injected snippet must fail the run");
    let rules: Vec<(&str, u32)> = report
        .new_findings
        .iter()
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(rules, vec![("panic-indexing", 2), ("panic-unwrap", 2)]);

    // Baselining exactly those findings turns the same workspace green.
    let baseline =
        Baseline::parse(&Baseline::render(&report.new_findings)).expect("rendered baseline parses");
    let green = lint_workspace(&scratch, &baseline).expect("scratch lints again");
    assert!(!green.failed(), "baselined findings must not fail");
    assert_eq!(green.baselined_findings.len(), 2);
    assert!(green.stale_baseline.is_empty());

    fs::remove_dir_all(&scratch).ok();
}
