//! Fleet back-haul chaos across the full scenario library.
//!
//! Every capacity-search scenario runs at K = 1, 2, and 4 collectors;
//! the captured digest stream is then replayed into the
//! partition-aware merge under three chaos families:
//!
//! * **partition** — a scripted link partition of the collector owning
//!   the Db tier, with the liveness clock armed: delivery is delayed
//!   but lossless, so the outcome must be byte-identical to the
//!   unfaulted baseline while the audit trail walks
//!   Partitioned → Rejoining → Live.
//! * **corruption** — heavy bit flips, truncations, and drops: the
//!   outcome must be byte-identical to a clean merge of exactly the
//!   surviving frames, and the lost set must match the analytic
//!   prediction frame-for-frame.
//! * **reorder/dup** — duplicated and reordered digests: lossless by
//!   construction, so byte-identical to the baseline.
//!
//! On divergence the transcripts are spilled to `target/tmp/fleet` for
//! CI to attach as artifacts.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::sync::OnceLock;

use webcap_chaosnet::{
    collect_digest_stream, merge_stream, without_frames, ChaosProfile, ChaosSchedule, DigestStream,
    FrameFault, Partition,
};
use webcap_core::{CapacityMeter, MeterConfig};
use webcap_fleet::{
    AgentId, CollectorLiveness, FleetTopology, MergeLivenessConfig, MergeOutcome, ShardMap,
};
use webcap_net::WireCodec;
use webcap_sim::TierId;

const SCENARIOS: [&str; 6] = [
    "steady-shopping",
    "flash-crowd",
    "diurnal-ramp",
    "mix-drift",
    "slow-leak",
    "replica-failure",
];
const PROBE_EBS: u32 = 64;

fn meter() -> &'static CapacityMeter {
    static METER: OnceLock<CapacityMeter> = OnceLock::new();
    METER.get_or_init(|| {
        CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("meter trains")
    })
}

/// The scenario's probe stream and captured digest back-haul at fleet
/// width `k`, over the binary wire dialect.
fn captured_stream(name: &str, k: u32) -> (DigestStream, FleetTopology) {
    let meter = meter();
    let scenario = webcap_capsearch::scenario::find(name).expect("library scenario");
    let mut cfg = meter.config().sim.clone();
    cfg.seed = scenario.seed;
    let samples = webcap_sim::run(cfg, scenario.program(PROBE_EBS)).samples;
    let schedules = scenario.schedules();
    let topology = FleetTopology::two_tier(&scenario.name, scenario.seed, k);
    let stream = collect_digest_stream(
        meter,
        &samples,
        scenario.seed,
        &schedules,
        &topology,
        WireCodec::Binary,
    )
    .expect("digest stream captures");
    (stream, topology)
}

/// The decision-bearing slice of a merge outcome: what "byte-identical"
/// quantifies over. Liveness audit fields are deliberately excluded —
/// they must be additive, never outcome-bearing.
fn render(outcome: &MergeOutcome) -> String {
    serde_json::to_string(&(
        &outcome.decisions,
        &outcome.poisoned_windows,
        &outcome.incomplete_windows,
    ))
    .expect("outcome serializes")
}

fn assert_identical(name: &str, k: u32, family: &str, got: &MergeOutcome, want: &MergeOutcome) {
    let (got_render, want_render) = (render(got), render(want));
    if got_render != want_render {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/fleet");
        fs::create_dir_all(&dir).ok();
        fs::write(dir.join(format!("{name}-k{k}-{family}-chaos.json")), &got_render).ok();
        fs::write(
            dir.join(format!("{name}-k{k}-{family}-oracle.json")),
            &want_render,
        )
        .ok();
        panic!(
            "{name} K={k} {family}: outcomes diverge; transcripts left in {}",
            dir.display()
        );
    }
}

/// The analytically predicted lost-frame indices for a roll-fault
/// schedule (no partition): exactly the frames whose per-collector
/// frame index rolls a destructive fault.
fn predicted_lost(stream: &DigestStream, chaos: &ChaosSchedule) -> Vec<usize> {
    let mut per_conn: BTreeMap<u32, u64> = BTreeMap::new();
    let mut lost = Vec::new();
    for (index, frame) in stream.frames.iter().enumerate() {
        let counter = per_conn.entry(frame.collector).or_insert(0);
        let idx = *counter;
        *counter += 1;
        if matches!(
            chaos.fleet_fault(frame.collector, idx, frame.tick),
            FrameFault::Corrupt | FrameFault::Truncate | FrameFault::Drop
        ) {
            lost.push(index);
        }
    }
    lost
}

/// Partition family: delayed but lossless delivery with the liveness
/// clock armed must be byte-neutral, and the audit trail must show the
/// victim partitioning and rejoining to Live.
#[test]
fn partition_family_is_byte_neutral_with_full_rejoin_audit() {
    let meter = meter();
    for name in SCENARIOS {
        let scenario = webcap_capsearch::scenario::find(name).expect("library scenario");
        for k in [1u32, 2, 4] {
            let (stream, topology) = captured_stream(name, k);
            let (baseline, baseline_lost) =
                merge_stream(meter, &stream, None, MergeLivenessConfig::default())
                    .expect("baseline merges");
            assert!(baseline_lost.is_empty());

            let victim = ShardMap::new(topology.seed, topology.collectors)
                .owner(AgentId::primary(TierId::Db));
            let chaos = ChaosSchedule::new(
                scenario.seed,
                ChaosProfile {
                    split_per_mille: 100,
                    stall_per_mille: 150,
                    partition: Some(Partition {
                        conn: victim,
                        from: 40,
                        until: 160,
                    }),
                    ..ChaosProfile::quiet()
                },
            );
            let liveness = MergeLivenessConfig {
                deadline_ticks: 100,
                rejoin_clean_frames: 2,
            };
            let (outcome, lost) =
                merge_stream(meter, &stream, Some(&chaos), liveness).expect("chaos merges");
            assert!(
                lost.is_empty(),
                "{name} K={k}: a partition delays frames, it never destroys them"
            );
            assert_identical(name, k, "partition", &outcome, &baseline);

            // The victim flushes at least once per completed window, so
            // any stream long enough for the partition to straddle the
            // liveness deadline must produce the full audit walk.
            if stream.last_tick >= 160 {
                assert!(
                    outcome
                        .partition_events
                        .iter()
                        .any(|e| e.collector == victim
                            && e.to == CollectorLiveness::Partitioned),
                    "{name} K={k}: the victim's silence must be flagged Partitioned"
                );
                assert!(
                    outcome
                        .partition_events
                        .iter()
                        .any(|e| e.collector == victim && e.to == CollectorLiveness::Rejoining),
                    "{name} K={k}: the heal burst must start a rejoin"
                );
                assert!(
                    !outcome.partitioned.contains(&victim),
                    "{name} K={k}: the victim must re-earn Live through the clean streak"
                );
            }
        }
    }
}

/// The liveness clock is audit-only: the same chaos replay with the
/// clock armed and disarmed produces identical decision bytes.
#[test]
fn partition_liveness_audit_is_outcome_neutral() {
    let meter = meter();
    let (stream, topology) = captured_stream("steady-shopping", 2);
    let victim =
        ShardMap::new(topology.seed, topology.collectors).owner(AgentId::primary(TierId::Db));
    let chaos = ChaosSchedule::new(
        5,
        ChaosProfile {
            partition: Some(Partition {
                conn: victim,
                from: 40,
                until: 160,
            }),
            ..ChaosProfile::quiet()
        },
    );
    let armed = MergeLivenessConfig {
        deadline_ticks: 100,
        rejoin_clean_frames: 2,
    };
    let (with_clock, _) = merge_stream(meter, &stream, Some(&chaos), armed).expect("armed merges");
    let (without_clock, _) =
        merge_stream(meter, &stream, Some(&chaos), MergeLivenessConfig::default())
            .expect("disarmed merges");
    assert_eq!(render(&with_clock), render(&without_clock));
    assert!(
        without_clock.partition_events.is_empty(),
        "a disarmed clock must record nothing"
    );
}

/// Corruption family: the outcome must equal a clean merge of exactly
/// the surviving frames, and the lost set must match the analytic
/// prediction.
#[test]
fn corruption_family_matches_kept_set_oracle() {
    let meter = meter();
    let mut total_lost = 0usize;
    for name in SCENARIOS {
        let scenario = webcap_capsearch::scenario::find(name).expect("library scenario");
        for k in [1u32, 2, 4] {
            let (stream, _topology) = captured_stream(name, k);
            let chaos =
                ChaosSchedule::new(scenario.seed + 1, ChaosProfile::corruption_heavy());
            let (outcome, lost) =
                merge_stream(meter, &stream, Some(&chaos), MergeLivenessConfig::default())
                    .expect("chaos merges");

            let got: Vec<usize> = lost.iter().map(|l| l.index).collect();
            assert_eq!(
                got,
                predicted_lost(&stream, &chaos),
                "{name} K={k}: the lost set must match the analytic prediction"
            );
            total_lost += lost.len();

            let kept = without_frames(&stream, &lost);
            let (oracle, oracle_lost) =
                merge_stream(meter, &kept, None, MergeLivenessConfig::default())
                    .expect("kept-set oracle merges");
            assert!(oracle_lost.is_empty());
            assert_identical(name, k, "corruption", &outcome, &oracle);
        }
    }
    assert!(
        total_lost > 0,
        "the corruption family must actually destroy frames somewhere in the matrix"
    );
}

/// Reorder/duplicate family: lossless by construction, so the merge —
/// a pure function of the ingested digest *set* — must be
/// byte-identical to the unfaulted baseline.
#[test]
fn reorder_dup_family_is_byte_identical_to_baseline() {
    let meter = meter();
    for name in SCENARIOS {
        let scenario = webcap_capsearch::scenario::find(name).expect("library scenario");
        for k in [1u32, 2, 4] {
            let (stream, _topology) = captured_stream(name, k);
            let (baseline, _) =
                merge_stream(meter, &stream, None, MergeLivenessConfig::default())
                    .expect("baseline merges");
            let chaos = ChaosSchedule::new(
                scenario.seed + 2,
                ChaosProfile {
                    dup_per_mille: 120,
                    split_per_mille: 120,
                    reorder_per_mille: 150,
                    ..ChaosProfile::quiet()
                },
            );
            let (outcome, lost) =
                merge_stream(meter, &stream, Some(&chaos), MergeLivenessConfig::default())
                    .expect("chaos merges");
            assert!(
                lost.is_empty(),
                "{name} K={k}: duplication and reordering never lose frames"
            );
            assert_identical(name, k, "reorder-dup", &outcome, &baseline);
        }
    }
}
