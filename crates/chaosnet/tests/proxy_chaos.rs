//! Real-socket chaos: a live agent/collector deployment through the
//! byte-interposing TCP proxy must be byte-identical to a direct one.
//!
//! The proxy applies deterministic pacing faults — split writes at
//! schedule-drawn chunk sizes and short stalls — to the client→upstream
//! byte stream. Bytes are never altered, so the collector's event loop
//! and incremental frame reassembly are exercised at arbitrary real
//! TCP fragment boundaries while the outcome contract stays exact.

use webcap_chaosnet::{spawn_chaos_proxy, ChaosProfile, ChaosSchedule};
use webcap_core::{CapacityMeter, MeterConfig};
use webcap_net::collector::{run_collector, CollectorConfig, CollectorReport};
use webcap_net::source::ScriptedSource;
use webcap_net::{run_agent, AgentConfig, Endpoint, Listener, WireCodec};
use webcap_sim::{Simulation, SystemSample, TierId};
use webcap_tpcw::{Mix, TrafficProgram};

const BASE_SEED: u64 = 17;
const TOTAL_SAMPLES: usize = 240;

fn trained_meter() -> CapacityMeter {
    static METER: std::sync::OnceLock<CapacityMeter> = std::sync::OnceLock::new();
    METER
        .get_or_init(|| {
            CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("test meter trains")
        })
        .clone()
}

fn steady_samples(meter: &CapacityMeter) -> Vec<SystemSample> {
    let mut sim = meter.config().sim.clone();
    sim.seed = 400;
    let program = TrafficProgram::steady(Mix::ordering(), 60, TOTAL_SAMPLES as f64);
    let samples = Simulation::new(sim, program).run().samples;
    assert_eq!(samples.len(), TOTAL_SAMPLES);
    samples
}

/// Run a live deployment, optionally through the chaos proxy, and
/// return the collector's report.
fn deploy(
    meter: &CapacityMeter,
    samples: &[SystemSample],
    chaos: Option<ChaosSchedule>,
) -> CollectorReport {
    let listener =
        Listener::bind(&Endpoint::parse("127.0.0.1:0").expect("tcp endpoint")).expect("binds");
    let collector_endpoint = listener.local_endpoint().expect("local endpoint");
    let proxy = chaos.map(|schedule| {
        spawn_chaos_proxy(&collector_endpoint, schedule).expect("proxy starts")
    });
    let dial = proxy
        .as_ref()
        .map(|p| p.endpoint())
        .unwrap_or(collector_endpoint);

    let hpc_model = meter.config().hpc_model.clone();
    let cfg = CollectorConfig::default();
    let report = std::thread::scope(|scope| {
        let meter_clone = meter.clone();
        let cfg_ref = &cfg;
        let collector =
            scope.spawn(move || run_collector(listener, meter_clone, cfg_ref, |_, _| {}));
        let mut agents = Vec::new();
        for tier in TierId::ALL {
            let dial = dial.clone();
            let hpc_model = hpc_model.clone();
            let tier_samples = samples.to_vec();
            agents.push(scope.spawn(move || {
                let mut agent_cfg = AgentConfig::new(tier, dial, BASE_SEED);
                agent_cfg.codec = WireCodec::Binary;
                let mut source = ScriptedSource::new(tier, tier_samples);
                run_agent(&agent_cfg, hpc_model, &mut source)
            }));
        }
        for agent in agents {
            agent.join().expect("agent thread").expect("agent runs");
        }
        collector.join().expect("collector thread").expect("collector runs")
    });
    if let Some(p) = proxy {
        p.stop();
    }
    report
}

#[test]
fn proxied_deployment_is_byte_identical_to_direct() {
    let meter = trained_meter();
    let samples = steady_samples(&meter);

    let direct = deploy(&meter, &samples, None);
    let chaos = ChaosSchedule::new(
        23,
        ChaosProfile {
            split_per_mille: 500,
            stall_per_mille: 80,
            ..ChaosProfile::quiet()
        },
    );
    let proxied = deploy(&meter, &samples, Some(chaos));

    let render = |r: &CollectorReport| {
        serde_json::to_string(&(&r.decisions, &r.poisoned_windows)).expect("report serializes")
    };
    assert_eq!(
        render(&direct),
        render(&proxied),
        "pacing-only interposition must not change a single byte of the outcome"
    );
    assert!(
        !direct.decisions.is_empty(),
        "the clean run must actually emit decisions"
    );
}
