//! Chaos-mesh equivalence against the analytic loopback oracle.
//!
//! Each test runs the full telemetry plane (encoded wire frames →
//! incremental decoder → supervised collector) under a seeded chaos
//! schedule, compiles the schedule into the fault vocabulary the
//! loopback oracle understands, and demands:
//!
//! * the emitted decision windows are **exactly** the analytically
//!   predicted survivor set (intersection over tiers),
//! * the decisions on those windows are **byte-identical** (JSON) to an
//!   in-process replay of the same samples,
//! * the quarantined set is **exactly** the predicted poison union.
//!
//! Rates here are deliberately lighter than the fleet presets: the
//! agent plane delivers one frame per second per tier, so heavy
//! destruction would poison every window and make the equality vacuous.
//! A non-triviality assertion at the end of each family guards against
//! exactly that.

use std::collections::BTreeSet;

use webcap_chaosnet::{run_net_mesh, ChaosProfile, ChaosSchedule, Partition, SessionDecoder};
use webcap_core::{AdmissionConfig, AdmissionController, CapacityMeter, MeterConfig};
use webcap_net::loopback::{predicted_windows_for_schedule, replay_windows};
use webcap_net::{write_frame_codec, AppStats, Frame, WireCodec, WireSample};
use webcap_sim::{Simulation, SystemSample, TierId, TierSample};
use webcap_tpcw::{Mix, TrafficProgram};

const BASE_SEED: u64 = 17;
const TOTAL_SAMPLES: usize = 240;

fn trained_meter() -> CapacityMeter {
    static METER: std::sync::OnceLock<CapacityMeter> = std::sync::OnceLock::new();
    METER
        .get_or_init(|| {
            CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("test meter trains")
        })
        .clone()
}

fn steady_samples(meter: &CapacityMeter) -> Vec<SystemSample> {
    let mut sim = meter.config().sim.clone();
    sim.seed = 400;
    let program = TrafficProgram::steady(Mix::ordering(), 60, TOTAL_SAMPLES as f64);
    let samples = Simulation::new(sim, program).run().samples;
    assert_eq!(samples.len(), TOTAL_SAMPLES);
    samples
}

fn admission() -> AdmissionController {
    AdmissionController::try_new(AdmissionConfig::default(), 400).expect("valid config")
}

fn decisions_json(decisions: &[(i64, webcap_core::OnlineDecision)]) -> String {
    serde_json::to_string(decisions).expect("decisions serialize")
}

/// Run one (profile, codec, seed) cell and check the full oracle
/// contract; returns `(survivor count, poisoned count)` so the family
/// test can assert non-triviality in aggregate.
fn check_cell(profile: ChaosProfile, codec: WireCodec, seed: u64) -> (usize, usize) {
    let meter = trained_meter();
    let window_len = meter.config().window_len;
    let samples = steady_samples(&meter);
    let chaos = ChaosSchedule::new(seed, profile);

    let outcome =
        run_net_mesh(&meter, &samples, BASE_SEED, &chaos, codec, admission()).expect("mesh runs");

    // Analytic oracle: per-tier survivors intersect, poisons union.
    let mut survivors: Option<BTreeSet<i64>> = None;
    let mut poisoned: BTreeSet<i64> = BTreeSet::new();
    for schedule in &outcome.schedules {
        let (s, p) =
            predicted_windows_for_schedule(samples.len() as u64, schedule, window_len, 1);
        poisoned.extend(p);
        survivors = Some(match survivors {
            Some(acc) => acc.intersection(&s).copied().collect(),
            None => s,
        });
    }
    let survivors = survivors.unwrap_or_default();

    let emitted: BTreeSet<i64> = outcome.report.decisions.iter().map(|(w, _)| *w).collect();
    assert_eq!(
        emitted, survivors,
        "seed {seed} {codec:?}: emitted windows must be exactly the predicted survivors"
    );
    let expected = replay_windows(&meter, &samples, BASE_SEED, &survivors);
    assert_eq!(
        decisions_json(&outcome.report.decisions),
        decisions_json(&expected),
        "seed {seed} {codec:?}: surviving decisions must be byte-identical to the replay oracle"
    );
    let quarantined: BTreeSet<i64> = outcome.report.poisoned_windows.iter().copied().collect();
    assert_eq!(
        quarantined, poisoned,
        "seed {seed} {codec:?}: quarantine must be exactly the predicted poison union"
    );
    (survivors.len(), poisoned.len())
}

fn check_family(profile: ChaosProfile, name: &str) {
    let mut survivors = 0usize;
    let mut poisoned = 0usize;
    let mut injected_any = false;
    for codec in [WireCodec::Json, WireCodec::Binary] {
        for seed in [11u64, 12, 13] {
            let (s, p) = check_cell(profile.clone(), codec, seed);
            survivors += s;
            poisoned += p;
            injected_any = true;
        }
    }
    assert!(injected_any);
    assert!(
        survivors > 0,
        "{name}: the family must leave some windows intact or the equality is vacuous"
    );
    assert!(
        poisoned > 0,
        "{name}: the family must actually poison something"
    );
}

/// Corruption family: bit flips, header-rewritten truncations, drops,
/// and split writes — the decoder-hostile end of the spectrum.
#[test]
fn corruption_family_matches_oracle_byte_for_byte() {
    check_family(
        ChaosProfile {
            corrupt_per_mille: 8,
            truncate_per_mille: 6,
            drop_per_mille: 6,
            split_per_mille: 200,
            ..ChaosProfile::quiet()
        },
        "corruption",
    );
}

/// Stall/partition family: pacing stalls, split writes, and a scripted
/// 30-second partition of the App connection.
#[test]
fn stall_partition_family_matches_oracle_byte_for_byte() {
    check_family(
        ChaosProfile {
            drop_per_mille: 4,
            split_per_mille: 100,
            stall_per_mille: 150,
            partition: Some(Partition {
                conn: 0,
                from: 70,
                until: 100,
            }),
            ..ChaosProfile::quiet()
        },
        "stall-partition",
    );
}

/// Reorder/duplicate family: adjacent swaps and duplicated frames the
/// assembler must absorb as anomalies.
#[test]
fn reorder_dup_family_matches_oracle_byte_for_byte() {
    check_family(
        ChaosProfile {
            drop_per_mille: 4,
            dup_per_mille: 40,
            split_per_mille: 120,
            reorder_per_mille: 15,
            ..ChaosProfile::quiet()
        },
        "reorder-dup",
    );
}

/// Duplicated and reordered frames are anomalies, not silent data: the
/// report must count them.
#[test]
fn duplicates_and_reorders_are_counted_as_anomalies() {
    let meter = trained_meter();
    let samples = steady_samples(&meter);
    let chaos = ChaosSchedule::new(
        21,
        ChaosProfile {
            dup_per_mille: 80,
            reorder_per_mille: 40,
            ..ChaosProfile::quiet()
        },
    );
    let outcome = run_net_mesh(
        &meter,
        &samples,
        BASE_SEED,
        &chaos,
        WireCodec::Binary,
        admission(),
    )
    .expect("mesh runs");
    assert!(
        !outcome.injected.is_empty(),
        "the schedule must actually inject faults"
    );
    assert!(
        outcome.report.anomalies > 0,
        "late duplicates must surface as anomalies"
    );
}

/// Hostile-byte sweep: flip every single byte position of a binary
/// `Sample` frame and push the result through the incremental decoder.
/// Any typed outcome (error, incomplete, or an accidental valid decode)
/// is acceptable; a panic is not.
#[test]
fn single_byte_flips_never_panic_the_binary_decoder() {
    let ws = WireSample {
        seq: 7,
        t_s: 8.0,
        interval_s: 1.0,
        tier: TierSample {
            utilization: 0.3,
            delivered_work_s: 0.3,
            arrivals: 20,
            completions: 20,
            ..TierSample::default()
        },
        hpc: vec![0.5; 12],
        os: vec![0.1; 64],
        app: Some(AppStats {
            ebs_target: 10,
            ebs_active: 10,
            mix_id: webcap_tpcw::MixId::Ordering,
            issued: 20,
            issued_browse: 10,
            completed: 20,
            completed_browse: 10,
            response_time_sum_s: 2.0,
            response_time_max_s: 0.4,
            in_flight: 1,
            response_times: webcap_sim::RtHistogram::new(),
        }),
    };
    let mut scratch = Vec::new();
    let mut encoded = Vec::new();
    write_frame_codec(
        &mut encoded,
        &Frame::Sample(ws),
        WireCodec::Binary,
        &mut scratch,
    )
    .expect("sample encodes");

    for pos in 0..encoded.len() {
        let mut mangled = encoded.clone();
        mangled[pos] ^= 0xff;
        let mut decoder = SessionDecoder::new();
        decoder.feed(&mangled);
        // The only failure mode of interest is a panic; both Ok and Err
        // are legitimate typed outcomes.
        let _ = decoder.drain();
    }
}
