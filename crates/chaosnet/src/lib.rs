//! # webcap-chaosnet — deterministic network chaos mesh
//!
//! The telemetry plane (`webcap-net`) and the fleet back-haul
//! (`webcap-fleet`) both claim strong invariants: a collector never
//! emits a decision from a window touched by loss, and a merge outcome
//! is a pure function of the set of ingested digests. This crate
//! attacks those claims with *seeded, reproducible* network hostility —
//! every fault is a pure function of `(seed, connection, frame index)`,
//! so any divergence is replayable from its seed alone.
//!
//! Three planes of attack:
//!
//! * [`schedule`] — the deterministic fault schedule: per-mille rates
//!   for bit flips, truncations, drops, duplicates, split writes,
//!   stalls, and reorders, plus scripted link partitions; compiled into
//!   the telemetry plane's `FaultSchedule` vocabulary so the loopback
//!   oracle predicts the exact surviving window set.
//! * [`mesh`] — the in-process byte interposer between encoded wire
//!   frames and a supervised collector: every delivered byte passes
//!   through the real incremental frame extractor, every decode failure
//!   kills the session exactly as the real event loop would.
//! * [`fleetmesh`] — the same idea over the fleet digest back-haul,
//!   replaying a captured digest stream into the partition-aware merge
//!   under chaos, with the liveness clock watching scripted partitions
//!   heal through the hysteretic rejoin.
//! * [`proxy`] — a real-socket TCP interposer applying outcome-neutral
//!   pacing faults (split writes, stalls), proving the live collector
//!   event loop digests arbitrarily fragmented byte streams without
//!   drift.
//!
//! The headline theorem, enforced by the equivalence suites: for every
//! capacity-search scenario at every fleet width, a seeded chaos
//! schedule produces byte-identical survivor decisions to the unfaulted
//! oracle, with exactly the analytically-predicted quarantine set.

pub mod fleetmesh;
pub mod mesh;
pub mod proxy;
pub mod schedule;

pub use fleetmesh::{
    collect_digest_stream, merge_stream, without_frames, DigestStream, FleetMeshError, LostFrame,
    TimedFrame,
};
pub use mesh::{run_net_mesh, MeshError, MeshOutcome, SessionDecoder};
pub use proxy::{spawn_chaos_proxy, ProxyHandle};
pub use schedule::{corrupt_frame, ChaosProfile, ChaosSchedule, FrameFault, Partition};
