//! The in-process chaos mesh over the agent → collector telemetry
//! plane.
//!
//! [`run_net_mesh`] encodes each tier's per-second samples as real v3
//! wire frames (JSON or binary, caller's choice), interposes a
//! [`ChaosSchedule`] between the encoded bytes and a
//! [`SupervisedCollector`], and returns the supervised report together
//! with the schedule *compiled* into the telemetry plane's fault
//! vocabulary. The equivalence suite then checks that the surviving
//! decision set is byte-identical to the loopback oracle's analytic
//! prediction — under bit flips, truncations, drops, duplicates, split
//! writes, reorders, and partitions.
//!
//! The mesh drives the collector through the exact session surface the
//! real event loop uses (`on_session_start` / `on_sample` /
//! `on_session_abort` / `on_bye`), and every delivered byte passes
//! through the real incremental frame extractor, so a corrupted or
//! truncated frame exercises the same typed-error path a hostile peer
//! would.

use std::fmt;

use webcap_core::{AdmissionController, CapacityMeter};
use webcap_net::collector::CollectorConfig;
use webcap_net::frame::{try_extract_frame, write_frame_codec, AppStats, Frame, FrameError};
use webcap_net::source::TierSampler;
use webcap_net::supervisor::{SupervisedCollector, SupervisedReport, SupervisorConfig};
use webcap_net::{FaultSchedule, WireCodec, WireSample};
use webcap_sim::{SystemSample, TierId};

use crate::schedule::{corrupt_frame, ChaosSchedule, FrameFault};

/// Error from a chaos-mesh run. Carries a human-readable description;
/// the mesh itself is deterministic, so any error is a programming or
/// configuration mistake, not a flake.
#[derive(Debug)]
pub struct MeshError(pub String);

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chaos mesh: {}", self.0)
    }
}

impl std::error::Error for MeshError {}

/// An incremental per-session frame decoder: the same
/// accumulate-and-extract loop the collector's event loop runs, exposed
/// so the mesh (and tests) can feed bytes at arbitrary split points.
#[derive(Debug, Default)]
pub struct SessionDecoder {
    buf: Vec<u8>,
}

impl SessionDecoder {
    /// A decoder with an empty reassembly buffer.
    pub fn new() -> SessionDecoder {
        SessionDecoder::default()
    }

    /// Append raw bytes from the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extract every complete frame currently buffered. A decode error
    /// clears the buffer (the session is about to die anyway) and
    /// surfaces the typed [`FrameError`].
    pub fn drain(&mut self) -> Result<Vec<Frame>, FrameError> {
        let mut out = Vec::new();
        loop {
            match try_extract_frame(&self.buf) {
                Ok(Some((frame, used))) => {
                    out.push(frame);
                    self.buf.drain(..used);
                }
                Ok(None) => break,
                Err(e) => {
                    self.buf.clear();
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Discard any partially-buffered bytes (session teardown).
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Bytes currently awaiting a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// What a chaos-mesh run produced.
#[derive(Debug)]
pub struct MeshOutcome {
    /// The supervised collector's report (decisions, quarantine,
    /// anomalies, health trace).
    pub report: SupervisedReport,
    /// The chaos schedule compiled per tier into the telemetry plane's
    /// fault vocabulary, ready for the loopback oracle.
    pub schedules: [FaultSchedule; 2],
    /// Every non-trivial fault actually injected, in delivery order.
    pub injected: Vec<(TierId, u64, FrameFault)>,
}

/// Per-tier delivery state while the mesh drives the collector.
struct TierState {
    tier: TierId,
    needs_session: bool,
    decoder: SessionDecoder,
}

impl TierState {
    fn new(tier: TierId) -> TierState {
        TierState {
            tier,
            needs_session: false,
            decoder: SessionDecoder::new(),
        }
    }
}

/// Encode one tier's sample stream as individual `Sample` wire frames
/// in the chosen codec, one byte vector per sequence number.
fn encode_tier(
    meter: &CapacityMeter,
    samples: &[SystemSample],
    base_seed: u64,
    tier: TierId,
    codec: WireCodec,
) -> Result<Vec<Vec<u8>>, MeshError> {
    let hpc_model = meter.config().hpc_model.clone();
    let mut sampler = TierSampler::new(tier, hpc_model, base_seed);
    let mut scratch = Vec::new();
    let mut out = Vec::with_capacity(samples.len());
    for (i, s) in samples.iter().enumerate() {
        let seq = i as u64;
        let (hpc, os) = sampler.rows(seq, s.tier(tier), s.interval_s);
        let ws = WireSample {
            seq,
            t_s: s.t_s,
            interval_s: s.interval_s,
            tier: s.tier(tier).clone(),
            hpc,
            os,
            app: (tier == TierId::App).then(|| AppStats::from_sample(s)),
        };
        let mut buf = Vec::new();
        write_frame_codec(&mut buf, &Frame::Sample(ws), codec, &mut scratch)
            .map_err(|e| MeshError(format!("encode {tier:?} seq {seq}: {e}")))?;
        out.push(buf);
    }
    Ok(out)
}

fn ensure_session(sc: &mut SupervisedCollector, state: &mut TierState) {
    if state.needs_session {
        sc.on_session_start(state.tier);
        state.needs_session = false;
    }
}

fn abort_session(sc: &mut SupervisedCollector, state: &mut TierState) {
    if !state.needs_session {
        sc.on_session_abort(state.tier);
    }
    state.decoder.reset();
    state.needs_session = true;
}

fn deliver_frames(sc: &mut SupervisedCollector, state: &TierState, frames: Vec<Frame>) {
    for frame in frames {
        if let Frame::Sample(ws) = frame {
            sc.on_sample(state.tier, ws);
        }
    }
}

/// Deliver one (possibly mutilated) encoded frame to the collector
/// through the incremental decoder, honouring session semantics: a
/// decode failure kills the session exactly as the real event loop
/// would.
fn deliver_bytes(sc: &mut SupervisedCollector, state: &mut TierState, bytes: &[u8]) {
    ensure_session(sc, state);
    state.decoder.feed(bytes);
    match state.decoder.drain() {
        Ok(frames) => deliver_frames(sc, state, frames),
        Err(_) => abort_session(sc, state),
    }
}

/// Deliver one tier's frame for `seq`, applying the scheduled fault.
#[allow(clippy::too_many_arguments)]
fn deliver_tier(
    sc: &mut SupervisedCollector,
    state: &mut TierState,
    frames: &[Vec<u8>],
    seq: u64,
    total: u64,
    chaos: &ChaosSchedule,
    skip_next: &mut bool,
    injected: &mut Vec<(TierId, u64, FrameFault)>,
) -> Result<(), MeshError> {
    if *skip_next {
        // This frame was already delivered early by a reorder swap.
        *skip_next = false;
        return Ok(());
    }
    let conn = state.tier.index() as u32;
    let fault = chaos.effective_fault(conn, seq, total);
    if fault != FrameFault::None {
        injected.push((state.tier, seq, fault));
    }
    let Some(bytes) = frames.get(seq as usize) else {
        return Err(MeshError(format!("missing frame {seq} for {:?}", state.tier)));
    };
    match fault {
        FrameFault::None | FrameFault::Stall => deliver_bytes(sc, state, bytes),
        FrameFault::Drop => {}
        FrameFault::Partitioned => {
            // The first black-holed frame kills the session; the rest
            // of the partition is silence.
            if !state.needs_session {
                abort_session(sc, state);
            }
        }
        FrameFault::Corrupt => {
            let mangled = corrupt_frame(bytes);
            ensure_session(sc, state);
            state.decoder.feed(&mangled);
            match state.decoder.drain() {
                // A flipped magic byte cannot decode; the Ok arm is
                // defensive totality, not a reachable path.
                Ok(frames) => deliver_frames(sc, state, frames),
                Err(_) => abort_session(sc, state),
            }
        }
        FrameFault::Truncate => {
            let mangled = chaos.truncate_frame(conn, seq, bytes);
            ensure_session(sc, state);
            state.decoder.feed(&mangled);
            match state.decoder.drain() {
                Ok(frames) => deliver_frames(sc, state, frames),
                Err(_) => abort_session(sc, state),
            }
        }
        FrameFault::Duplicate => {
            deliver_bytes(sc, state, bytes);
            // The duplicate is a backward sequence: an anomaly the
            // assembler must ignore.
            deliver_bytes(sc, state, bytes);
        }
        FrameFault::Split => {
            ensure_session(sc, state);
            let mut rest = bytes.as_slice();
            let mut piece: u64 = 0;
            while !rest.is_empty() {
                let n = chaos.chunk_len(conn, seq, piece).min(rest.len());
                let (head, tail) = rest.split_at(n);
                state.decoder.feed(head);
                match state.decoder.drain() {
                    Ok(frames) => deliver_frames(sc, state, frames),
                    Err(_) => {
                        abort_session(sc, state);
                        return Ok(());
                    }
                }
                rest = tail;
                piece += 1;
            }
        }
        FrameFault::Reorder => {
            // Swap with the successor, which effective_fault guarantees
            // exists and is fault-free. The late original arrives as a
            // backward sequence the assembler counts and ignores.
            let Some(next) = frames.get(seq as usize + 1) else {
                return Err(MeshError(format!(
                    "reorder at {seq} without successor for {:?}",
                    state.tier
                )));
            };
            deliver_bytes(sc, state, next);
            deliver_bytes(sc, state, bytes);
            *skip_next = true;
        }
    }
    Ok(())
}

/// Run the telemetry plane under a chaos schedule.
///
/// Encodes `samples` per tier as real wire frames in `codec`, applies
/// `chaos` to every frame of every tier connection (App is connection
/// 0, Db is connection 1), and drives a [`SupervisedCollector`] exactly
/// as the event loop would. Returns the supervised report plus the
/// compiled per-tier fault schedules for the analytic oracle.
pub fn run_net_mesh(
    meter: &CapacityMeter,
    samples: &[SystemSample],
    base_seed: u64,
    chaos: &ChaosSchedule,
    codec: WireCodec,
    admission: AdmissionController,
) -> Result<MeshOutcome, MeshError> {
    let total = samples.len() as u64;
    let origin = CollectorConfig::default().window_origin;
    let app_frames = encode_tier(meter, samples, base_seed, TierId::App, codec)?;
    let db_frames = encode_tier(meter, samples, base_seed, TierId::Db, codec)?;

    let mut sc = SupervisedCollector::start(
        meter.clone(),
        origin,
        SupervisorConfig::default(),
        admission,
        None,
        false,
    );
    let mut app_state = TierState::new(TierId::App);
    let mut db_state = TierState::new(TierId::Db);
    sc.on_session_start(TierId::App);
    sc.on_session_start(TierId::Db);
    let mut injected = Vec::new();
    let mut skip_app = false;
    let mut skip_db = false;
    for seq in 0..total {
        deliver_tier(
            &mut sc,
            &mut app_state,
            &app_frames,
            seq,
            total,
            chaos,
            &mut skip_app,
            &mut injected,
        )?;
        deliver_tier(
            &mut sc,
            &mut db_state,
            &db_frames,
            seq,
            total,
            chaos,
            &mut skip_db,
            &mut injected,
        )?;
    }
    if let Some(last) = total.checked_sub(1) {
        // A Bye always arrives on a live session, mirroring the real
        // agent which reconnects before its farewell.
        ensure_session(&mut sc, &mut app_state);
        ensure_session(&mut sc, &mut db_state);
        sc.on_bye(TierId::App, last);
        sc.on_bye(TierId::Db, last);
    }
    let report = sc.finish();
    let schedules = [
        chaos.compile_tier_schedule(TierId::App.index() as u32, total),
        chaos.compile_tier_schedule(TierId::Db.index() as u32, total),
    ];
    Ok(MeshOutcome {
        report,
        schedules,
        injected,
    })
}
