//! Seeded, deterministic fault schedules for the chaos mesh.
//!
//! Every fault the mesh injects is a pure function of `(seed, conn,
//! frame index)` — there is no entropy source anywhere in the chaos
//! plane. That is the property the equivalence suites lean on: given a
//! [`ChaosSchedule`], the exact byte-level mutilation of every frame is
//! reproducible on any machine, and the schedule can be *compiled* into
//! the telemetry plane's [`FaultSchedule`] vocabulary so the loopback
//! oracle predicts the surviving window set analytically.
//!
//! The compilation step encodes the collector-observable semantics of
//! each fault family:
//!
//! | fault        | wire effect                          | oracle mapping              |
//! |--------------|--------------------------------------|-----------------------------|
//! | `Corrupt`    | magic byte flipped → typed decode error, session dies | drop + reconnect before next |
//! | `Truncate`   | strict payload prefix, header rewritten → typed decode error, session dies | drop + reconnect before next |
//! | `Drop`       | frame never arrives                  | drop                        |
//! | `Duplicate`  | frame arrives twice (second is a backward seq → anomaly) | none            |
//! | `Split`      | frame arrives in byte-level chunks   | none                        |
//! | `Stall`      | frame arrives late (pacing only)     | none                        |
//! | `Reorder`    | frame swaps with its successor (late copy → anomaly) | drop            |
//! | `Partitioned`| link black-holed for a seq range, session dies | drop range + reconnect at heal |

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use webcap_net::FaultSchedule;

/// SplitMix64: the project's standard cheap, well-mixed integer hash.
/// Used here to derive per-frame fault rolls from `(seed, conn, idx)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What the chaos mesh does to one frame on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameFault {
    /// Frame delivered intact.
    None,
    /// The frame's first magic byte is flipped; the decoder must fail
    /// with a typed error and the session dies.
    Corrupt,
    /// The payload is cut to a strict prefix and the length header is
    /// rewritten to match, so the decoder sees a *complete* frame with
    /// a short payload — the hostile case for the binary codec.
    Truncate,
    /// Frame silently dropped.
    Drop,
    /// Frame delivered twice; the second copy is a backward sequence
    /// the assembler must count as an anomaly and otherwise ignore.
    Duplicate,
    /// Frame delivered byte-by-byte in deterministic chunks, exercising
    /// every resume point of the incremental frame extractor.
    Split,
    /// Frame delivered after a pacing delay. Outcome-neutral by
    /// construction; exists to exercise readiness polling and, over a
    /// real socket, the collector's stall budget.
    Stall,
    /// Frame swapped with its successor (which is guaranteed fault-free
    /// when this fault is effective — see
    /// [`ChaosSchedule::effective_fault`]).
    Reorder,
    /// Frame black-holed by a link partition; the first partitioned
    /// frame also kills the session.
    Partitioned,
}

/// A deterministic link partition: connection `conn` delivers nothing
/// for indices (or, on the fleet back-haul, ticks) in `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// The connection (tier index or collector id) that is cut off.
    pub conn: u32,
    /// First blacked-out index/tick (inclusive).
    pub from: u64,
    /// First index/tick after the partition heals (exclusive).
    pub until: u64,
}

/// Per-mille fault rates plus an optional scripted partition.
///
/// The rates are walked cumulatively in declaration order against a
/// roll in `0..1000`; their sum should stay at or below 1000 (excess
/// probability mass simply starves the later families).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Per-mille rate of [`FrameFault::Corrupt`].
    pub corrupt_per_mille: u32,
    /// Per-mille rate of [`FrameFault::Truncate`].
    pub truncate_per_mille: u32,
    /// Per-mille rate of [`FrameFault::Drop`].
    pub drop_per_mille: u32,
    /// Per-mille rate of [`FrameFault::Duplicate`].
    pub dup_per_mille: u32,
    /// Per-mille rate of [`FrameFault::Split`].
    pub split_per_mille: u32,
    /// Per-mille rate of [`FrameFault::Stall`].
    pub stall_per_mille: u32,
    /// Per-mille rate of [`FrameFault::Reorder`].
    pub reorder_per_mille: u32,
    /// Optional scripted partition, applied before any roll.
    pub partition: Option<Partition>,
}

impl ChaosProfile {
    /// A profile with no faults at all.
    pub fn quiet() -> ChaosProfile {
        ChaosProfile {
            corrupt_per_mille: 0,
            truncate_per_mille: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            split_per_mille: 0,
            stall_per_mille: 0,
            reorder_per_mille: 0,
            partition: None,
        }
    }

    /// Corruption-heavy family: bit flips, truncations, and drops with
    /// plenty of split writes to stress the incremental decoder.
    pub fn corruption_heavy() -> ChaosProfile {
        ChaosProfile {
            corrupt_per_mille: 40,
            truncate_per_mille: 30,
            drop_per_mille: 20,
            split_per_mille: 200,
            ..ChaosProfile::quiet()
        }
    }

    /// Stall/partition-heavy family: pacing stalls, split writes, a few
    /// drops, and a scripted partition of connection 0 over `[70, 100)`.
    pub fn stall_partition_heavy() -> ChaosProfile {
        ChaosProfile {
            drop_per_mille: 10,
            split_per_mille: 100,
            stall_per_mille: 150,
            partition: Some(Partition {
                conn: 0,
                from: 70,
                until: 100,
            }),
            ..ChaosProfile::quiet()
        }
    }

    /// Reorder/duplicate-heavy family: adjacent swaps and duplicated
    /// frames, which the assembler must absorb as anomalies without any
    /// window effect beyond the swapped-out slot.
    pub fn reorder_dup_heavy() -> ChaosProfile {
        ChaosProfile {
            drop_per_mille: 10,
            dup_per_mille: 40,
            split_per_mille: 120,
            reorder_per_mille: 60,
            ..ChaosProfile::quiet()
        }
    }
}

/// A seeded chaos schedule: the pure function from `(conn, frame
/// index)` to the fault injected on that frame, plus the byte-level
/// parameters (chunk sizes, truncation lengths) derived from the same
/// seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// Seed mixed into every per-frame roll.
    pub seed: u64,
    /// The fault-rate profile this schedule draws from.
    pub profile: ChaosProfile,
}

impl ChaosSchedule {
    /// Construct a schedule from a seed and a profile.
    pub fn new(seed: u64, profile: ChaosProfile) -> ChaosSchedule {
        ChaosSchedule { seed, profile }
    }

    /// The per-frame mixing hash. `salt` separates independent draws
    /// about the same frame (fault roll vs. chunk size vs. truncation
    /// length).
    fn mix(&self, conn: u32, idx: u64, salt: u64) -> u64 {
        let lane = (u64::from(conn) << 48) ^ idx ^ salt.wrapping_mul(0xA5A5_A5A5_A5A5_A5A5);
        splitmix64(self.seed ^ splitmix64(lane))
    }

    /// The roll-based fault for a frame, ignoring any scripted
    /// partition. The roll is walked through the profile's cumulative
    /// per-mille thresholds in fixed order.
    pub fn roll_fault(&self, conn: u32, idx: u64) -> FrameFault {
        let roll = (self.mix(conn, idx, 1) % 1000) as u32;
        let p = &self.profile;
        let mut edge = p.corrupt_per_mille;
        if roll < edge {
            return FrameFault::Corrupt;
        }
        edge = edge.saturating_add(p.truncate_per_mille);
        if roll < edge {
            return FrameFault::Truncate;
        }
        edge = edge.saturating_add(p.drop_per_mille);
        if roll < edge {
            return FrameFault::Drop;
        }
        edge = edge.saturating_add(p.dup_per_mille);
        if roll < edge {
            return FrameFault::Duplicate;
        }
        edge = edge.saturating_add(p.split_per_mille);
        if roll < edge {
            return FrameFault::Split;
        }
        edge = edge.saturating_add(p.stall_per_mille);
        if roll < edge {
            return FrameFault::Stall;
        }
        edge = edge.saturating_add(p.reorder_per_mille);
        if roll < edge {
            return FrameFault::Reorder;
        }
        FrameFault::None
    }

    /// The fault for frame `idx` on connection `conn`: the scripted
    /// partition takes precedence over any roll.
    pub fn frame_fault(&self, conn: u32, idx: u64) -> FrameFault {
        if let Some(p) = &self.profile.partition {
            if p.conn == conn && p.from <= idx && idx < p.until {
                return FrameFault::Partitioned;
            }
        }
        self.roll_fault(conn, idx)
    }

    /// The fault for a fleet back-haul frame, where the partition is
    /// keyed on the frame's *tick* (digest flushes are sparse in frame
    /// index but dense in simulated time) while roll faults stay keyed
    /// on the per-collector frame index.
    pub fn fleet_fault(&self, conn: u32, idx: u64, tick: u64) -> FrameFault {
        if let Some(p) = &self.profile.partition {
            if p.conn == conn && p.from <= tick && tick < p.until {
                return FrameFault::Partitioned;
            }
        }
        self.roll_fault(conn, idx)
    }

    /// [`Self::frame_fault`] with the reorder degradation applied: a
    /// `Reorder` is only *effective* when a successor frame exists and
    /// is itself fault-free, because an adjacent swap is only
    /// well-defined against an intact neighbour. Everywhere a reorder
    /// cannot take effect it degrades to `None`.
    pub fn effective_fault(&self, conn: u32, idx: u64, total: u64) -> FrameFault {
        match self.frame_fault(conn, idx) {
            FrameFault::Reorder => {
                let next = idx.saturating_add(1);
                if next < total && self.frame_fault(conn, next) == FrameFault::None {
                    FrameFault::Reorder
                } else {
                    FrameFault::None
                }
            }
            fault => fault,
        }
    }

    /// Deterministic chunk size (in bytes, at least 1) for piece
    /// `piece` of a split-delivered frame.
    pub fn chunk_len(&self, conn: u32, idx: u64, piece: u64) -> usize {
        let draw = self.mix(conn, idx ^ piece.rotate_left(17), 2);
        1 + (draw % 13) as usize
    }

    /// Deterministic *strict*-prefix length for a truncated payload:
    /// always less than `payload_len` when the payload is non-empty.
    pub fn truncate_keep(&self, conn: u32, idx: u64, payload_len: usize) -> usize {
        if payload_len == 0 {
            return 0;
        }
        (self.mix(conn, idx, 3) as usize) % payload_len
    }

    /// Rebuild a wire frame `[magic][len][payload]` as a *complete*
    /// frame carrying a strict prefix of its payload, with the length
    /// header rewritten to match. The decoder therefore sees a
    /// well-framed but internally short message — the case that must
    /// fail with a typed error rather than a panic or a hang.
    pub fn truncate_frame(&self, conn: u32, idx: u64, bytes: &[u8]) -> Vec<u8> {
        let payload = bytes.get(8..).unwrap_or(&[]);
        let keep = self.truncate_keep(conn, idx, payload.len());
        let mut out = Vec::with_capacity(8 + keep);
        out.extend_from_slice(bytes.get(..4).unwrap_or(&[]));
        out.extend_from_slice(&(keep as u32).to_le_bytes());
        out.extend_from_slice(payload.get(..keep).unwrap_or(&[]));
        out
    }

    /// Compile this schedule's effect on one connection into the
    /// telemetry plane's [`FaultSchedule`] vocabulary, using the oracle
    /// mapping documented at module level. The loopback oracle can then
    /// predict the surviving/poisoned window sets analytically.
    pub fn compile_tier_schedule(&self, conn: u32, total: u64) -> FaultSchedule {
        let mut dropped: BTreeSet<u64> = BTreeSet::new();
        let mut reconnects: BTreeSet<u64> = BTreeSet::new();
        for seq in 0..total {
            match self.effective_fault(conn, seq, total) {
                FrameFault::Corrupt | FrameFault::Truncate => {
                    dropped.insert(seq);
                    if seq + 1 < total {
                        reconnects.insert(seq + 1);
                    }
                }
                FrameFault::Drop | FrameFault::Reorder | FrameFault::Partitioned => {
                    dropped.insert(seq);
                }
                _ => {}
            }
        }
        if let Some(p) = &self.profile.partition {
            if p.conn == conn && p.from < total && p.until < total && p.from < p.until {
                reconnects.insert(p.until);
            }
        }
        let mut drop_ranges: Vec<(u64, u64)> = Vec::new();
        let mut run: Option<(u64, u64)> = None;
        for seq in dropped {
            run = match run {
                Some((lo, hi)) if seq == hi + 1 => Some((lo, seq)),
                Some(range) => {
                    drop_ranges.push(range);
                    Some((seq, seq))
                }
                None => Some((seq, seq)),
            };
        }
        if let Some(range) = run {
            drop_ranges.push(range);
        }
        FaultSchedule {
            drop_ranges,
            reconnect_before: reconnects.into_iter().collect(),
        }
    }
}

/// Flip the first byte (the low byte of the frame magic) of an encoded
/// wire frame, guaranteeing a typed `BadMagic` decode error rather than
/// a silent reinterpretation of the payload.
pub fn corrupt_frame(bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(first) = out.first_mut() {
        *first ^= 0xff;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_pure_functions_of_seed_conn_idx() {
        let a = ChaosSchedule::new(9, ChaosProfile::corruption_heavy());
        let b = ChaosSchedule::new(9, ChaosProfile::corruption_heavy());
        for conn in 0..2 {
            for idx in 0..500 {
                assert_eq!(a.frame_fault(conn, idx), b.frame_fault(conn, idx));
                assert_eq!(a.chunk_len(conn, idx, 3), b.chunk_len(conn, idx, 3));
            }
        }
        let c = ChaosSchedule::new(10, ChaosProfile::corruption_heavy());
        let differs = (0..500).any(|idx| a.frame_fault(0, idx) != c.frame_fault(0, idx));
        assert!(differs, "changing the seed must change the schedule");
    }

    #[test]
    fn partition_overrides_rolls_and_compiles_to_a_drop_range() {
        let chaos = ChaosSchedule::new(3, ChaosProfile::stall_partition_heavy());
        for idx in 70..100 {
            assert_eq!(chaos.frame_fault(0, idx), FrameFault::Partitioned);
        }
        assert_ne!(chaos.frame_fault(1, 75), FrameFault::Partitioned);
        let schedule = chaos.compile_tier_schedule(0, 240);
        assert!(
            (70..100).all(|seq| schedule.drops(seq)),
            "partitioned seqs must compile to drops"
        );
        assert!(
            schedule.reconnect_before.contains(&100),
            "the heal point must compile to a reconnect"
        );
    }

    #[test]
    fn reorder_degrades_when_the_successor_is_faulted_or_missing() {
        let profile = ChaosProfile {
            reorder_per_mille: 1000,
            ..ChaosProfile::quiet()
        };
        let chaos = ChaosSchedule::new(1, profile);
        // Every frame rolls Reorder, so no successor is ever clean and
        // every reorder must degrade.
        for idx in 0..50 {
            assert_eq!(chaos.effective_fault(0, idx, 50), FrameFault::None);
        }
    }

    #[test]
    fn truncate_keep_is_a_strict_prefix() {
        let chaos = ChaosSchedule::new(7, ChaosProfile::corruption_heavy());
        for idx in 0..200 {
            for len in 1..40 {
                assert!(chaos.truncate_keep(0, idx, len) < len);
            }
        }
        assert_eq!(chaos.truncate_keep(0, 5, 0), 0);
    }

    #[test]
    fn drop_ranges_compress_consecutive_seqs() {
        let profile = ChaosProfile {
            partition: Some(Partition {
                conn: 0,
                from: 10,
                until: 13,
            }),
            ..ChaosProfile::quiet()
        };
        let chaos = ChaosSchedule::new(0, profile);
        let schedule = chaos.compile_tier_schedule(0, 20);
        assert_eq!(schedule.drop_ranges, vec![(10, 12)]);
        assert_eq!(schedule.reconnect_before, vec![13]);
    }
}
