//! A real-socket byte interposer for the telemetry plane.
//!
//! [`spawn_chaos_proxy`] listens on an ephemeral TCP port and forwards
//! every accepted connection to an upstream collector endpoint,
//! applying *pacing* faults — deterministic split writes and stalls —
//! to the client→upstream byte stream. Bytes are never altered,
//! reordered, or dropped, so the interposition is outcome-neutral by
//! construction: the proxied deployment must produce byte-identical
//! decisions to a direct connection, while the collector's readiness
//! polling and incremental frame reassembly get exercised at every
//! possible split point of a real socket.
//!
//! Destructive faults (corruption, truncation, drops, partitions) are
//! deliberately excluded here: over a live socket their timing would
//! interact with the agent's reconnect loop nondeterministically. They
//! are exercised instead by the in-process mesh
//! ([`crate::mesh::run_net_mesh`]), where delivery order is scripted.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use webcap_net::Endpoint;

use crate::schedule::{ChaosSchedule, FrameFault};

/// Handle to a running chaos proxy; stopping (or dropping) it shuts the
/// accept loop down.
#[derive(Debug)]
pub struct ProxyHandle {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ProxyHandle {
    /// The endpoint agents should dial instead of the collector.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// Stop the accept loop and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProxyHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a chaos proxy in front of `upstream` (TCP only).
///
/// Each accepted connection gets a deterministic connection index in
/// accept order; the chaos schedule's `Split`/`Stall` rolls for
/// `(conn, read-event)` drive the pacing of the client→upstream pump.
pub fn spawn_chaos_proxy(upstream: &Endpoint, chaos: ChaosSchedule) -> io::Result<ProxyHandle> {
    let upstream_addr = match upstream {
        Endpoint::Tcp(addr) => addr.clone(),
        #[cfg(unix)]
        Endpoint::Unix(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "chaos proxy supports tcp endpoints only",
            ))
        }
    };
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let endpoint = Endpoint::Tcp(listener.local_addr()?.to_string());
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut conn_idx: u32 = 0;
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let idx = conn_idx;
                        conn_idx = conn_idx.wrapping_add(1);
                        match TcpStream::connect(upstream_addr.as_str()) {
                            Ok(up) => {
                                spawn_pumps(client, up, chaos.clone(), idx, Arc::clone(&stop))
                            }
                            Err(_) => {
                                let _ = client.shutdown(Shutdown::Both);
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        })
    };
    Ok(ProxyHandle {
        endpoint,
        stop,
        accept: Some(accept),
    })
}

/// Wire up the two pump threads for one proxied connection. The pumps
/// run detached; they exit on EOF, error, or the stop flag.
fn spawn_pumps(client: TcpStream, upstream: TcpStream, chaos: ChaosSchedule, conn: u32, stop: Arc<AtomicBool>) {
    let (client_r, upstream_w) = match (client.try_clone(), upstream.try_clone()) {
        (Ok(c), Ok(u)) => (c, u),
        _ => {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
            return;
        }
    };
    {
        let stop = Arc::clone(&stop);
        thread::spawn(move || pump_chaotic(client_r, upstream_w, chaos, conn, stop));
    }
    thread::spawn(move || pump_plain(upstream, client, stop));
}

/// Client→upstream pump with deterministic pacing faults.
fn pump_chaotic(
    mut from: TcpStream,
    mut to: TcpStream,
    chaos: ChaosSchedule,
    conn: u32,
    stop: Arc<AtomicBool>,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    let mut event: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let Some(data) = buf.get(..n) else { break };
                let fault = chaos.roll_fault(conn, event);
                let done = match fault {
                    FrameFault::Stall => {
                        thread::sleep(Duration::from_millis(5));
                        to.write_all(data)
                    }
                    FrameFault::Split => write_split(&mut to, &chaos, conn, event, data),
                    // All destructive faults pass through intact: the
                    // real-socket plane is pacing-only.
                    _ => to.write_all(data),
                };
                event = event.wrapping_add(1);
                if done.is_err() {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Upstream→client pump: a plain copy.
fn pump_plain(mut from: TcpStream, mut to: TcpStream, stop: Arc<AtomicBool>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let Some(data) = buf.get(..n) else { break };
                if to.write_all(data).is_err() {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Write `data` in deterministic chunk sizes drawn from the schedule,
/// flushing between chunks so each lands as its own TCP segment where
/// the stack allows.
fn write_split(
    to: &mut TcpStream,
    chaos: &ChaosSchedule,
    conn: u32,
    event: u64,
    data: &[u8],
) -> io::Result<()> {
    let mut rest = data;
    let mut piece: u64 = 0;
    while !rest.is_empty() {
        let k = chaos.chunk_len(conn, event, piece).min(rest.len());
        let (head, tail) = rest.split_at(k);
        to.write_all(head)?;
        to.flush()?;
        rest = tail;
        piece = piece.wrapping_add(1);
    }
    Ok(())
}
