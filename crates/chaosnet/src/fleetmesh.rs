//! The chaos mesh over the fleet digest back-haul.
//!
//! Splits the fleet harness in two so a chaos schedule can sit between
//! the halves:
//!
//! * [`collect_digest_stream`] runs the sharded collectors over a
//!   scripted sample stream (with optional per-tier agent-plane fault
//!   schedules) and captures every flushed [`DigestFrame`] as encoded
//!   wire bytes stamped with the simulated tick it was flushed at.
//! * [`merge_stream`] replays that stream into a partition-aware
//!   [`MergeNode`], applying a [`ChaosSchedule`] to the back-haul:
//!   corrupted/truncated/dropped digests are *lost* (and reported),
//!   duplicates are ingested twice, reorders swap delivery order, and a
//!   scripted partition holds a collector's frames until the heal tick
//!   while the merge's liveness clock watches the silence.
//!
//! Because the merge is a pure function of the *set* of ingested
//! digests, the suite can state exact oracles: loss-free chaos must be
//! byte-identical to the unfaulted baseline, and lossy chaos must be
//! byte-identical to a clean merge of exactly the surviving frames.

use std::collections::BTreeMap;
use std::fmt;

use webcap_core::CapacityMeter;
use webcap_fleet::{
    AgentId, FleetCollector, FleetTopology, MergeLivenessConfig, MergeNode, MergeOutcome, ShardMap,
};
use webcap_net::collector::CollectorConfig;
use webcap_net::frame::{try_extract_frame, write_frame_codec, AppStats, Frame};
use webcap_net::source::TierSampler;
use webcap_net::supervisor::SupervisorConfig;
use webcap_net::{DigestFin, DigestFrame, FaultSchedule, WireCodec, WireSample};
use webcap_sim::{SystemSample, TierId};

use crate::schedule::{corrupt_frame, ChaosSchedule, FrameFault};

/// Error from the fleet chaos mesh; deterministic, so always a
/// programming or configuration mistake.
#[derive(Debug)]
pub struct FleetMeshError(pub String);

impl fmt::Display for FleetMeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fleet chaos mesh: {}", self.0)
    }
}

impl std::error::Error for FleetMeshError {}

/// One captured digest frame: encoded wire bytes plus the simulated
/// tick at which the owning collector flushed it.
#[derive(Debug, Clone)]
pub struct TimedFrame {
    /// Simulated second (sample sequence) of the flush.
    pub tick: u64,
    /// The collector that emitted the frame.
    pub collector: u32,
    /// The full encoded wire frame, header included.
    pub bytes: Vec<u8>,
}

/// The captured back-haul of one fleet run.
#[derive(Debug, Clone)]
pub struct DigestStream {
    /// Flushed frames in emission order (non-decreasing tick).
    pub frames: Vec<TimedFrame>,
    /// Number of collectors in the topology.
    pub collectors: u32,
    /// The tick at which the fin frames were flushed.
    pub last_tick: u64,
}

/// A back-haul frame the chaos schedule destroyed before the merge
/// could ingest it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct LostFrame {
    /// Index into [`DigestStream::frames`].
    pub index: usize,
    /// Emitting collector.
    pub collector: u32,
    /// Flush tick of the lost frame.
    pub tick: u64,
    /// The fault that destroyed it.
    pub fault: FrameFault,
}

/// Run the sharded fleet collectors over a scripted sample stream and
/// capture every flushed digest as encoded wire bytes.
///
/// This is the collector half of the fleet harness: rendezvous-sharded
/// ownership, per-seq eager flushes, agent-plane fault `schedules`
/// applied per tier (`App` first, then `Db`), and a fin frame per
/// collector at the end.
pub fn collect_digest_stream(
    meter: &CapacityMeter,
    samples: &[SystemSample],
    base_seed: u64,
    schedules: &[FaultSchedule; 2],
    topology: &FleetTopology,
    codec: WireCodec,
) -> Result<DigestStream, FleetMeshError> {
    let window_len = (meter.config().window_len as i64).max(1);
    let origin = CollectorConfig::default().window_origin;
    let map = ShardMap::new(topology.seed, topology.collectors);
    let owner_of = |tier: TierId| map.owner(AgentId::primary(tier));
    let hpc_model = meter.config().hpc_model.clone();

    let mut collectors: Vec<FleetCollector> = Vec::new();
    for c in 0..topology.collectors {
        let tiers: Vec<TierId> = TierId::ALL
            .into_iter()
            .filter(|t| owner_of(*t) == c)
            .collect();
        collectors.push(FleetCollector::new(
            c,
            &tiers,
            window_len,
            origin,
            SupervisorConfig::default(),
        ));
    }
    let mut sampler_app = TierSampler::new(TierId::App, hpc_model.clone(), base_seed);
    let mut sampler_db = TierSampler::new(TierId::Db, hpc_model, base_seed);
    let none_schedule = FaultSchedule::NONE;

    let mut frames: Vec<TimedFrame> = Vec::new();
    let mut scratch = Vec::new();
    let mut push_frame = |frames: &mut Vec<TimedFrame>, frame: DigestFrame, tick: u64| {
        let collector = frame.collector;
        let mut buf = Vec::new();
        write_frame_codec(&mut buf, &Frame::Digest(frame), codec, &mut scratch)
            .map_err(|e| FleetMeshError(format!("encode digest at tick {tick}: {e}")))?;
        frames.push(TimedFrame {
            tick,
            collector,
            bytes: buf,
        });
        Ok::<(), FleetMeshError>(())
    };

    for tier in TierId::ALL {
        if let Some(col) = collectors.get_mut(owner_of(tier) as usize) {
            col.on_session_start(tier);
        }
    }
    for (i, s) in samples.iter().enumerate() {
        let seq = i as u64;
        for tier in TierId::ALL {
            let sampler = match tier {
                TierId::App => &mut sampler_app,
                TierId::Db => &mut sampler_db,
            };
            // The sampler is stateful: advance it for every seq, even
            // ones the fault schedule swallows.
            let (hpc, os) = sampler.rows(seq, s.tier(tier), s.interval_s);
            let schedule = schedules.get(tier.index()).unwrap_or(&none_schedule);
            let Some(col) = collectors.get_mut(owner_of(tier) as usize) else {
                continue;
            };
            if schedule.reconnect_before.contains(&seq) {
                col.on_session_start(tier);
            }
            if schedule.drops(seq) {
                continue;
            }
            let ws = WireSample {
                seq,
                t_s: s.t_s,
                interval_s: s.interval_s,
                tier: s.tier(tier).clone(),
                hpc,
                os,
                app: (tier == TierId::App).then(|| AppStats::from_sample(s)),
            };
            col.on_sample(tier, &ws);
        }
        for col in &mut collectors {
            if let Some(frame) = col.flush(None) {
                push_frame(&mut frames, frame, seq)?;
            }
        }
    }
    if let Some(last) = (samples.len() as u64).checked_sub(1) {
        for tier in TierId::ALL {
            if let Some(col) = collectors.get_mut(owner_of(tier) as usize) {
                col.on_bye(tier, last);
            }
        }
    }
    let last_window = samples.len() as i64 / window_len - 1;
    let last_tick = samples.len() as u64;
    for col in &mut collectors {
        let fin = DigestFin {
            tiers: col.tiers(),
            last_window,
        };
        if let Some(frame) = col.flush(Some(fin)) {
            push_frame(&mut frames, frame, last_tick)?;
        }
    }
    Ok(DigestStream {
        frames,
        collectors: topology.collectors,
        last_tick,
    })
}

/// Decode one captured back-haul frame, demanding a lone `Digest`.
fn decode_digest(bytes: &[u8]) -> Result<DigestFrame, FleetMeshError> {
    match try_extract_frame(bytes) {
        Ok(Some((Frame::Digest(d), used))) if used == bytes.len() => Ok(d),
        Ok(Some(_)) => Err(FleetMeshError(
            "non-digest frame or trailing bytes in back-haul stream".to_string(),
        )),
        Ok(None) => Err(FleetMeshError("incomplete digest frame".to_string())),
        Err(e) => Err(FleetMeshError(format!("digest decode: {e}"))),
    }
}

/// A planned delivery of one stream frame.
struct Delivery {
    deliver_tick: u64,
    ord: u64,
    index: usize,
    copies: u32,
}

/// Replay a captured digest stream into a partition-aware merge under a
/// chaos schedule.
///
/// Per-collector frame indices drive the roll faults; the scripted
/// partition is keyed on *ticks* and holds a collector's frames until
/// the heal tick, letting the merge's liveness clock observe the
/// silence, flag the collector `Partitioned`, and walk it back to
/// `Live` through the hysteretic rejoin. Corrupted and truncated frames
/// are pushed through the real decoder (their typed failure is
/// asserted) and reported as lost together with dropped frames.
///
/// Returns the merge outcome and the lost-frame list; with `chaos:
/// None` this is exactly the clean ordered merge of the whole stream.
pub fn merge_stream(
    meter: &CapacityMeter,
    stream: &DigestStream,
    chaos: Option<&ChaosSchedule>,
    liveness: MergeLivenessConfig,
) -> Result<(MergeOutcome, Vec<LostFrame>), FleetMeshError> {
    let mut node = MergeNode::with_liveness(meter.clone(), liveness);
    for c in 0..stream.collectors {
        node.register_collector(c, 0);
    }
    let mut plan: Vec<Delivery> = Vec::new();
    let mut lost: Vec<LostFrame> = Vec::new();
    let mut per_conn: BTreeMap<u32, u64> = BTreeMap::new();
    for (index, frame) in stream.frames.iter().enumerate() {
        let counter = per_conn.entry(frame.collector).or_insert(0);
        let idx = *counter;
        *counter += 1;
        let fault = match chaos {
            Some(c) => c.fleet_fault(frame.collector, idx, frame.tick),
            None => FrameFault::None,
        };
        let ord = (index as u64) * 2;
        match fault {
            FrameFault::Corrupt => {
                let mangled = corrupt_frame(&frame.bytes);
                if decode_digest(&mangled).is_ok() {
                    return Err(FleetMeshError(format!(
                        "corrupted digest frame {index} decoded successfully"
                    )));
                }
                lost.push(LostFrame {
                    index,
                    collector: frame.collector,
                    tick: frame.tick,
                    fault,
                });
            }
            FrameFault::Truncate => {
                let mangled = chaos
                    .map(|c| c.truncate_frame(frame.collector, idx, &frame.bytes))
                    .unwrap_or_default();
                if decode_digest(&mangled).is_ok() {
                    return Err(FleetMeshError(format!(
                        "truncated digest frame {index} decoded successfully"
                    )));
                }
                lost.push(LostFrame {
                    index,
                    collector: frame.collector,
                    tick: frame.tick,
                    fault,
                });
            }
            FrameFault::Drop => {
                lost.push(LostFrame {
                    index,
                    collector: frame.collector,
                    tick: frame.tick,
                    fault,
                });
            }
            FrameFault::Partitioned => {
                let until = chaos
                    .and_then(|c| c.profile.partition.as_ref())
                    .map(|p| p.until)
                    .unwrap_or(frame.tick);
                plan.push(Delivery {
                    deliver_tick: until.max(frame.tick),
                    ord,
                    index,
                    copies: 1,
                });
            }
            FrameFault::Duplicate => {
                plan.push(Delivery {
                    deliver_tick: frame.tick,
                    ord,
                    index,
                    copies: 2,
                });
            }
            FrameFault::Reorder => {
                // Nudge past the next delivery at the same tick; the
                // merge is order-independent, but the rejoin streak
                // logic sees the out-of-order sequence.
                plan.push(Delivery {
                    deliver_tick: frame.tick,
                    ord: ord + 3,
                    index,
                    copies: 1,
                });
            }
            FrameFault::None | FrameFault::Split | FrameFault::Stall => {
                plan.push(Delivery {
                    deliver_tick: frame.tick,
                    ord,
                    index,
                    copies: 1,
                });
            }
        }
    }
    plan.sort_by_key(|e| (e.deliver_tick, e.ord));
    let planned_max = plan.iter().map(|e| e.deliver_tick).max().unwrap_or(0);
    let max_tick = stream.last_tick.max(planned_max);
    let mut next = 0usize;
    for tick in 0..=max_tick {
        node.observe_tick(tick);
        while let Some(entry) = plan.get(next) {
            if entry.deliver_tick != tick {
                break;
            }
            let Some(frame) = stream.frames.get(entry.index) else {
                next += 1;
                continue;
            };
            let digest = decode_digest(&frame.bytes)?;
            for _ in 0..entry.copies {
                node.ingest_at(&digest, tick);
            }
            next += 1;
        }
    }
    Ok((node.finalize(), lost))
}

/// Rebuild a stream with the given frame indices removed — the
/// kept-set oracle's input after a lossy chaos run.
pub fn without_frames(stream: &DigestStream, lost: &[LostFrame]) -> DigestStream {
    let gone: std::collections::BTreeSet<usize> = lost.iter().map(|l| l.index).collect();
    DigestStream {
        frames: stream
            .frames
            .iter()
            .enumerate()
            .filter(|(i, _)| !gone.contains(i))
            .map(|(_, f)| f.clone())
            .collect(),
        collectors: stream.collectors,
        last_tick: stream.last_tick,
    }
}
