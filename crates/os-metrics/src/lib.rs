//! Sysstat-like OS-level metric synthesis for the webcap testbed.
//!
//! The paper's comparison baseline collects **64 OS-level metrics** with
//! Sysstat 7.0.3 and finds them noticeably less accurate than hardware
//! counters for capacity measurement, especially under browsing-mix
//! traffic whose overload is caused by a few heavy database queries
//! (Section V-B, observation 2). This crate reproduces both the metric
//! surface and its limitations:
//!
//! * The 64 metrics ([`OS_METRIC_NAMES`]) span CPU, scheduler, memory,
//!   swap, paging, disk, network, sockets, and kernel tables — most carry
//!   little or no information about overload, exercising attribute
//!   selection realistically.
//! * CPU utilization **saturates at 100%**: once a tier is near its knee,
//!   `%user`/`%idle` look the same whether the backlog is stable or
//!   growing.
//! * OS metrics are **coarse and noisy** — they are derived from sampled
//!   scheduler snapshots and quantized the way sysstat reports them,
//!   unlike exact hardware event counts. The default relative noise is an
//!   order of magnitude larger than HPC counter noise.
//! * OS metrics carry **long-memory disturbances**: daemon activity, log
//!   rotation, checkpoint cycles and cache churn bias scheduler, disk and
//!   paging metrics on a time scale of minutes, so the bias does *not*
//!   average out within a 30-second aggregation window. Hardware event
//!   *ratios* (IPC, miss rates) are immune — the events count the
//!   workload itself.
//! * OS metrics carry **no instruction-mix channel**: a heavy scan and a
//!   burst of light transactions with the same CPU share are
//!   indistinguishable, which is exactly the paper's diagnosis of why OS
//!   metrics fail on browsing-mix overload.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use webcap_os::OsCollector;
//! use webcap_sim::{TierId, TierSample};
//!
//! let mut collector = OsCollector::new(TierId::Db);
//! let tier_state = TierSample { utilization: 0.95, ..Default::default() };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sample = collector.sample(&tier_state, 1.0, &mut rng);
//! assert_eq!(sample.values().len(), 64);
//! ```

use rand::Rng;
use serde::{Deserialize, Serialize};
use webcap_sim::{TierId, TierSample};

/// Names of the 64 collected OS metrics, in feature order (sysstat
/// vocabulary).
pub const OS_METRIC_NAMES: [&str; 64] = [
    "pct_user",
    "pct_nice",
    "pct_system",
    "pct_iowait",
    "pct_steal",
    "pct_idle",
    "runq_sz",
    "plist_sz",
    "ldavg_1",
    "ldavg_5",
    "ldavg_15",
    "blocked",
    "proc_per_s",
    "cswch_per_s",
    "intr_per_s",
    "kbmemfree",
    "kbmemused",
    "pct_memused",
    "kbbuffers",
    "kbcached",
    "kbcommit",
    "pct_commit",
    "kbactive",
    "kbinact",
    "kbswpfree",
    "kbswpused",
    "pct_swpused",
    "kbswpcad",
    "pgpgin_per_s",
    "pgpgout_per_s",
    "fault_per_s",
    "majflt_per_s",
    "pgfree_per_s",
    "pgscank_per_s",
    "pgscand_per_s",
    "pgsteal_per_s",
    "tps",
    "rtps",
    "wtps",
    "bread_per_s",
    "bwrtn_per_s",
    "rxpck_per_s",
    "txpck_per_s",
    "rxkb_per_s",
    "txkb_per_s",
    "rxcmp_per_s",
    "txcmp_per_s",
    "rxmcst_per_s",
    "txmcst_per_s",
    "totsck",
    "tcpsck",
    "udpsck",
    "rawsck",
    "ip_frag",
    "tcp_tw",
    "dentunusd",
    "file_nr",
    "inode_nr",
    "pty_nr",
    "rcvin_per_s",
    "xmtin_per_s",
    "frmpg_per_s",
    "bufpg_per_s",
    "campg_per_s",
];

/// One interval's worth of the 64 OS metrics on one tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsSample {
    values: Vec<f64>,
}

impl OsSample {
    /// The 64 values, aligned with [`OS_METRIC_NAMES`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of a named metric.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of [`OS_METRIC_NAMES`].
    pub fn value(&self, name: &str) -> f64 {
        let idx = OS_METRIC_NAMES
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown OS metric {name}"));
        self.values[idx]
    }

    /// Feature names with a tier prefix, aligned with [`OsSample::values`].
    pub fn feature_names(prefix: &str) -> Vec<String> {
        OS_METRIC_NAMES
            .iter()
            .map(|n| format!("{prefix}{n}"))
            .collect()
    }
}

/// A per-tier OS metric collector (the Sysstat analogue).
///
/// Stateful because load averages are exponentially weighted histories of
/// the run-queue length.
#[derive(Debug, Clone)]
pub struct OsCollector {
    tier: TierId,
    noise_rel: f64,
    bias_scale: f64,
    ldavg: [f64; 3],
    total_mem_kb: f64,
    /// Per-metric slow multiplicative bias (OU process), index-aligned
    /// with [`OS_METRIC_NAMES`].
    bias: Vec<f64>,
    bias_initialized: bool,
}

/// Stationary standard deviation of the slow bias of one metric: large
/// for scheduler/disk/paging metrics (daemon and checkpoint interference),
/// small for CPU percentages and memory levels.
fn bias_amplitude(name: &str) -> f64 {
    match name {
        // Scheduler statistics are 1 Hz snapshots of an extremely bursty,
        // strongly autocorrelated quantity: their window means carry large
        // correlated errors.
        "runq_sz" | "ldavg_1" | "ldavg_5" | "ldavg_15" | "blocked" => 0.60,
        "cswch_per_s" | "intr_per_s" | "proc_per_s" => 0.40,
        "tps" | "rtps" | "wtps" | "bread_per_s" | "bwrtn_per_s" => 0.40,
        "pgpgin_per_s" | "pgpgout_per_s" | "fault_per_s" | "majflt_per_s" | "pgfree_per_s" => 0.40,
        // CPU accounting is exact jiffy counting in the kernel; it is
        // saturating (its limitation), not biased.
        "pct_user" | "pct_system" | "pct_iowait" | "pct_idle" | "pct_nice" => 0.0,
        name if name.starts_with("kb") || name.contains("mem") || name.contains("commit") => 0.04,
        _ => 0.15,
    }
}

/// OU mean-reversion rate of the bias per second (τ ≈ 50 s, so the bias
/// survives a 30-second window).
const BIAS_REVERT: f64 = 0.02;

impl OsCollector {
    /// Create a collector for one tier with the default noise level.
    pub fn new(tier: TierId) -> OsCollector {
        let total_mem_kb = match tier {
            TierId::App => 512.0 * 1024.0, // the paper's 512 MB app server
            TierId::Db => 1024.0 * 1024.0, // and 1 GB DB server
        };
        OsCollector {
            tier,
            noise_rel: 0.18,
            bias_scale: 1.0,
            ldavg: [0.0; 3],
            total_mem_kb,
            bias: vec![0.0; 64],
            bias_initialized: false,
        }
    }

    /// Override the relative sampling noise of dynamic metrics.
    ///
    /// # Panics
    ///
    /// Panics if `rel` is negative or non-finite.
    pub fn with_noise(mut self, rel: f64) -> OsCollector {
        assert!(rel >= 0.0 && rel.is_finite(), "noise must be nonnegative");
        self.noise_rel = rel;
        self
    }

    /// Scale the slow-bias disturbances (0 disables them).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    pub fn with_bias_scale(mut self, scale: f64) -> OsCollector {
        assert!(
            scale >= 0.0 && scale.is_finite(),
            "bias scale must be nonnegative"
        );
        self.bias_scale = scale;
        self
    }

    /// The tier this collector watches.
    pub fn tier(&self) -> TierId {
        self.tier
    }

    /// Advance the per-metric slow biases by one interval.
    fn step_bias<R: Rng + ?Sized>(&mut self, interval_s: f64, rng: &mut R) {
        let steps = interval_s.max(1.0);
        for (i, name) in OS_METRIC_NAMES.iter().enumerate() {
            let amp = bias_amplitude(name) * self.bias_scale;
            if amp == 0.0 {
                continue;
            }
            if !self.bias_initialized {
                // Start from the stationary distribution.
                self.bias[i] = amp * Self::gauss(rng);
                continue;
            }
            let step_sd = amp * (2.0 * BIAS_REVERT * steps).sqrt();
            self.bias[i] += -BIAS_REVERT * steps * self.bias[i] + step_sd * Self::gauss(rng);
            self.bias[i] = self.bias[i].clamp(-0.9, 3.0);
        }
        self.bias_initialized = true;
    }

    fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn noisy<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> f64 {
        (v * (1.0 + self.noise_rel * Self::gauss(rng))).max(0.0)
    }

    /// Collect one interval of OS metrics from the simulator tier state.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s <= 0`.
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        ts: &TierSample,
        interval_s: f64,
        rng: &mut R,
    ) -> OsSample {
        assert!(interval_s > 0.0, "interval must be positive");
        self.step_bias(interval_s, rng);
        let mut v = vec![0.0f64; 64];
        // Load averages update first (stateful), the rest is functional.
        let load_now = ts.avg_runnable + ts.disk_queue_avg;
        for (i, minutes) in [1.0f64, 5.0, 15.0].iter().enumerate() {
            let alpha = 1.0 - (-interval_s / (minutes * 60.0)).exp();
            self.ldavg[i] += alpha * (load_now - self.ldavg[i]);
        }
        let ldavg = self.ldavg;

        let mut set = |name: &str, value: f64| {
            let idx = OS_METRIC_NAMES
                .iter()
                .position(|n| *n == name)
                .expect("known name");
            v[idx] = value;
        };

        // --- CPU accounting (percent, quantized to sysstat's 0.01) ---
        // Saturates: util near 1.0 reads as ~100% busy whether the backlog
        // is stable or exploding.
        let util = ts.utilization.clamp(0.0, 1.0);
        let user = self.noisy(util * 82.0, rng).min(100.0);
        let system = self.noisy(util * 12.0, rng).min(100.0 - user);
        let iowait = self
            .noisy(ts.disk_utilization * (1.0 - util) * 90.0, rng)
            .min(100.0 - user - system);
        let q = |x: f64| (x * 100.0).round() / 100.0;
        set("pct_user", q(user));
        set("pct_nice", q(self.noisy(0.3, rng)));
        set("pct_system", q(system));
        set("pct_iowait", q(iowait));
        set("pct_steal", 0.0);
        set("pct_idle", q((100.0 - user - system - iowait).max(0.0)));

        // --- Scheduler ---
        // runq is a *sampled* queue length: integer, very noisy for bursty
        // loads.
        set("runq_sz", self.noisy(ts.avg_runnable, rng).round());
        // Tomcat pre-spawns its worker pool, so the app tier's process
        // list barely moves with load; MySQL runs one thread per open
        // connection, so the DB's process list tracks held connections.
        let plist = match self.tier {
            TierId::App => 92.0 + 130.0,
            TierId::Db => 68.0 + ts.pool_in_use_avg,
        };
        set("plist_sz", self.noisy(plist, rng).round());
        set("ldavg_1", (ldavg[0] * 100.0).round() / 100.0);
        set("ldavg_5", (ldavg[1] * 100.0).round() / 100.0);
        set("ldavg_15", (ldavg[2] * 100.0).round() / 100.0);
        set("blocked", self.noisy(ts.disk_queue_avg, rng).round());

        // --- Task churn ---
        let req_rate = ts.arrivals as f64 / interval_s;
        set("proc_per_s", self.noisy(0.4 + req_rate * 0.02, rng));
        set(
            "cswch_per_s",
            self.noisy(240.0 + req_rate * 45.0 + ts.avg_runnable * 130.0, rng),
        );
        set("intr_per_s", self.noisy(310.0 + req_rate * 22.0, rng));

        // --- Memory ---
        // The DB allocates per-connection buffers; the app tier's heap is
        // dominated by the pre-sized JVM, so load barely shows.
        let mem_per_token = match self.tier {
            TierId::App => 0.0, // JVM heap is pre-sized
            TierId::Db => 2048.0,
        };
        let used = (0.35 * self.total_mem_kb + ts.pool_in_use_avg * mem_per_token)
            .min(self.total_mem_kb * 0.97);
        let used = self.noisy(used, rng).min(self.total_mem_kb * 0.99);
        set("kbmemfree", (self.total_mem_kb - used).round());
        set("kbmemused", used.round());
        set("pct_memused", q(used / self.total_mem_kb * 100.0));
        set(
            "kbbuffers",
            self.noisy(0.04 * self.total_mem_kb, rng).round(),
        );
        set(
            "kbcached",
            self.noisy(0.30 * self.total_mem_kb, rng).round(),
        );
        set("kbcommit", self.noisy(used * 1.4, rng).round());
        set("pct_commit", q(used * 1.4 / self.total_mem_kb * 100.0));
        set("kbactive", self.noisy(used * 0.7, rng).round());
        set("kbinact", self.noisy(used * 0.2, rng).round());

        // --- Swap: effectively unused ---
        let swap_total = 1024.0 * 1024.0;
        set("kbswpfree", swap_total - 128.0);
        set("kbswpused", 128.0);
        set("pct_swpused", 0.01);
        set("kbswpcad", 16.0);

        // --- Paging ---
        let disk_rate = ts.disk_ops as f64 / interval_s;
        set("pgpgin_per_s", self.noisy(disk_rate * 36.0, rng));
        set("pgpgout_per_s", self.noisy(6.0 + disk_rate * 9.0, rng));
        set("fault_per_s", self.noisy(120.0 + req_rate * 14.0, rng));
        set("majflt_per_s", self.noisy(disk_rate * 0.05, rng));
        set("pgfree_per_s", self.noisy(180.0 + req_rate * 20.0, rng));
        set("pgscank_per_s", 0.0);
        set("pgscand_per_s", 0.0);
        set("pgsteal_per_s", 0.0);

        // --- Disk ---
        set("tps", self.noisy(disk_rate, rng));
        set("rtps", self.noisy(disk_rate * 0.8, rng));
        set("wtps", self.noisy(disk_rate * 0.2 + 1.5, rng));
        set("bread_per_s", self.noisy(disk_rate * 220.0, rng));
        set("bwrtn_per_s", self.noisy(disk_rate * 48.0 + 30.0, rng));

        // --- Network (requests and DB calls generate packets) ---
        set("rxpck_per_s", self.noisy(12.0 + req_rate * 9.0, rng));
        set("txpck_per_s", self.noisy(12.0 + req_rate * 11.0, rng));
        set("rxkb_per_s", self.noisy(2.0 + req_rate * 3.0, rng));
        set("txkb_per_s", self.noisy(2.0 + req_rate * 14.0, rng));
        set("rxcmp_per_s", 0.0);
        set("txcmp_per_s", 0.0);
        set("rxmcst_per_s", self.noisy(0.2, rng));
        set("txmcst_per_s", 0.0);

        // --- Sockets ---
        // The RBE closes connections after each interaction (HTTP/1.0
        // style), so socket tables are dominated by time-wait churn — a
        // request-rate signal, not a backlog signal.
        set("totsck", self.noisy(120.0 + req_rate * 3.0, rng).round());
        set("tcpsck", self.noisy(40.0 + req_rate * 2.5, rng).round());
        set("udpsck", 6.0);
        set("rawsck", 0.0);
        set("ip_frag", 0.0);
        set("tcp_tw", self.noisy(req_rate * 1.5, rng).round());

        // --- Kernel tables, ttys, per-page churn ---
        set("dentunusd", self.noisy(24_000.0, rng).round());
        set("file_nr", self.noisy(2_500.0 + req_rate * 5.0, rng).round());
        set("inode_nr", self.noisy(18_000.0, rng).round());
        set("pty_nr", 2.0);
        set("rcvin_per_s", 0.0);
        set("xmtin_per_s", 0.0);
        set(
            "frmpg_per_s",
            self.noisy(req_rate * 0.5, rng) - self.noisy(req_rate * 0.5, rng),
        );
        set("bufpg_per_s", self.noisy(0.4, rng));
        set("campg_per_s", self.noisy(1.8 + req_rate * 0.1, rng));

        // Fold in the slow disturbances last: `set` closures borrow `v`.
        for ((value, bias), name) in v.iter_mut().zip(&self.bias).zip(OS_METRIC_NAMES) {
            *value = (*value * (1.0 + bias)).max(0.0);
            if name.starts_with("pct_") {
                *value = value.min(100.0);
            }
        }
        OsSample { values: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn state(util: f64, runnable: f64, pool: f64, queue_end: usize) -> TierSample {
        TierSample {
            utilization: util,
            avg_runnable: runnable,
            pool_in_use_avg: pool,
            pool_queue_end: queue_end,
            arrivals: 80,
            completions: 80,
            disk_ops: 20,
            disk_utilization: 0.3,
            disk_queue_avg: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn names_are_64_and_unique() {
        assert_eq!(OS_METRIC_NAMES.len(), 64);
        let mut sorted = OS_METRIC_NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn sample_has_64_finite_values() {
        let mut c = OsCollector::new(TierId::App);
        let mut rng = StdRng::seed_from_u64(1);
        let s = c.sample(&state(0.7, 4.0, 30.0, 0), 1.0, &mut rng);
        assert_eq!(s.values().len(), 64);
        for (name, v) in OS_METRIC_NAMES.iter().zip(s.values()) {
            assert!(v.is_finite(), "{name} not finite");
        }
    }

    #[test]
    fn cpu_percentages_sum_to_at_most_100() {
        let mut c = OsCollector::new(TierId::Db);
        let mut rng = StdRng::seed_from_u64(2);
        for util in [0.0, 0.5, 0.99, 1.0] {
            let s = c.sample(&state(util, 10.0, 20.0, 0), 1.0, &mut rng);
            let total = s.value("pct_user")
                + s.value("pct_system")
                + s.value("pct_iowait")
                + s.value("pct_idle");
            assert!(total <= 100.5, "total {total} at util {util}");
        }
    }

    #[test]
    fn utilization_saturates_near_knee() {
        // The defining limitation: 0.97 and 1.0 utilization are barely
        // distinguishable in CPU accounting.
        let mut c = OsCollector::new(TierId::Db).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let near = c.sample(&state(0.97, 10.0, 20.0, 0), 1.0, &mut rng);
        let over = c.sample(&state(1.0, 14.0, 32.0, 50), 1.0, &mut rng);
        let rel = (over.value("pct_user") - near.value("pct_user")).abs() / near.value("pct_user");
        assert!(rel < 0.05, "pct_user should barely move: {rel}");
    }

    #[test]
    fn load_average_lags_runq() {
        let mut c = OsCollector::new(TierId::App).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(4);
        // Quiet for a while…
        let mut calm = None;
        for _ in 0..30 {
            calm = Some(c.sample(&state(0.1, 0.5, 2.0, 0), 1.0, &mut rng));
        }
        let calm = calm.unwrap();
        // …then a sudden burst: ldavg_1 rises but lags the raw queue.
        let mut last = calm.clone();
        for _ in 0..10 {
            last = c.sample(&state(1.0, 40.0, 100.0, 10), 1.0, &mut rng);
        }
        assert!(last.value("ldavg_1") > calm.value("ldavg_1"));
        assert!(
            last.value("ldavg_1") < 40.0,
            "one-minute average lags the spike"
        );
        assert!(last.value("ldavg_15") < last.value("ldavg_1"));
    }

    #[test]
    fn runq_is_noisier_than_hpc_counters() {
        let mut c = OsCollector::new(TierId::Db);
        let mut rng = StdRng::seed_from_u64(5);
        let ts = state(0.95, 18.0, 30.0, 0);
        let vals: Vec<f64> = (0..200)
            .map(|_| c.sample(&ts, 1.0, &mut rng).value("runq_sz"))
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let sd = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
        let cv = sd / mean;
        assert!(cv > 0.1, "OS sampling noise should be coarse, cv {cv}");
    }

    #[test]
    fn db_memory_grows_with_connections_app_barely() {
        // MySQL allocates per-connection buffers; the JVM heap is
        // pre-sized, so the app tier's memory hardly moves with load.
        let mut db = OsCollector::new(TierId::Db)
            .with_noise(0.0)
            .with_bias_scale(0.0);
        let mut app = OsCollector::new(TierId::App)
            .with_noise(0.0)
            .with_bias_scale(0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let db_idle = db.sample(&state(0.2, 1.0, 2.0, 0), 1.0, &mut rng);
        let db_busy = db.sample(&state(0.9, 6.0, 8.0, 30), 1.0, &mut rng);
        let db_delta = db_busy.value("kbmemused") - db_idle.value("kbmemused");
        assert!(db_delta > 10_000.0, "db delta {db_delta}");
        let app_idle = app.sample(&state(0.2, 1.0, 5.0, 0), 1.0, &mut rng);
        let app_busy = app.sample(&state(0.9, 10.0, 120.0, 30), 1.0, &mut rng);
        let app_delta = app_busy.value("kbmemused") - app_idle.value("kbmemused");
        assert_eq!(app_delta, 0.0, "pre-sized JVM heap: app {app_delta}");
    }

    #[test]
    fn sockets_track_request_rate_not_backlog() {
        let mut c = OsCollector::new(TierId::App)
            .with_noise(0.0)
            .with_bias_scale(0.0);
        let mut rng = StdRng::seed_from_u64(9);
        // Same request rate, wildly different backlog: sockets identical.
        let calm = c.sample(&state(0.9, 2.0, 10.0, 0), 1.0, &mut rng);
        let backed_up = c.sample(&state(1.0, 2.0, 128.0, 300), 1.0, &mut rng);
        assert_eq!(calm.value("tcpsck"), backed_up.value("tcpsck"));
    }

    #[test]
    fn feature_names_prefix() {
        let names = OsSample::feature_names("app_os_");
        assert_eq!(names.len(), 64);
        assert_eq!(names[0], "app_os_pct_user");
    }

    #[test]
    fn app_and_db_have_different_memory_sizes() {
        assert_eq!(OsCollector::new(TierId::App).tier(), TierId::App);
        let mut ca = OsCollector::new(TierId::App).with_noise(0.0);
        let mut cd = OsCollector::new(TierId::Db).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let s = state(0.5, 2.0, 10.0, 0);
        let a = ca.sample(&s, 1.0, &mut rng);
        let d = cd.sample(&s, 1.0, &mut rng);
        assert!(d.value("kbmemfree") > a.value("kbmemfree"));
    }

    #[test]
    #[should_panic(expected = "unknown OS metric")]
    fn unknown_metric_panics() {
        let mut c = OsCollector::new(TierId::App);
        let mut rng = StdRng::seed_from_u64(7);
        let s = c.sample(&state(0.5, 2.0, 10.0, 0), 1.0, &mut rng);
        let _ = s.value("nonexistent");
    }
}
