//! Property-based tests of the TPC-W workload model's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use webcap_tpcw::{Mix, RequestType, TrafficProgram, TransitionModel};

fn canonical(ix: u8) -> Mix {
    match ix % 3 {
        0 => Mix::browsing(),
        1 => Mix::shopping(),
        _ => Mix::ordering(),
    }
}

proptest! {
    /// Blending and perturbing preserve normalization and keep the browse
    /// fraction inside the blend envelope.
    #[test]
    fn mix_algebra_preserves_normalization(
        a in 0u8..3,
        b in 0u8..3,
        w in 0.0f64..1.0,
        strength in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let mix_a = canonical(a);
        let mix_b = canonical(b);
        let blended = mix_a.blend(&mix_b, w);
        let sum: f64 = blended.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let (lo, hi) = {
            let x = mix_a.browse_fraction();
            let y = mix_b.browse_fraction();
            (x.min(y), x.max(y))
        };
        let bf = blended.browse_fraction();
        prop_assert!(bf >= lo - 1e-9 && bf <= hi + 1e-9, "{bf} outside [{lo},{hi}]");

        let mut rng = StdRng::seed_from_u64(seed);
        let perturbed = blended.perturbed(strength, &mut rng);
        let sum: f64 = perturbed.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (p, q) in perturbed.probabilities().iter().zip(blended.probabilities()) {
            prop_assert!(*p >= 0.0);
            // Perturbation is bounded multiplicatively (up to renorm).
            if *q > 0.0 {
                prop_assert!(p / q < (1.0 + strength) / (1.0 - strength) + 1e-6);
            }
        }
    }

    /// Sampling never produces an interaction whose mix probability is 0.
    #[test]
    fn sampling_respects_support(seed in any::<u64>(), zeroed in 0usize..14) {
        let mut weights = [1.0f64; 14];
        weights[zeroed] = 0.0;
        let mix = Mix::custom(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..300 {
            let t = mix.sample(&mut rng);
            prop_assert_ne!(t.index(), zeroed, "sampled a zero-probability type");
        }
    }

    /// Traffic programs: population at any time is bounded by the phase
    /// extrema, and the program duration is the sum of phase durations.
    #[test]
    fn program_population_is_bounded(
        levels in prop::collection::vec((1u32..500, 10.0f64..60.0), 1..6),
        probe in 0.0f64..400.0,
    ) {
        let mut program = TrafficProgram::steady(Mix::shopping(), levels[0].0, levels[0].1);
        for &(ebs, d) in &levels[1..] {
            program = program.then_ramp(Mix::shopping(), ebs, d);
        }
        let expected: f64 = levels.iter().map(|l| l.1).sum();
        prop_assert!((program.duration_s() - expected).abs() < 1e-9);
        let max = levels.iter().map(|l| l.0).max().unwrap();
        let min = levels.iter().map(|l| l.0).min().unwrap();
        let ebs = program.at(probe).ebs;
        prop_assert!(ebs >= min && ebs <= max, "{ebs} outside [{min},{max}]");
    }

    /// Transition chains stay row-stochastic under arbitrary blend +
    /// perturbation pipelines, and their stationary distributions are
    /// proper distributions over the 14 interactions.
    #[test]
    fn transition_chains_stay_valid(
        a in 0u8..3,
        b in 0u8..3,
        w in 0.0f64..1.0,
        strength in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let mix = canonical(a).blend(&canonical(b), w);
        let mut rng = StdRng::seed_from_u64(seed);
        let chain = TransitionModel::from_mix(&mix).perturbed(strength, &mut rng);
        prop_assert!(chain.is_valid());
        let pi = chain.stationary();
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(pi.iter().all(|p| (0.0..=1.0).contains(p)));
        // Home is reachable from everywhere, so it must carry mass.
        prop_assert!(pi[RequestType::Home.index()] > 0.01);
    }

    /// Walking the chain visits only structurally allowed edges.
    #[test]
    fn chain_walk_respects_structure(mix_ix in 0u8..3, seed in any::<u64>()) {
        let chain = TransitionModel::from_mix(&canonical(mix_ix));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current = None;
        for _ in 0..200 {
            let next = chain.sample(current, &mut rng);
            if let Some(c) = current {
                prop_assert!(
                    chain.row(c)[next.index()] > 0.0,
                    "walked a zero-probability edge {:?} -> {:?}", c, next
                );
            }
            current = Some(next);
        }
    }
}
