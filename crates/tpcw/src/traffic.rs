//! Traffic programs: the EB population and mix as functions of time.
//!
//! The paper's training traffic is a *ramp-up* (gradually increasing
//! concurrent sessions until overload) followed by *spike* workloads
//! (occasional extreme bursts); its testing traffic adds an *interleaved*
//! mix switching between browsing and ordering, and an *unknown* mix. A
//! [`TrafficProgram`] is a sequence of [`Phase`]s, each holding a mix and a
//! shape for the EB count over the phase duration.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::mix::Mix;

/// How the EB population evolves within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopulationShape {
    /// Constant population.
    Steady {
        /// Number of EBs.
        ebs: u32,
    },
    /// Linear ramp from `from` to `to` EBs across the phase.
    Ramp {
        /// Population at phase start.
        from: u32,
        /// Population at phase end.
        to: u32,
    },
}

/// One contiguous phase of a traffic program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Mix active during this phase.
    pub mix: Mix,
    /// Population shape during this phase.
    pub shape: PopulationShape,
    /// Phase duration in seconds.
    pub duration_s: f64,
}

impl Phase {
    fn ebs_at(&self, t_in_phase: f64) -> u32 {
        match self.shape {
            PopulationShape::Steady { ebs } => ebs,
            PopulationShape::Ramp { from, to } => {
                let frac = (t_in_phase / self.duration_s).clamp(0.0, 1.0);
                let v = f64::from(from) + frac * (f64::from(to) - f64::from(from));
                v.round() as u32
            }
        }
    }
}

/// Snapshot of the traffic program at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    /// Target number of concurrent emulated browsers.
    pub ebs: u32,
    /// Active mix.
    pub mix: Mix,
    /// Index of the active phase.
    pub phase_index: usize,
}

/// A piecewise traffic program: phases executed back to back. After the
/// last phase ends the final phase's end state persists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficProgram {
    phases: Vec<Phase>,
}

impl TrafficProgram {
    /// A program from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has a non-positive
    /// duration.
    pub fn new(phases: Vec<Phase>) -> TrafficProgram {
        assert!(
            !phases.is_empty(),
            "a traffic program needs at least one phase"
        );
        for (i, p) in phases.iter().enumerate() {
            assert!(
                p.duration_s > 0.0 && p.duration_s.is_finite(),
                "phase {i} has non-positive duration"
            );
        }
        TrafficProgram { phases }
    }

    /// A single steady phase.
    pub fn steady(mix: Mix, ebs: u32, duration_s: f64) -> TrafficProgram {
        TrafficProgram::new(vec![Phase {
            mix,
            shape: PopulationShape::Steady { ebs },
            duration_s,
        }])
    }

    /// A single linear ramp — the paper's ramp-up training workload.
    pub fn ramp(mix: Mix, from: u32, to: u32, duration_s: f64) -> TrafficProgram {
        TrafficProgram::new(vec![Phase {
            mix,
            shape: PopulationShape::Ramp { from, to },
            duration_s,
        }])
    }

    /// Append a steady phase.
    pub fn then_steady(mut self, mix: Mix, ebs: u32, duration_s: f64) -> TrafficProgram {
        self.phases.push(Phase {
            mix,
            shape: PopulationShape::Steady { ebs },
            duration_s,
        });
        self
    }

    /// Append a ramp phase starting from the previous phase's final
    /// population.
    pub fn then_ramp(mut self, mix: Mix, to: u32, duration_s: f64) -> TrafficProgram {
        let from = self.final_ebs();
        self.phases.push(Phase {
            mix,
            shape: PopulationShape::Ramp { from, to },
            duration_s,
        });
        self
    }

    /// Append a spike phase: an abrupt jump to `ebs` — the paper's
    /// occasional extreme traffic burst.
    pub fn then_spike(self, mix: Mix, ebs: u32, duration_s: f64) -> TrafficProgram {
        self.then_steady(mix, ebs, duration_s)
    }

    /// The paper's *interleaved* test workload: alternate between two
    /// (mix, population) configurations every `period_s` for `cycles`
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` or `period_s <= 0`.
    pub fn interleaved(
        a: (Mix, u32),
        b: (Mix, u32),
        period_s: f64,
        cycles: usize,
    ) -> TrafficProgram {
        assert!(cycles > 0, "need at least one cycle");
        assert!(period_s > 0.0, "period must be positive");
        let mut phases = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles {
            phases.push(Phase {
                mix: a.0.clone(),
                shape: PopulationShape::Steady { ebs: a.1 },
                duration_s: period_s,
            });
            phases.push(Phase {
                mix: b.0.clone(),
                shape: PopulationShape::Steady { ebs: b.1 },
                duration_s: period_s,
            });
        }
        TrafficProgram::new(phases)
    }

    /// Total program duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Population at the end of the program.
    pub fn final_ebs(&self) -> u32 {
        let last = self.phases.last().expect("programs are non-empty");
        last.ebs_at(last.duration_s)
    }

    /// The traffic state at time `t` seconds from program start. Times
    /// before 0 clamp to the start; times past the end clamp to the final
    /// state.
    pub fn at(&self, t: f64) -> TrafficSnapshot {
        let mut remaining = t.max(0.0);
        for (i, p) in self.phases.iter().enumerate() {
            if remaining < p.duration_s || i == self.phases.len() - 1 {
                return TrafficSnapshot {
                    ebs: p.ebs_at(remaining.min(p.duration_s)),
                    mix: p.mix.clone(),
                    phase_index: i,
                };
            }
            remaining -= p.duration_s;
        }
        unreachable!("loop always returns on the last phase");
    }

    /// Times (seconds from program start) at which the active phase
    /// changes — useful for aligning samples with mix switches.
    pub fn phase_boundaries(&self) -> Vec<f64> {
        let mut acc = 0.0;
        let mut out = Vec::with_capacity(self.phases.len());
        for p in &self.phases {
            acc += p.duration_s;
            out.push(acc);
        }
        out
    }
}

impl fmt::Display for TrafficProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TrafficProgram[{} phases, {:.0}s]",
            self.phases.len(),
            self.duration_s()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ramp_interpolates_linearly() {
        let p = TrafficProgram::ramp(Mix::ordering(), 0, 100, 100.0);
        assert_eq!(p.at(0.0).ebs, 0);
        assert_eq!(p.at(50.0).ebs, 50);
        assert_eq!(p.at(100.0).ebs, 100);
        assert_eq!(p.at(1e9).ebs, 100, "clamps past the end");
    }

    #[test]
    fn phases_chain_and_spike_jumps() {
        let p = TrafficProgram::ramp(Mix::ordering(), 10, 50, 10.0)
            .then_spike(Mix::ordering(), 500, 5.0)
            .then_steady(Mix::ordering(), 50, 10.0);
        assert_eq!(p.at(9.99).phase_index, 0);
        assert_eq!(p.at(12.0).ebs, 500);
        assert_eq!(p.at(20.0).ebs, 50);
        assert!((p.duration_s() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn then_ramp_continues_from_previous_population() {
        let p =
            TrafficProgram::steady(Mix::browsing(), 80, 10.0).then_ramp(Mix::browsing(), 160, 10.0);
        assert_eq!(p.at(10.0).ebs, 80);
        assert_eq!(p.at(20.0).ebs, 160);
    }

    #[test]
    fn interleaved_alternates_mixes() {
        let p =
            TrafficProgram::interleaved((Mix::browsing(), 100), (Mix::ordering(), 200), 30.0, 3);
        assert_eq!(p.phases().len(), 6);
        assert_eq!(p.at(10.0).mix.id(), crate::MixId::Browsing);
        assert_eq!(p.at(40.0).mix.id(), crate::MixId::Ordering);
        assert_eq!(p.at(70.0).mix.id(), crate::MixId::Browsing);
        assert_eq!(p.at(40.0).ebs, 200);
    }

    #[test]
    fn negative_time_clamps_to_start() {
        let p = TrafficProgram::ramp(Mix::shopping(), 5, 10, 10.0);
        assert_eq!(p.at(-3.0).ebs, 5);
    }

    #[test]
    fn phase_boundaries_accumulate() {
        let p =
            TrafficProgram::steady(Mix::browsing(), 1, 10.0).then_steady(Mix::browsing(), 2, 20.0);
        assert_eq!(p.phase_boundaries(), vec![10.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_program_panics() {
        let _ = TrafficProgram::new(vec![]);
    }

    proptest! {
        #[test]
        fn population_is_always_within_phase_bounds(
            from in 0u32..1000, to in 0u32..1000, t in 0.0f64..200.0
        ) {
            let p = TrafficProgram::ramp(Mix::shopping(), from, to, 100.0);
            let ebs = p.at(t).ebs;
            let (lo, hi) = (from.min(to), from.max(to));
            prop_assert!(ebs >= lo && ebs <= hi);
        }
    }
}
