//! Customer-behaviour-model-graph (CBMG) session transitions.
//!
//! The real TPC-W Remote Browser Emulator does not draw interactions
//! independently: each emulated browser walks a Markov chain whose
//! transition matrix defines the mix, and the paper builds its *unknown*
//! workload precisely by "chang\[ing\] the transition probability in RBE"
//! (Section IV-A). This module models that: a row-stochastic 14×14
//! transition matrix constrained by the bookstore's navigation structure,
//! with the stationary distribution recovering the interaction
//! frequencies of a [`Mix`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::mix::{Mix, MixId};
use crate::request::RequestType;

/// Navigation structure of the TPC-W bookstore: from each page, which
/// interactions are reachable by a single click. `1` marks an edge.
///
/// Rows/columns follow [`RequestType::ALL`] order: Home, NewProducts,
/// BestSellers, ProductDetail, SearchRequest, SearchResults, ShoppingCart,
/// CustomerRegistration, BuyRequest, BuyConfirm, OrderInquiry,
/// OrderDisplay, AdminRequest, AdminConfirm.
const NAVIGATION: [[u8; 14]; 14] = [
    // From Home: browse entries, search, cart, order inquiry.
    [1, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0],
    // NewProducts: detail, search, home, cart.
    [1, 1, 0, 1, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0],
    // BestSellers: detail, search, home, cart.
    [1, 1, 0, 1, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0],
    // ProductDetail: related detail, search, cart, admin, home.
    [1, 1, 1, 1, 1, 0, 1, 0, 0, 0, 0, 0, 1, 0],
    // SearchRequest: results (mandatory), home.
    [1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0],
    // SearchResults: detail, refine search, cart, home.
    [1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0],
    // ShoppingCart: registration, keep shopping, home.
    [1, 1, 1, 1, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0],
    // CustomerRegistration: buy request, home.
    [1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0],
    // BuyRequest: buy confirm, cart, home.
    [1, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0],
    // BuyConfirm: back to browsing/searching, order inquiry.
    [1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0],
    // OrderInquiry: order display, home.
    [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0],
    // OrderDisplay: inquiry again, home, search.
    [1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0],
    // AdminRequest: admin confirm, home.
    [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1],
    // AdminConfirm: home, detail, search.
    [1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0],
];

/// A row-stochastic transition matrix over the 14 interactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    /// `rows[i][j]` = P(next = j | current = i).
    rows: [[f64; 14]; 14],
    /// Distribution of a session's first interaction.
    initial: [f64; 14],
}

impl TransitionModel {
    /// Build a navigation-constrained transition model whose stationary
    /// distribution approximates the interaction frequencies of `mix`.
    ///
    /// Each row weights the structurally reachable successors by the mix's
    /// target frequencies (a Metropolis-style construction); unreachable
    /// rows fall back to the mix itself (equivalent to returning via the
    /// home page). Sessions start at `Home` with probability ~0.8, else at
    /// a search page.
    pub fn from_mix(mix: &Mix) -> TransitionModel {
        let p = mix.probabilities();
        let mut rows = [[0.0f64; 14]; 14];
        for (i, row) in rows.iter_mut().enumerate() {
            let mut total = 0.0;
            for (j, cell) in row.iter_mut().enumerate() {
                if NAVIGATION[i][j] == 1 {
                    *cell = p[j].max(1e-6);
                    total += *cell;
                }
            }
            if total <= 0.0 {
                *row = *p;
            } else {
                for cell in row.iter_mut() {
                    *cell /= total;
                }
            }
        }
        let mut initial = [0.0; 14];
        initial[RequestType::Home.index()] = 0.8;
        initial[RequestType::SearchRequest.index()] = 0.2;
        TransitionModel { rows, initial }
    }

    /// The transition probabilities out of `from`.
    pub fn row(&self, from: RequestType) -> &[f64; 14] {
        &self.rows[from.index()]
    }

    /// Sample the next interaction given the current one (or a session
    /// start when `current` is `None`).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        current: Option<RequestType>,
        rng: &mut R,
    ) -> RequestType {
        let dist = match current {
            Some(c) => &self.rows[c.index()],
            None => &self.initial,
        };
        let mut u: f64 = rng.random();
        for (j, &p) in dist.iter().enumerate() {
            if u < p {
                return RequestType::from_index(j);
            }
            u -= p;
        }
        RequestType::from_index(13)
    }

    /// Multiplicatively perturb every transition probability and
    /// renormalize rows — the paper's "unknown workload" construction.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is not in `[0, 1)`.
    pub fn perturbed<R: Rng + ?Sized>(&self, strength: f64, rng: &mut R) -> TransitionModel {
        assert!((0.0..1.0).contains(&strength), "strength must be in [0,1)");
        let mut out = self.clone();
        for row in &mut out.rows {
            let mut total = 0.0;
            for cell in row.iter_mut() {
                if *cell > 0.0 {
                    let factor = 1.0 + strength * (rng.random::<f64>() * 2.0 - 1.0);
                    *cell *= factor;
                    total += *cell;
                }
            }
            if total > 0.0 {
                for cell in row.iter_mut() {
                    *cell /= total;
                }
            }
        }
        out
    }

    /// Stationary distribution of the chain (power iteration).
    pub fn stationary(&self) -> [f64; 14] {
        let mut v = [1.0 / 14.0; 14];
        for _ in 0..500 {
            let mut next = [0.0f64; 14];
            for (i, &vi) in v.iter().enumerate() {
                for (j, nj) in next.iter_mut().enumerate() {
                    *nj += vi * self.rows[i][j];
                }
            }
            let total: f64 = next.iter().sum();
            for nj in &mut next {
                *nj /= total;
            }
            let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = next;
            if delta < 1e-12 {
                break;
            }
        }
        v
    }

    /// The mix induced by the chain's stationary distribution.
    pub fn stationary_mix(&self) -> Mix {
        Mix::custom(&self.stationary())
    }

    /// Verify row-stochasticity (used by tests and after deserialization).
    pub fn is_valid(&self) -> bool {
        self.rows
            .iter()
            .chain(std::iter::once(&self.initial))
            .all(|row| {
                let total: f64 = row.iter().sum();
                row.iter().all(|p| (0.0..=1.0 + 1e-9).contains(p)) && (total - 1.0).abs() < 1e-6
            })
    }
}

/// Build the paper's unknown workload as a mix: blend the browsing and
/// ordering chains, perturb the transition probabilities, and take the
/// stationary interaction frequencies.
pub fn unknown_workload_mix<R: Rng + ?Sized>(blend: f64, strength: f64, rng: &mut R) -> Mix {
    let base = Mix::browsing().blend(&Mix::ordering(), blend);
    let chain = TransitionModel::from_mix(&base).perturbed(strength, rng);
    let mut mix = chain.stationary_mix();
    // Preserve the Custom id but guard against degenerate chains.
    if mix.probabilities().iter().any(|p| !p.is_finite()) {
        mix = base;
    }
    debug_assert_eq!(mix.id(), MixId::Custom);
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_are_stochastic_for_all_canonical_mixes() {
        for mix in [Mix::browsing(), Mix::shopping(), Mix::ordering()] {
            let t = TransitionModel::from_mix(&mix);
            assert!(t.is_valid(), "{:?}", mix.id());
        }
    }

    #[test]
    fn navigation_structure_is_respected() {
        let t = TransitionModel::from_mix(&Mix::shopping());
        // SearchRequest can go to SearchResults but never to BuyConfirm.
        let row = t.row(RequestType::SearchRequest);
        assert!(row[RequestType::SearchResults.index()] > 0.0);
        assert_eq!(row[RequestType::BuyConfirm.index()], 0.0);
        // CustomerRegistration leads toward BuyRequest.
        assert!(t.row(RequestType::CustomerRegistration)[RequestType::BuyRequest.index()] > 0.0);
    }

    #[test]
    fn stationary_tracks_mix_ordering() {
        // The chain cannot match the target frequencies exactly, but the
        // big/small ordering must carry over: ordering-mix chains order a
        // lot and rarely hit BestSellers.
        let t = TransitionModel::from_mix(&Mix::ordering());
        let pi = t.stationary();
        assert!(
            pi[RequestType::ShoppingCart.index()] > pi[RequestType::BestSellers.index()],
            "cart {} vs bestsellers {}",
            pi[RequestType::ShoppingCart.index()],
            pi[RequestType::BestSellers.index()]
        );
        let b = TransitionModel::from_mix(&Mix::browsing());
        let pib = b.stationary();
        assert!(
            pib[RequestType::BestSellers.index()] > pi[RequestType::BestSellers.index()],
            "browsing chain must hit BestSellers more"
        );
    }

    #[test]
    fn sampling_follows_the_chain() {
        let t = TransitionModel::from_mix(&Mix::shopping());
        let mut rng = StdRng::seed_from_u64(1);
        // From SearchRequest only structurally allowed successors appear.
        for _ in 0..500 {
            let next = t.sample(Some(RequestType::SearchRequest), &mut rng);
            assert!(
                matches!(next, RequestType::Home | RequestType::SearchResults),
                "illegal transition to {next:?}"
            );
        }
        // Session starts are Home or SearchRequest.
        for _ in 0..200 {
            let first = t.sample(None, &mut rng);
            assert!(matches!(
                first,
                RequestType::Home | RequestType::SearchRequest
            ));
        }
    }

    #[test]
    fn long_walk_frequencies_match_stationary() {
        let t = TransitionModel::from_mix(&Mix::shopping());
        let pi = t.stationary();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 14];
        let mut cur = None;
        let n = 300_000;
        for _ in 0..n {
            let next = t.sample(cur, &mut rng);
            counts[next.index()] += 1;
            cur = Some(next);
        }
        for (i, &c) in counts.iter().enumerate() {
            let observed = c as f64 / n as f64;
            assert!(
                (observed - pi[i]).abs() < 0.01,
                "state {i}: walk {observed} vs stationary {}",
                pi[i]
            );
        }
    }

    #[test]
    fn perturbation_changes_but_preserves_structure() {
        let t = TransitionModel::from_mix(&Mix::browsing());
        let mut rng = StdRng::seed_from_u64(3);
        let p = t.perturbed(0.4, &mut rng);
        assert!(p.is_valid());
        assert_ne!(t, p);
        // Zero-probability edges stay zero (structure preserved).
        for i in 0..14 {
            for j in 0..14 {
                if NAVIGATION[i][j] == 0 {
                    assert_eq!(p.rows[i][j], 0.0, "edge ({i},{j}) appeared");
                }
            }
        }
    }

    #[test]
    fn unknown_workload_sits_between_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mix = unknown_workload_mix(0.5, 0.3, &mut rng);
        let bf = mix.browse_fraction();
        assert!(bf > 0.45 && bf < 0.95, "browse fraction {bf}");
        assert_eq!(mix.id(), MixId::Custom);
    }
}
