//! TPC-W traffic mixes: interaction frequency vectors.
//!
//! The specification's three canonical mixes are defined by their web
//! interaction percentages (spec clause 5.3). The paper additionally uses
//! an *unknown* mix produced by altering the RBE transition probabilities;
//! we model that with [`Mix::blend`] and [`Mix::perturbed`].

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::request::{RequestClass, RequestType};

/// Identifier of a workload mix, used to key per-workload synopses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MixId {
    /// TPC-W browsing mix (95% browse / 5% order).
    Browsing,
    /// TPC-W shopping mix (80% / 20%) — the WIPS reference mix.
    Shopping,
    /// TPC-W ordering mix (50% / 50%).
    Ordering,
    /// A non-canonical mix (blended or perturbed).
    Custom,
}

impl fmt::Display for MixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Canonical interaction percentages, spec order (see [`RequestType::ALL`]).
const BROWSING_PCT: [f64; 14] = [
    29.00, 11.00, 11.00, 21.00, 12.00, 11.00, // browse
    2.00, 0.82, 0.75, 0.69, 0.30, 0.25, 0.10, 0.09, // order
];
const SHOPPING_PCT: [f64; 14] = [
    16.00, 5.00, 5.00, 17.00, 20.00, 17.00, //
    11.60, 3.00, 2.60, 1.20, 0.75, 0.66, 0.10, 0.09,
];
const ORDERING_PCT: [f64; 14] = [
    9.12, 0.46, 0.46, 12.35, 14.53, 13.08, //
    13.53, 12.86, 12.73, 10.18, 0.25, 0.22, 0.12, 0.11,
];

/// A normalized distribution over the 14 TPC-W interactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    id: MixId,
    /// Probabilities aligned with [`RequestType::ALL`]; sums to 1.
    probabilities: [f64; 14],
}

impl Mix {
    /// The TPC-W browsing mix (95% browse interactions).
    pub fn browsing() -> Mix {
        Mix::from_percentages(MixId::Browsing, &BROWSING_PCT)
    }

    /// The TPC-W shopping mix (80% browse interactions); basis of WIPS.
    pub fn shopping() -> Mix {
        Mix::from_percentages(MixId::Shopping, &SHOPPING_PCT)
    }

    /// The TPC-W ordering mix (50% browse interactions).
    pub fn ordering() -> Mix {
        Mix::from_percentages(MixId::Ordering, &ORDERING_PCT)
    }

    /// Build a custom mix from nonnegative weights (normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative/non-finite or all weights are zero.
    pub fn custom(weights: &[f64; 14]) -> Mix {
        Mix::from_percentages(MixId::Custom, weights)
    }

    fn from_percentages(id: MixId, pct: &[f64; 14]) -> Mix {
        let total: f64 = pct.iter().sum();
        assert!(
            pct.iter().all(|p| p.is_finite() && *p >= 0.0) && total > 0.0,
            "mix weights must be nonnegative and not all zero"
        );
        let mut probabilities = [0.0; 14];
        for (p, &raw) in probabilities.iter_mut().zip(pct) {
            *p = raw / total;
        }
        Mix { id, probabilities }
    }

    /// The mix identifier.
    pub fn id(&self) -> MixId {
        self.id
    }

    /// Probability of one interaction type.
    pub fn probability(&self, request: RequestType) -> f64 {
        self.probabilities[request.index()]
    }

    /// The probabilities in [`RequestType::ALL`] order.
    pub fn probabilities(&self) -> &[f64; 14] {
        &self.probabilities
    }

    /// Fraction of interactions belonging to [`RequestClass::Browse`].
    pub fn browse_fraction(&self) -> f64 {
        RequestType::ALL
            .iter()
            .filter(|t| t.class() == RequestClass::Browse)
            .map(|t| self.probability(*t))
            .sum()
    }

    /// Linear blend `w·self + (1−w)·other` — models "unknown" traffic whose
    /// request mix lies between the canonical ones.
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside `[0, 1]`.
    pub fn blend(&self, other: &Mix, w: f64) -> Mix {
        assert!((0.0..=1.0).contains(&w), "blend weight must be in [0,1]");
        let mut pct = [0.0; 14];
        for i in 0..14 {
            pct[i] = w * self.probabilities[i] + (1.0 - w) * other.probabilities[i];
        }
        Mix::from_percentages(MixId::Custom, &pct)
    }

    /// A multiplicatively perturbed copy of this mix: each weight is scaled
    /// by a factor drawn uniformly from `[1−strength, 1+strength]`, then
    /// renormalized. This reproduces the paper's "unknown workload" built
    /// by changing the RBE transition probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is not in `[0, 1)`.
    pub fn perturbed<R: Rng + ?Sized>(&self, strength: f64, rng: &mut R) -> Mix {
        assert!((0.0..1.0).contains(&strength), "strength must be in [0,1)");
        let mut pct = [0.0; 14];
        for i in 0..14 {
            let factor = 1.0 + strength * (rng.random::<f64>() * 2.0 - 1.0);
            pct[i] = self.probabilities[i] * factor;
        }
        Mix::from_percentages(MixId::Custom, &pct)
    }

    /// Sample one interaction type.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> RequestType {
        let mut u: f64 = rng.random();
        for (i, &p) in self.probabilities.iter().enumerate() {
            if u < p {
                return RequestType::from_index(i);
            }
            u -= p;
        }
        // Floating-point slack: fall back to the last type.
        RequestType::from_index(13)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn canonical_mixes_sum_to_one() {
        for mix in [Mix::browsing(), Mix::shopping(), Mix::ordering()] {
            let sum: f64 = mix.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{:?} sums to {sum}", mix.id());
        }
    }

    #[test]
    fn browse_fractions_match_spec() {
        assert!((Mix::browsing().browse_fraction() - 0.95).abs() < 0.005);
        assert!((Mix::shopping().browse_fraction() - 0.80).abs() < 0.005);
        assert!((Mix::ordering().browse_fraction() - 0.50).abs() < 0.005);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mix = Mix::ordering();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 14];
        let n = 200_000;
        for _ in 0..n {
            counts[mix.sample(&mut rng).index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let observed = c as f64 / n as f64;
            let expected = mix.probabilities()[i];
            assert!(
                (observed - expected).abs() < 0.01,
                "type {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn blend_interpolates_browse_fraction() {
        let half = Mix::browsing().blend(&Mix::ordering(), 0.5);
        let bf = half.browse_fraction();
        assert!((bf - 0.725).abs() < 0.01, "bf {bf}");
        assert_eq!(half.id(), MixId::Custom);
    }

    #[test]
    fn blend_extremes_are_endpoints() {
        let b = Mix::browsing();
        let o = Mix::ordering();
        let all_b = b.blend(&o, 1.0);
        for t in RequestType::ALL {
            assert!((all_b.probability(t) - b.probability(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn perturbed_stays_normalized_and_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Mix::shopping().perturbed(0.3, &mut rng);
        let sum: f64 = p.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Perturbation is bounded, so the browse fraction stays in a band.
        let bf = p.browse_fraction();
        assert!(bf > 0.6 && bf < 0.95, "bf {bf}");
    }

    #[test]
    fn bestsellers_is_rare_in_ordering_mix() {
        // The ordering mix nearly eliminates the heavy DB queries — this is
        // what moves the bottleneck to the front end.
        assert!(Mix::ordering().probability(RequestType::BestSellers) < 0.01);
        assert!(Mix::browsing().probability(RequestType::BestSellers) > 0.10);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_weight_panics() {
        let mut w = [1.0; 14];
        w[3] = -0.1;
        let _ = Mix::custom(&w);
    }
}
