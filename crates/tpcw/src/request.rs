//! The 14 TPC-W web interactions and their Browse/Order classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two interaction classes of the TPC-W specification.
///
/// An interaction is *Browse* when it only browses or searches the site and
/// *Order* when it plays an explicit role in the ordering process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RequestClass {
    /// Browsing and searching interactions.
    Browse,
    /// Interactions participating in the ordering process.
    Order,
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestClass::Browse => f.write_str("Browse"),
            RequestClass::Order => f.write_str("Order"),
        }
    }
}

/// The 14 TPC-W web interaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RequestType {
    /// The bookstore home page.
    Home,
    /// New-products listing for a subject.
    NewProducts,
    /// Best-sellers listing — the famously heavy top-of-recent-orders
    /// query; dominant contributor to database load in browsing mixes.
    BestSellers,
    /// Product detail page for one item.
    ProductDetail,
    /// Search form.
    SearchRequest,
    /// Search result listing.
    SearchResults,
    /// Shopping-cart display/update.
    ShoppingCart,
    /// Customer registration form processing.
    CustomerRegistration,
    /// Buy request (order form, credit-card entry).
    BuyRequest,
    /// Buy confirmation — order insertion and payment authorization; the
    /// heaviest application-tier interaction.
    BuyConfirm,
    /// Order inquiry form.
    OrderInquiry,
    /// Display of a previous order.
    OrderDisplay,
    /// Administrative item-update form.
    AdminRequest,
    /// Administrative item-update confirmation.
    AdminConfirm,
}

impl RequestType {
    /// All 14 interaction types, in specification order.
    pub const ALL: [RequestType; 14] = [
        RequestType::Home,
        RequestType::NewProducts,
        RequestType::BestSellers,
        RequestType::ProductDetail,
        RequestType::SearchRequest,
        RequestType::SearchResults,
        RequestType::ShoppingCart,
        RequestType::CustomerRegistration,
        RequestType::BuyRequest,
        RequestType::BuyConfirm,
        RequestType::OrderInquiry,
        RequestType::OrderDisplay,
        RequestType::AdminRequest,
        RequestType::AdminConfirm,
    ];

    /// Number of interaction types.
    pub const COUNT: usize = 14;

    /// Dense index in `0..14`, aligned with [`RequestType::ALL`].
    pub fn index(&self) -> usize {
        RequestType::ALL
            .iter()
            .position(|t| t == self)
            .expect("type is in ALL")
    }

    /// Construct from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 14`.
    pub fn from_index(index: usize) -> RequestType {
        RequestType::ALL[index]
    }

    /// The interaction's Browse/Order class per the TPC-W specification.
    pub fn class(&self) -> RequestClass {
        match self {
            RequestType::Home
            | RequestType::NewProducts
            | RequestType::BestSellers
            | RequestType::ProductDetail
            | RequestType::SearchRequest
            | RequestType::SearchResults => RequestClass::Browse,
            RequestType::ShoppingCart
            | RequestType::CustomerRegistration
            | RequestType::BuyRequest
            | RequestType::BuyConfirm
            | RequestType::OrderInquiry
            | RequestType::OrderDisplay
            | RequestType::AdminRequest
            | RequestType::AdminConfirm => RequestClass::Order,
        }
    }

    /// Short name used in logs and reports.
    pub fn short_name(&self) -> &'static str {
        match self {
            RequestType::Home => "HOME",
            RequestType::NewProducts => "NEWP",
            RequestType::BestSellers => "BEST",
            RequestType::ProductDetail => "PROD",
            RequestType::SearchRequest => "SREQ",
            RequestType::SearchResults => "SRES",
            RequestType::ShoppingCart => "CART",
            RequestType::CustomerRegistration => "CREG",
            RequestType::BuyRequest => "BREQ",
            RequestType::BuyConfirm => "BCON",
            RequestType::OrderInquiry => "OINQ",
            RequestType::OrderDisplay => "ODIS",
            RequestType::AdminRequest => "AREQ",
            RequestType::AdminConfirm => "ACON",
        }
    }
}

impl fmt::Display for RequestType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_types() {
        assert_eq!(RequestType::ALL.len(), RequestType::COUNT);
    }

    #[test]
    fn six_browse_eight_order() {
        let browse = RequestType::ALL
            .iter()
            .filter(|t| t.class() == RequestClass::Browse)
            .count();
        assert_eq!(browse, 6);
        assert_eq!(RequestType::COUNT - browse, 8);
    }

    #[test]
    fn index_round_trips() {
        for (i, t) in RequestType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(RequestType::from_index(i), *t);
        }
    }

    #[test]
    fn short_names_are_unique() {
        let mut names: Vec<&str> = RequestType::ALL.iter().map(|t| t.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(RequestType::BestSellers.to_string(), "BestSellers");
        assert_eq!(RequestClass::Browse.to_string(), "Browse");
    }
}
