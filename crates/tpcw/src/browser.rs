//! Emulated browsers (EBs): the client sessions of the TPC-W Remote
//! Browser Emulator.
//!
//! Each EB cycles through *think → request → response → think*. Think
//! times follow the spec's truncated negative-exponential distribution
//! (mean 7 s, cap 70 s). The request type is drawn from the current
//! [`Mix`]; the simulator owns timing, so an EB only answers "what next".

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::mix::Mix;
use crate::request::RequestType;

/// TPC-W think-time distribution: negative exponential with a configurable
/// mean, truncated at `cap` (spec: mean 7 s, cap 70 s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThinkTime {
    mean_s: f64,
    cap_s: f64,
}

impl ThinkTime {
    /// Create a think-time distribution.
    ///
    /// # Panics
    ///
    /// Panics if `mean_s <= 0` or `cap_s < mean_s`.
    pub fn new(mean_s: f64, cap_s: f64) -> ThinkTime {
        assert!(mean_s > 0.0 && mean_s.is_finite(), "mean must be positive");
        assert!(cap_s >= mean_s, "cap must be at least the mean");
        ThinkTime { mean_s, cap_s }
    }

    /// The TPC-W specification defaults: mean 7 s, cap 70 s.
    pub fn tpcw() -> ThinkTime {
        ThinkTime::new(7.0, 70.0)
    }

    /// Mean think time in seconds.
    pub fn mean_s(&self) -> f64 {
        self.mean_s
    }

    /// Draw one think time in seconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(1e-12);
        (-u.ln() * self.mean_s).min(self.cap_s)
    }
}

impl Default for ThinkTime {
    fn default() -> ThinkTime {
        ThinkTime::tpcw()
    }
}

/// One emulated browser session.
///
/// The EB tracks its last interaction so mixes with session structure can
/// be modeled; the default behaviour samples interactions independently
/// from the mix, which preserves the interaction frequencies the spec
/// defines (our mixes are frequency vectors, see [`Mix`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulatedBrowser {
    id: u64,
    think: ThinkTime,
    last: Option<RequestType>,
    requests_issued: u64,
}

impl EmulatedBrowser {
    /// Create an EB with the spec's think-time defaults.
    pub fn new(id: u64) -> EmulatedBrowser {
        EmulatedBrowser::with_think_time(id, ThinkTime::tpcw())
    }

    /// Create an EB with a custom think-time distribution.
    pub fn with_think_time(id: u64, think: ThinkTime) -> EmulatedBrowser {
        EmulatedBrowser {
            id,
            think,
            last: None,
            requests_issued: 0,
        }
    }

    /// This EB's identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of requests issued so far.
    pub fn requests_issued(&self) -> u64 {
        self.requests_issued
    }

    /// The most recent interaction, if any.
    pub fn last_request(&self) -> Option<RequestType> {
        self.last
    }

    /// Draw the next think time in seconds.
    pub fn think_time<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.think.sample(rng)
    }

    /// Choose the next interaction under `mix` and record it.
    pub fn next_request<R: Rng + ?Sized>(&mut self, mix: &Mix, rng: &mut R) -> RequestType {
        let t = mix.sample(rng);
        self.last = Some(t);
        self.requests_issued += 1;
        t
    }

    /// Choose the next interaction by walking a CBMG transition chain
    /// from the browser's last interaction (session-structured variant of
    /// [`EmulatedBrowser::next_request`]).
    pub fn next_request_markov<R: Rng + ?Sized>(
        &mut self,
        chain: &crate::transition::TransitionModel,
        rng: &mut R,
    ) -> RequestType {
        let t = chain.sample(self.last, rng);
        self.last = Some(t);
        self.requests_issued += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn think_time_mean_is_close() {
        let tt = ThinkTime::tpcw();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| tt.sample(&mut rng)).sum::<f64>() / n as f64;
        // Truncation at 70 s shaves a little off the 7 s mean.
        assert!((mean - 7.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn think_time_respects_cap() {
        let tt = ThinkTime::new(5.0, 10.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = tt.sample(&mut rng);
            assert!(s > 0.0 && s <= 10.0);
        }
    }

    #[test]
    fn browser_counts_requests_and_tracks_last() {
        let mut eb = EmulatedBrowser::new(17);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(eb.last_request(), None);
        let mix = Mix::shopping();
        let t = eb.next_request(&mix, &mut rng);
        assert_eq!(eb.last_request(), Some(t));
        for _ in 0..9 {
            eb.next_request(&mix, &mut rng);
        }
        assert_eq!(eb.requests_issued(), 10);
        assert_eq!(eb.id(), 17);
    }

    #[test]
    fn browsing_mix_browser_mostly_browses() {
        let mut eb = EmulatedBrowser::new(0);
        let mut rng = StdRng::seed_from_u64(5);
        let mix = Mix::browsing();
        let n = 20_000;
        let browse = (0..n)
            .filter(|_| eb.next_request(&mix, &mut rng).class() == crate::RequestClass::Browse)
            .count();
        let frac = browse as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "browse fraction {frac}");
    }

    #[test]
    fn markov_browser_walks_the_chain() {
        use crate::transition::TransitionModel;
        let chain = TransitionModel::from_mix(&Mix::shopping());
        let mut eb = EmulatedBrowser::new(1);
        let mut rng = StdRng::seed_from_u64(9);
        let first = eb.next_request_markov(&chain, &mut rng);
        assert!(matches!(
            first,
            crate::RequestType::Home | crate::RequestType::SearchRequest
        ));
        for _ in 0..50 {
            let prev = eb.last_request().unwrap();
            let next = eb.next_request_markov(&chain, &mut rng);
            assert!(
                chain.row(prev)[next.index()] > 0.0,
                "illegal edge {prev:?}->{next:?}"
            );
        }
        assert_eq!(eb.requests_issued(), 51);
    }

    #[test]
    #[should_panic(expected = "cap must be at least")]
    fn bad_cap_panics() {
        let _ = ThinkTime::new(7.0, 1.0);
    }
}
