//! Deterministic parallel execution for the webcap workspace.
//!
//! Every embarrassingly parallel fan-out in the system — independent
//! training/evaluation executions, cross-validation folds,
//! forward-selection candidate scoring, benchmark grid cells — goes
//! through [`par_map`], which runs tasks on crossbeam scoped threads while
//! preserving **bit-for-bit determinism**: results are collected into the
//! input order, every task is a pure function of its input, and any
//! randomness a task needs comes from its own pre-derived seed stream
//! ([`derive_seed`], keyed by `(task kind, index, base seed)`), never from
//! a shared RNG. Consequently the output of a parallel run is byte-
//! identical to the sequential run regardless of thread count or
//! scheduling — the invariant `crates/core/tests/determinism.rs` enforces.
//!
//! The degree of parallelism is a runtime knob ([`Parallelism`]) so the
//! same binary can run single-threaded (reference results, CI
//! reproducibility checks) or saturate the host. `Auto` honours the
//! `WEBCAP_JOBS` environment variable, which the CI matrix uses to re-run
//! the whole test suite at 1, 2, and 8 threads.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// How many worker threads a fan-out point may use.
///
/// The knob never changes *results* — parallel execution is
/// deterministic by construction — only wall-clock time. It is
/// deliberately excluded from serialized configurations (`serde` skips it
/// at the embedding sites) so that meters trained at different thread
/// counts serialize to identical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Run every task inline on the calling thread (the reference path).
    Sequential,
    /// Use exactly this many worker threads (clamped to at least 1;
    /// `Threads(1)` is equivalent to `Sequential`).
    Threads(usize),
    /// Size the pool from the host: `WEBCAP_JOBS` if set (an unparseable
    /// value is a startup error, not a silent fallback — see
    /// [`jobs_from_env`]), otherwise the available hardware parallelism,
    /// capped at [`MAX_AUTO_THREADS`].
    Auto,
}

/// Upper bound on the thread count `Parallelism::Auto` will pick.
pub const MAX_AUTO_THREADS: usize = 16;

/// Parse one `WEBCAP_JOBS` value. Pure so the error path is unit-testable
/// without touching process environment.
///
/// `"auto"` (any case) and `"0"` mean "size from the hardware"
/// (`Ok(None)`); a positive integer pins the thread count
/// (`Ok(Some(n))`); anything else is an error naming the variable and
/// the offending value. Leading/trailing whitespace is tolerated.
pub fn parse_jobs_env(raw: &str) -> Result<Option<usize>, String> {
    let trimmed = raw.trim();
    if trimmed.eq_ignore_ascii_case("auto") {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "invalid WEBCAP_JOBS value {raw:?}: expected a non-negative integer or \"auto\""
        )),
    }
}

/// Read and parse `WEBCAP_JOBS` exactly once per process.
///
/// Unset means "size from the hardware" (`Ok(None)`), exactly like
/// `WEBCAP_JOBS=0` or `WEBCAP_JOBS=auto`. A set-but-unparseable value is
/// an error — it used to be silently ignored, which made typos like
/// `WEBCAP_JOBS=eight` look identical to auto-sizing. Entry points
/// should call this at startup so the error surfaces before any fan-out
/// runs; [`Parallelism::worker_count`] panics with the same message as a
/// backstop if an invalid value survives to a fan-out point.
pub fn jobs_from_env() -> Result<Option<usize>, String> {
    static JOBS_ENV: OnceLock<Result<Option<usize>, String>> = OnceLock::new();
    JOBS_ENV
        .get_or_init(|| match std::env::var("WEBCAP_JOBS") {
            Ok(raw) => parse_jobs_env(&raw),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err("invalid WEBCAP_JOBS value: not valid UTF-8".to_string())
            }
        })
        .clone()
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::Auto
    }
}

impl Parallelism {
    /// Resolve the worker-thread count for a fan-out of `tasks` tasks.
    /// Always at least 1 and never more than `tasks` (when `tasks > 0`).
    pub fn worker_count(self, tasks: usize) -> usize {
        let raw = match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => jobs_from_env()
                .unwrap_or_else(|e| panic!("{e}"))
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
                .min(MAX_AUTO_THREADS),
        };
        raw.min(tasks.max(1))
    }

    /// Parse a `--jobs`-style value: `auto`/`0` → [`Parallelism::Auto`],
    /// `1` → [`Parallelism::Sequential`], `n` → [`Parallelism::Threads`].
    pub fn from_jobs(value: &str) -> Option<Parallelism> {
        if value.eq_ignore_ascii_case("auto") {
            return Some(Parallelism::Auto);
        }
        match value.parse::<usize>().ok()? {
            0 => Some(Parallelism::Auto),
            1 => Some(Parallelism::Sequential),
            n => Some(Parallelism::Threads(n)),
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Sequential => f.write_str("sequential"),
            Parallelism::Threads(n) => write!(f, "{n} threads"),
            Parallelism::Auto => f.write_str("auto"),
        }
    }
}

/// Namespaces for [`derive_seed`], one per kind of parallel task, so
/// seed streams never collide across fan-out points that share a base
/// seed.
pub mod seed_domain {
    /// Independent training executions (one simulated run each).
    pub const TRAINING_RUN: u64 = 0x74_72_61_69_6e; // "train"
    /// Metric-synthesis noise of a training execution.
    pub const TRAINING_METRICS: u64 = 0x74_6d_65_74; // "tmet"
    /// Independent evaluation executions.
    pub const EVALUATION_RUN: u64 = 0x65_76_61_6c; // "eval"
    /// Benchmark grid cells.
    pub const BENCH_CELL: u64 = 0x63_65_6c_6c; // "cell"
    /// Per-tier telemetry agents' metric synthesis (`webcap-net`): the
    /// per-sample seed is derived from `(AGENT_METRICS + tier index,
    /// sample seq, base seed)`, so a replayed or re-sent sample always
    /// regenerates identical metric rows regardless of what was dropped
    /// before it.
    pub const AGENT_METRICS: u64 = 0x61_67_6e_74; // "agnt"
}

/// Derive an independent `StdRng`-ready seed for one parallel task,
/// keyed by `(domain, index, base)`.
///
/// The derivation is a SplitMix64-style finalizer over the three keys, so
/// nearby `(domain, index)` pairs produce statistically unrelated streams
/// and — crucially — the seed depends only on the task's *identity*,
/// never on which worker thread runs it or in what order. Deriving all
/// seeds up front is what makes parallel execution bit-identical to
/// sequential execution.
pub fn derive_seed(domain: u64, index: u64, base: u64) -> u64 {
    let mut z = base
        .wrapping_add(domain.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map `inputs` through `f`, preserving input order in the output.
///
/// With [`Parallelism::Sequential`] (or a resolved worker count of 1)
/// this is a plain in-order map on the calling thread. Otherwise tasks
/// are pulled from a lock-free queue by crossbeam scoped worker threads
/// and each result is written into its input's slot, so the output is
/// identical to the sequential map whenever `f` is a pure function of its
/// input — scheduling and thread count cannot reorder or alter results.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope observes the worker failure).
pub fn par_map<T, R, F>(par: Parallelism, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let total = inputs.len();
    let workers = par.worker_count(total);
    if workers <= 1 || total <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let queue = crossbeam::queue::SegQueue::new();
    for job in inputs.into_iter().enumerate() {
        queue.push(job);
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(total, || None);
    let results_mutex = std::sync::Mutex::new(&mut results);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                while let Some((idx, input)) = queue.pop() {
                    let out = f(input);
                    let mut guard = results_mutex.lock().expect("no poisoned workers");
                    guard[idx] = Some(out);
                }
            });
        }
    })
    .expect("parallel worker panicked");
    results
        .into_iter()
        .map(|r| r.expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_for_pure_functions() {
        let inputs: Vec<u64> = (0..257).collect();
        let f = |x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let seq = par_map(Parallelism::Sequential, inputs.clone(), f);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            assert_eq!(seq, par_map(par, inputs.clone(), f), "{par}");
        }
    }

    #[test]
    fn order_is_preserved() {
        let out = par_map(
            Parallelism::Threads(4),
            (0..100).collect::<Vec<i32>>(),
            |x| x * 2,
        );
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = par_map(Parallelism::Threads(8), Vec::new(), |x: i32| x);
        assert!(empty.is_empty());
        let one = par_map(Parallelism::Threads(8), vec![41], |x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Sequential.worker_count(100), 1);
        assert_eq!(Parallelism::Threads(4).worker_count(100), 4);
        assert_eq!(Parallelism::Threads(0).worker_count(100), 1);
        assert_eq!(Parallelism::Threads(8).worker_count(3), 3);
        let auto = Parallelism::Auto.worker_count(1000);
        assert!((1..=MAX_AUTO_THREADS).contains(&auto));
    }

    #[test]
    fn jobs_env_parsing() {
        assert_eq!(parse_jobs_env("auto"), Ok(None));
        assert_eq!(parse_jobs_env("AUTO"), Ok(None));
        assert_eq!(parse_jobs_env("0"), Ok(None));
        assert_eq!(parse_jobs_env(" 8 "), Ok(Some(8)));
        assert_eq!(parse_jobs_env("1"), Ok(Some(1)));
        for bad in ["", "eight", "1.5", "-2", "2x"] {
            let err = parse_jobs_env(bad).expect_err(bad);
            assert!(err.contains("WEBCAP_JOBS"), "{err}");
            assert!(err.contains(bad.trim()) || bad.trim().is_empty(), "{err}");
        }
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(Parallelism::from_jobs("auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::from_jobs("0"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::from_jobs("1"), Some(Parallelism::Sequential));
        assert_eq!(Parallelism::from_jobs("6"), Some(Parallelism::Threads(6)));
        assert_eq!(Parallelism::from_jobs("x"), None);
    }

    #[test]
    fn derived_seeds_are_distinct_per_key() {
        let mut seen = std::collections::BTreeSet::new();
        for domain in [seed_domain::TRAINING_RUN, seed_domain::EVALUATION_RUN] {
            for index in 0..64 {
                for base in [0u64, 1, 0xdead_beef] {
                    assert!(
                        seen.insert(derive_seed(domain, index, base)),
                        "collision at ({domain}, {index}, {base})"
                    );
                }
            }
        }
    }

    #[test]
    fn derive_seed_is_a_pure_function() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
        assert_ne!(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
    }

    #[test]
    fn display_names() {
        assert_eq!(Parallelism::Sequential.to_string(), "sequential");
        assert_eq!(Parallelism::Threads(3).to_string(), "3 threads");
        assert_eq!(Parallelism::Auto.to_string(), "auto");
    }
}
