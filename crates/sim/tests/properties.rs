//! Property-based tests of the simulator's conservation laws and
//! determinism guarantees.

use proptest::prelude::*;
use webcap_sim::resources::{FcfsDisk, PsCpu, TokenPool};
use webcap_sim::{run, SimConfig, SimTime};
use webcap_tpcw::{Mix, TrafficProgram};

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

proptest! {
    /// Work conservation: every unit of demand pushed into a PS CPU is
    /// eventually delivered, and the delivered-work accumulator matches.
    #[test]
    fn ps_cpu_conserves_work(
        demands in prop::collection::vec(0.01f64..2.0, 1..20),
        cores in 1u32..4,
        alpha in 0.0f64..0.05,
    ) {
        let mut cpu = PsCpu::new(cores, 1.0, alpha);
        let total: f64 = demands.iter().sum();
        for (i, &d) in demands.iter().enumerate() {
            cpu.push(t(0.0), i as u64, d);
        }
        let mut now = t(0.0);
        let mut completed = 0usize;
        while let Some(done) = cpu.next_completion(now) {
            now = done;
            cpu.pop_completed(now);
            completed += 1;
            prop_assert!(completed <= demands.len(), "more completions than jobs");
        }
        prop_assert_eq!(completed, demands.len());
        let (_, delivered, _) = cpu.stats();
        // Delivered work equals the demand sum (within µs rounding).
        prop_assert!((delivered - total).abs() < 1e-3 * total + 1e-3,
            "delivered {} vs demanded {}", delivered, total);
    }

    /// The job with the least remaining work always completes first, so
    /// completion times are non-decreasing.
    #[test]
    fn ps_cpu_completions_are_ordered(
        demands in prop::collection::vec(0.01f64..1.0, 2..15),
    ) {
        let mut cpu = PsCpu::new(1, 1.0, 0.0);
        for (i, &d) in demands.iter().enumerate() {
            cpu.push(t(0.0), i as u64, d);
        }
        let mut now = t(0.0);
        let mut last = now;
        while let Some(done) = cpu.next_completion(now) {
            prop_assert!(done >= last);
            last = done;
            now = done;
            cpu.pop_completed(now);
        }
    }

    /// Token conservation: tokens held never exceed capacity, and every
    /// waiter eventually receives a token in FIFO order.
    #[test]
    fn token_pool_is_conserving_and_fifo(
        capacity in 1usize..8,
        arrivals in prop::collection::vec(0u8..2, 1..40),
    ) {
        let mut pool = TokenPool::new(capacity);
        let mut queued: Vec<u64> = Vec::new();
        let mut granted: Vec<u64> = Vec::new();
        let mut held = 0usize;
        let mut next_id = 0u64;
        let mut clock = 0.0;
        for op in arrivals {
            clock += 0.1;
            if op == 0 || held == 0 {
                // Arrival.
                let id = next_id;
                next_id += 1;
                if pool.try_acquire(t(clock)) {
                    held += 1;
                    granted.push(id);
                } else {
                    pool.enqueue(t(clock), id);
                    queued.push(id);
                }
            } else {
                // Release.
                match pool.release(t(clock)) {
                    Some(waiter) => {
                        // FIFO: must be the oldest queued id.
                        prop_assert_eq!(Some(waiter), queued.first().copied());
                        queued.remove(0);
                        granted.push(waiter);
                    }
                    None => {
                        held -= 1;
                    }
                }
            }
            prop_assert!(pool.in_use() <= capacity);
            prop_assert_eq!(pool.queue_len(), queued.len());
        }
        // Granted ids are unique.
        let mut sorted = granted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), granted.len());
    }

    /// The disk serves operations one at a time in arrival order and its
    /// busy time equals the service-time sum.
    #[test]
    fn disk_is_fcfs_and_accounts_busy_time(
        services in prop::collection::vec(0.01f64..0.5, 1..20),
    ) {
        let mut disk = FcfsDisk::new();
        let mut pending: Option<SimTime> = None;
        for (i, &s) in services.iter().enumerate() {
            if let Some(done) = disk.submit(t(0.0), i as u64, s) {
                pending = Some(done);
            }
        }
        let mut order = Vec::new();
        while let Some(done) = pending {
            let (finished, next) = disk.complete(done);
            order.push(finished);
            pending = next.map(|(_, d)| d);
        }
        prop_assert_eq!(order.len(), services.len());
        for (i, &id) in order.iter().enumerate() {
            prop_assert_eq!(id, i as u64, "FCFS order violated");
        }
        let total: f64 = services.iter().sum();
        let (busy, _, ops) = disk.stats(t(1000.0));
        prop_assert_eq!(ops, services.len() as u64);
        // Each operation's service time is rounded to the microsecond grid.
        let tolerance = 2e-6 * services.len() as f64;
        prop_assert!((busy - total).abs() < tolerance, "busy {} vs {}", busy, total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end conservation and determinism over random small
    /// workloads: issued = completed + in-flight, and same seed → same
    /// telemetry.
    #[test]
    fn engine_conserves_requests_and_is_deterministic(
        seed in 0u64..1000,
        ebs in 5u32..60,
        browse_blend in 0.0f64..1.0,
    ) {
        let mix = Mix::browsing().blend(&Mix::ordering(), browse_blend);
        let program = TrafficProgram::steady(mix, ebs, 45.0);
        let a = run(SimConfig::testbed(seed), program.clone());
        let b = run(SimConfig::testbed(seed), program);
        prop_assert_eq!(&a.samples, &b.samples);
        let issued: u64 = a.samples.iter().map(|s| s.issued).sum();
        let completed: u64 = a.samples.iter().map(|s| s.completed).sum();
        let in_flight = a.samples.last().map_or(0, |s| s.in_flight) as u64;
        prop_assert_eq!(issued, completed + in_flight);
        // Utilizations are fractions.
        for s in &a.samples {
            prop_assert!((0.0..=1.0).contains(&s.app.utilization));
            prop_assert!((0.0..=1.0).contains(&s.db.utilization));
            prop_assert!((0.0..=1.0).contains(&s.db.disk_utilization));
        }
    }
}
