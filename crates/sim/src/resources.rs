//! Queueing resources: a processor-sharing CPU with contention
//! degradation, a FIFO token pool (worker threads / DB connections), and a
//! FCFS disk.
//!
//! All resources keep time-integral accumulators (busy time, delivered
//! work, queue-length integrals) that the telemetry sampler reads as
//! cumulative values and differences per sampling interval.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Identifier of a job inside the simulator (an in-flight request).
pub type JobId = u64;

/// A processor-sharing CPU with `cores` cores at `speed` work-units per
/// second each, degraded by contention when more jobs are runnable than
/// cores exist:
///
/// `capacity(n) = min(n, cores)·speed / (1 + α·max(0, n − cores))`
///
/// The degradation term models context-switch and cache-pollution overhead
/// and produces the post-saturation *throughput decline* the paper
/// describes (its reference \[11\]). Every runnable job receives an equal
/// share `capacity(n)/n`.
#[derive(Debug, Clone)]
pub struct PsCpu {
    cores: f64,
    speed: f64,
    contention_alpha: f64,
    /// Fraction of capacity consumed by background interference (OS
    /// daemons, GC, cache warmup) — see `TierConfig::background`.
    background: f64,
    jobs: Vec<(JobId, f64)>,
    last_update: SimTime,
    generation: u64,
    // Cumulative accumulators.
    busy_time_s: f64,
    delivered_work_s: f64,
    job_time_integral: f64,
}

impl PsCpu {
    /// Create a CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`, `speed <= 0`, or `alpha < 0`.
    pub fn new(cores: u32, speed: f64, contention_alpha: f64) -> PsCpu {
        assert!(cores > 0, "need at least one core");
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        assert!(contention_alpha >= 0.0, "alpha must be nonnegative");
        PsCpu {
            cores: f64::from(cores),
            speed,
            contention_alpha,
            background: 0.0,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            generation: 0,
            busy_time_s: 0.0,
            delivered_work_s: 0.0,
            job_time_integral: 0.0,
        }
    }

    /// Total deliverable work rate with `n` runnable jobs.
    pub fn capacity(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n_f = n as f64;
        let base = n_f.min(self.cores) * self.speed * (1.0 - self.background);
        base / (1.0 + self.contention_alpha * (n_f - self.cores).max(0.0))
    }

    /// Update the background-interference fraction. Advances accounting to
    /// `now` first so past work is credited at the old rate, then bumps the
    /// generation (pending completion events are stale at the new rate).
    ///
    /// # Panics
    ///
    /// Panics if `background` is not within `[0, 0.95]`.
    pub fn set_background(&mut self, now: SimTime, background: f64) -> u64 {
        assert!(
            (0.0..=0.95).contains(&background),
            "background must be in [0, 0.95]"
        );
        self.advance(now);
        self.background = background;
        self.generation += 1;
        self.generation
    }

    /// Current background-interference fraction.
    pub fn background(&self) -> f64 {
        self.background
    }

    /// Peak capacity (no contention): `cores · speed`.
    pub fn peak_capacity(&self) -> f64 {
        self.cores * self.speed
    }

    /// Number of runnable jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Generation counter; bumps on every membership change so stale
    /// completion events can be discarded.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advance internal accounting to `now`, depleting remaining work.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.seconds_since(self.last_update);
        if dt > 0.0 {
            let n = self.jobs.len();
            if n > 0 {
                let rate = self.capacity(n) / n as f64;
                let drained = rate * dt;
                for job in &mut self.jobs {
                    job.1 = (job.1 - drained).max(0.0);
                }
                self.busy_time_s += dt;
                self.delivered_work_s += self.capacity(n) * dt;
                self.job_time_integral += n as f64 * dt;
            }
            self.last_update = now;
        } else if now > self.last_update {
            self.last_update = now;
        }
    }

    /// Add a runnable job with `work` seconds of speed-1.0 demand.
    ///
    /// Call [`PsCpu::advance`] first (the engine always does). Returns the
    /// new generation.
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative or non-finite.
    pub fn push(&mut self, now: SimTime, id: JobId, work: f64) -> u64 {
        assert!(work >= 0.0 && work.is_finite(), "work must be nonnegative");
        self.advance(now);
        self.jobs.push((id, work));
        self.generation += 1;
        self.generation
    }

    /// When the next job will finish if the membership stays unchanged.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let n = self.jobs.len();
        if n == 0 {
            return None;
        }
        let rate = self.capacity(n) / n as f64;
        let min_remaining = self.jobs.iter().map(|j| j.1).fold(f64::INFINITY, f64::min);
        // Round *up* to the next microsecond so at the event time the
        // remaining work has truly reached zero.
        let us = (min_remaining / rate * 1e6).ceil().max(1.0) as u64;
        Some(SimTime::from_micros(now.as_micros() + us))
    }

    /// Remove and return the job with the least remaining work (the one
    /// that completes first). Returns the new generation alongside.
    ///
    /// # Panics
    ///
    /// Panics if no job is active.
    pub fn pop_completed(&mut self, now: SimTime) -> (JobId, u64) {
        self.advance(now);
        assert!(!self.jobs.is_empty(), "no active job to complete");
        let idx = self
            .jobs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("work is finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (id, _) = self.jobs.swap_remove(idx);
        self.generation += 1;
        (id, self.generation)
    }

    /// Remaining work of the job closest to completion (for tests).
    pub fn min_remaining(&self) -> Option<f64> {
        self.jobs
            .iter()
            .map(|j| j.1)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Cumulative statistics: `(busy_time_s, delivered_work_s,
    /// job_time_integral)`.
    pub fn stats(&self) -> (f64, f64, f64) {
        (
            self.busy_time_s,
            self.delivered_work_s,
            self.job_time_integral,
        )
    }
}

/// A FIFO pool of identical tokens: Tomcat worker threads or MySQL
/// connections. Jobs that cannot acquire a token wait in arrival order.
#[derive(Debug, Clone)]
pub struct TokenPool {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<JobId>,
    last_update: SimTime,
    in_use_integral: f64,
    queue_integral: f64,
    total_acquisitions: u64,
}

impl TokenPool {
    /// Create a pool with `capacity` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> TokenPool {
        assert!(capacity > 0, "pool capacity must be positive");
        TokenPool {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            last_update: SimTime::ZERO,
            in_use_integral: 0.0,
            queue_integral: 0.0,
            total_acquisitions: 0,
        }
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.seconds_since(self.last_update);
        if dt > 0.0 {
            self.in_use_integral += self.in_use as f64 * dt;
            self.queue_integral += self.waiters.len() as f64 * dt;
        }
        if now > self.last_update {
            self.last_update = now;
        }
    }

    /// Try to take a token; on failure the caller should
    /// [`TokenPool::enqueue`].
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.advance(now);
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.total_acquisitions += 1;
            true
        } else {
            false
        }
    }

    /// Join the wait queue.
    pub fn enqueue(&mut self, now: SimTime, id: JobId) {
        self.advance(now);
        self.waiters.push_back(id);
    }

    /// Release a token. If a waiter exists, the token passes directly to
    /// it and its id is returned (the engine resumes that job *holding*
    /// the token); otherwise the token returns to the pool.
    ///
    /// # Panics
    ///
    /// Panics if no token is in use.
    pub fn release(&mut self, now: SimTime) -> Option<JobId> {
        self.advance(now);
        assert!(self.in_use > 0, "release without acquire");
        if let Some(next) = self.waiters.pop_front() {
            self.total_acquisitions += 1;
            Some(next)
        } else {
            self.in_use -= 1;
            None
        }
    }

    /// Tokens currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Jobs currently waiting.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative statistics: `(in_use_integral, queue_integral,
    /// total_acquisitions)`; call with the current time to fold in the
    /// elapsed span.
    pub fn stats(&mut self, now: SimTime) -> (f64, f64, u64) {
        self.advance(now);
        (
            self.in_use_integral,
            self.queue_integral,
            self.total_acquisitions,
        )
    }
}

/// A single FCFS disk.
#[derive(Debug, Clone)]
pub struct FcfsDisk {
    busy: Option<JobId>,
    queue: VecDeque<(JobId, f64)>,
    last_update: SimTime,
    busy_time_s: f64,
    queue_integral: f64,
    ops: u64,
    busy_since: Option<SimTime>,
}

impl FcfsDisk {
    /// An idle disk.
    pub fn new() -> FcfsDisk {
        FcfsDisk {
            busy: None,
            queue: VecDeque::new(),
            last_update: SimTime::ZERO,
            busy_time_s: 0.0,
            queue_integral: 0.0,
            ops: 0,
            busy_since: None,
        }
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.seconds_since(self.last_update);
        if dt > 0.0 {
            if self.busy.is_some() {
                self.busy_time_s += dt;
            }
            self.queue_integral += self.queue.len() as f64 * dt;
        }
        if now > self.last_update {
            self.last_update = now;
        }
    }

    /// Submit an I/O of `service_s` seconds. If the disk is idle the
    /// operation starts immediately and its completion time is returned;
    /// otherwise it queues and `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if `service_s <= 0` (zero-length I/O should be skipped by
    /// the caller) or non-finite.
    pub fn submit(&mut self, now: SimTime, id: JobId, service_s: f64) -> Option<SimTime> {
        assert!(
            service_s > 0.0 && service_s.is_finite(),
            "disk service must be positive"
        );
        self.advance(now);
        if self.busy.is_none() {
            self.busy = Some(id);
            self.busy_since = Some(now);
            Some(SimTime::from_secs_f64(now.as_secs_f64() + service_s))
        } else {
            self.queue.push_back((id, service_s));
            None
        }
    }

    /// Complete the in-service operation. Returns the finished job and, if
    /// a queued operation starts, `(next_job, its_completion_time)`.
    ///
    /// # Panics
    ///
    /// Panics if the disk is idle.
    pub fn complete(&mut self, now: SimTime) -> (JobId, Option<(JobId, SimTime)>) {
        self.advance(now);
        let finished = self.busy.take().expect("disk completion while idle");
        self.ops += 1;
        self.busy_since = None;
        let next = self.queue.pop_front().map(|(id, service)| {
            self.busy = Some(id);
            self.busy_since = Some(now);
            (id, SimTime::from_secs_f64(now.as_secs_f64() + service))
        });
        (finished, next)
    }

    /// Whether an operation is in service.
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }

    /// Queued (not yet started) operations.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative statistics: `(busy_time_s, queue_integral, ops)`.
    pub fn stats(&mut self, now: SimTime) -> (f64, f64, u64) {
        self.advance(now);
        (self.busy_time_s, self.queue_integral, self.ops)
    }
}

impl Default for FcfsDisk {
    fn default() -> FcfsDisk {
        FcfsDisk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_job_runs_at_core_speed() {
        let mut cpu = PsCpu::new(1, 2.0, 0.0);
        cpu.push(t(0.0), 1, 1.0); // 1 work unit at 2 units/s → 0.5 s
        let done = cpu.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 0.5).abs() < 1e-5, "done at {done}");
        let (id, _) = cpu.pop_completed(done);
        assert_eq!(id, 1);
        assert_eq!(cpu.active_jobs(), 0);
    }

    #[test]
    fn two_jobs_share_one_core() {
        let mut cpu = PsCpu::new(1, 1.0, 0.0);
        cpu.push(t(0.0), 1, 1.0);
        cpu.push(t(0.0), 2, 1.0);
        // Each runs at 0.5 units/s → both near 2.0 s; first pop at ~2 s.
        let done = cpu.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn multicore_runs_jobs_in_parallel() {
        let mut cpu = PsCpu::new(2, 1.0, 0.0);
        cpu.push(t(0.0), 1, 1.0);
        cpu.push(t(0.0), 2, 1.0);
        let done = cpu.next_completion(t(0.0)).unwrap();
        assert!(
            (done.as_secs_f64() - 1.0).abs() < 1e-5,
            "2 cores → no sharing penalty"
        );
    }

    #[test]
    fn contention_degrades_capacity() {
        let cpu = PsCpu::new(1, 1.0, 0.1);
        assert_eq!(cpu.capacity(1), 1.0);
        assert!(
            (cpu.capacity(11) - 1.0 / 2.0).abs() < 1e-12,
            "10 excess at α=0.1 halves"
        );
        assert!(cpu.capacity(21) < cpu.capacity(11));
    }

    #[test]
    fn shorter_job_completes_first() {
        let mut cpu = PsCpu::new(1, 1.0, 0.0);
        cpu.push(t(0.0), 7, 5.0);
        cpu.push(t(0.0), 8, 0.5);
        let done = cpu.next_completion(t(0.0)).unwrap();
        let (id, _) = cpu.pop_completed(done);
        assert_eq!(id, 8);
        // Remaining job has 5 − 0.5 = 4.5 left (each got 0.5 of work).
        assert!((cpu.min_remaining().unwrap() - 4.5).abs() < 1e-5);
    }

    #[test]
    fn generation_bumps_on_membership_change() {
        let mut cpu = PsCpu::new(1, 1.0, 0.0);
        let g1 = cpu.push(t(0.0), 1, 1.0);
        let g2 = cpu.push(t(0.0), 2, 1.0);
        assert!(g2 > g1);
        let (_, g3) = cpu.pop_completed(cpu.next_completion(t(0.0)).unwrap());
        assert!(g3 > g2);
    }

    #[test]
    fn cpu_stats_accumulate() {
        let mut cpu = PsCpu::new(1, 1.0, 0.0);
        cpu.push(t(0.0), 1, 1.0);
        let done = cpu.next_completion(t(0.0)).unwrap();
        cpu.pop_completed(done);
        cpu.advance(t(5.0));
        let (busy, work, jobs_dt) = cpu.stats();
        assert!((busy - 1.0).abs() < 1e-5);
        assert!((work - 1.0).abs() < 1e-5);
        assert!((jobs_dt - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pool_acquire_release_fifo() {
        let mut pool = TokenPool::new(1);
        assert!(pool.try_acquire(t(0.0)));
        assert!(!pool.try_acquire(t(0.1)));
        pool.enqueue(t(0.1), 42);
        pool.enqueue(t(0.2), 43);
        assert_eq!(pool.queue_len(), 2);
        assert_eq!(pool.release(t(1.0)), Some(42), "FIFO handoff");
        assert_eq!(pool.release(t(2.0)), Some(43));
        assert_eq!(pool.release(t(3.0)), None);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn pool_stats_time_weighted() {
        let mut pool = TokenPool::new(2);
        assert!(pool.try_acquire(t(0.0)));
        let (in_use_int, _, acq) = pool.stats(t(2.0));
        assert!((in_use_int - 2.0).abs() < 1e-9, "1 token × 2 s");
        assert_eq!(acq, 1);
    }

    #[test]
    fn disk_serializes_operations() {
        let mut disk = FcfsDisk::new();
        let done1 = disk
            .submit(t(0.0), 1, 0.5)
            .expect("idle disk starts at once");
        assert!((done1.as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(disk.submit(t(0.1), 2, 0.25), None, "second op queues");
        assert_eq!(disk.queue_len(), 1);
        let (fin, next) = disk.complete(done1);
        assert_eq!(fin, 1);
        let (next_id, next_done) = next.expect("queued op starts");
        assert_eq!(next_id, 2);
        assert!((next_done.as_secs_f64() - 0.75).abs() < 1e-9);
        let (fin2, none) = disk.complete(next_done);
        assert_eq!(fin2, 2);
        assert!(none.is_none());
        assert!(!disk.is_busy());
        let (busy, _, ops) = disk.stats(t(1.0));
        assert_eq!(ops, 2);
        assert!((busy - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn over_release_panics() {
        let mut pool = TokenPool::new(1);
        let _ = pool.release(t(0.0));
    }

    #[test]
    #[should_panic(expected = "disk completion while idle")]
    fn idle_disk_complete_panics() {
        let mut disk = FcfsDisk::new();
        let _ = disk.complete(t(0.0));
    }
}
