//! Per-interaction service demands: how much CPU and disk work each TPC-W
//! request type imposes on each tier.
//!
//! Demands are expressed in *work units* — seconds on a speed-1.0 core —
//! so tier speed/core scaling is applied by the resource model. The base
//! values below are calibrated to the paper's testbed behaviour rather
//! than to any specific hardware: in the **browsing** mix the database
//! dominates (heavy BestSellers / SearchResults / NewProducts queries),
//! while in the **ordering** mix the application tier dominates (servlet
//! logic, session state, payment processing in BuyConfirm/BuyRequest),
//! which is exactly the bottleneck placement the paper reports.

use rand::Rng;
use serde::{Deserialize, Serialize};
use webcap_tpcw::{Mix, RequestType};

/// Service demand of one interaction type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Application-tier CPU work (seconds at speed 1.0), total across all
    /// bursts.
    pub app_cpu_s: f64,
    /// Database-tier CPU work, total across all calls.
    pub db_cpu_s: f64,
    /// Database disk service time, total across all calls.
    pub db_disk_s: f64,
    /// Number of database round trips the interaction makes.
    pub db_calls: u32,
}

impl Demand {
    /// Validate invariants: nonnegative finite demands, and at least one
    /// call when any DB work exists.
    fn validate(&self) {
        assert!(
            self.app_cpu_s >= 0.0 && self.db_cpu_s >= 0.0 && self.db_disk_s >= 0.0,
            "demands must be nonnegative"
        );
        assert!(
            self.app_cpu_s.is_finite() && self.db_cpu_s.is_finite() && self.db_disk_s.is_finite(),
            "demands must be finite"
        );
        if self.db_cpu_s > 0.0 || self.db_disk_s > 0.0 {
            assert!(self.db_calls > 0, "DB work requires at least one DB call");
        }
    }
}

/// The full demand table: one [`Demand`] per interaction type, plus a
/// demand variability parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandProfile {
    demands: [Demand; 14],
    /// Shape parameter of the per-request gamma noise on demands; higher
    /// means less variable. The multiplier has mean 1 and
    /// CV = `1/sqrt(shape)`.
    gamma_shape: u32,
}

impl DemandProfile {
    /// The calibrated two-tier bookstore profile described in DESIGN.md.
    pub fn testbed() -> DemandProfile {
        use RequestType as T;
        let mut demands = [Demand {
            app_cpu_s: 0.0,
            db_cpu_s: 0.0,
            db_disk_s: 0.0,
            db_calls: 1,
        }; 14];
        let table: [(T, f64, f64, f64, u32); 14] = [
            (T::Home, 0.004, 0.005, 0.001, 1),
            (T::NewProducts, 0.005, 0.050, 0.015, 1),
            (T::BestSellers, 0.005, 0.120, 0.035, 1),
            (T::ProductDetail, 0.004, 0.008, 0.002, 1),
            (T::SearchRequest, 0.003, 0.002, 0.000, 1),
            (T::SearchResults, 0.005, 0.040, 0.012, 1),
            (T::ShoppingCart, 0.028, 0.012, 0.002, 2),
            (T::CustomerRegistration, 0.035, 0.006, 0.001, 1),
            (T::BuyRequest, 0.040, 0.015, 0.003, 2),
            (T::BuyConfirm, 0.060, 0.020, 0.005, 3),
            (T::OrderInquiry, 0.004, 0.004, 0.001, 1),
            (T::OrderDisplay, 0.006, 0.015, 0.004, 2),
            (T::AdminRequest, 0.005, 0.006, 0.002, 1),
            (T::AdminConfirm, 0.015, 0.025, 0.006, 2),
        ];
        for (t, app, db, disk, calls) in table {
            demands[t.index()] = Demand {
                app_cpu_s: app,
                db_cpu_s: db,
                db_disk_s: disk,
                db_calls: calls,
            };
        }
        let profile = DemandProfile {
            demands,
            gamma_shape: 4,
        };
        for d in &profile.demands {
            d.validate();
        }
        profile
    }

    /// Override the demand-noise shape (higher = less variance).
    ///
    /// # Panics
    ///
    /// Panics if `shape == 0`.
    pub fn with_gamma_shape(mut self, shape: u32) -> DemandProfile {
        assert!(shape > 0, "gamma shape must be positive");
        self.gamma_shape = shape;
        self
    }

    /// Scale every interaction's disk demand by `factor` — used to build
    /// I/O-bound what-if testbeds (e.g. a cold buffer pool or an archival
    /// catalog that no longer fits in memory).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn with_disk_scale(mut self, factor: f64) -> DemandProfile {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "disk scale must be nonnegative"
        );
        for d in &mut self.demands {
            d.db_disk_s *= factor;
        }
        self
    }

    /// The base demand of one interaction type.
    pub fn demand(&self, t: RequestType) -> Demand {
        self.demands[t.index()]
    }

    /// Replace the demand of one interaction type (for what-if studies).
    ///
    /// # Panics
    ///
    /// Panics if the new demand violates the invariants documented on
    /// [`Demand`].
    pub fn set_demand(&mut self, t: RequestType, demand: Demand) {
        demand.validate();
        self.demands[t.index()] = demand;
    }

    /// Draw one noisy multiplier (mean 1.0) for per-request demand
    /// variation: a normalized Erlang/gamma with the configured shape.
    pub fn noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.gamma_shape;
        let mut sum = 0.0;
        for _ in 0..k {
            let u: f64 = rng.random::<f64>().max(1e-12);
            sum += -u.ln();
        }
        sum / f64::from(k)
    }

    /// Mean app-tier work per request under `mix` (seconds at speed 1.0).
    pub fn mean_app_demand(&self, mix: &Mix) -> f64 {
        RequestType::ALL
            .iter()
            .map(|&t| mix.probability(t) * self.demand(t).app_cpu_s)
            .sum()
    }

    /// Mean DB-tier CPU work per request under `mix`.
    pub fn mean_db_cpu_demand(&self, mix: &Mix) -> f64 {
        RequestType::ALL
            .iter()
            .map(|&t| mix.probability(t) * self.demand(t).db_cpu_s)
            .sum()
    }

    /// Mean DB disk time per request under `mix`.
    pub fn mean_db_disk_demand(&self, mix: &Mix) -> f64 {
        RequestType::ALL
            .iter()
            .map(|&t| mix.probability(t) * self.demand(t).db_disk_s)
            .sum()
    }
}

impl Default for DemandProfile {
    fn default() -> DemandProfile {
        DemandProfile::testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn browsing_mix_is_db_bound() {
        let p = DemandProfile::testbed();
        let mix = Mix::browsing();
        // DB tier has 2 cores in the default testbed; compare per-core
        // pressure.
        let app = p.mean_app_demand(&mix);
        let db = p.mean_db_cpu_demand(&mix) / 2.0;
        assert!(
            db > 2.0 * app,
            "browsing: db/core {db} should dominate app {app}"
        );
    }

    #[test]
    fn ordering_mix_is_app_bound() {
        let p = DemandProfile::testbed();
        let mix = Mix::ordering();
        let app = p.mean_app_demand(&mix);
        let db = p.mean_db_cpu_demand(&mix) / 2.0;
        assert!(
            app > 2.0 * db,
            "ordering: app {app} should dominate db/core {db}"
        );
    }

    #[test]
    fn shopping_mix_sits_between() {
        let p = DemandProfile::testbed();
        let b = p.mean_app_demand(&Mix::browsing());
        let s = p.mean_app_demand(&Mix::shopping());
        let o = p.mean_app_demand(&Mix::ordering());
        assert!(b < s && s < o);
    }

    #[test]
    fn noise_has_unit_mean() {
        let p = DemandProfile::testbed();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| p.noise(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn noise_variance_shrinks_with_shape() {
        let loose = DemandProfile::testbed().with_gamma_shape(1);
        let tight = DemandProfile::testbed().with_gamma_shape(16);
        let mut rng = StdRng::seed_from_u64(2);
        let var = |p: &DemandProfile, rng: &mut StdRng| {
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| p.noise(rng)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64
        };
        assert!(var(&loose, &mut rng) > 4.0 * var(&tight, &mut rng));
    }

    #[test]
    fn set_demand_round_trips() {
        let mut p = DemandProfile::testbed();
        let d = Demand {
            app_cpu_s: 0.5,
            db_cpu_s: 0.1,
            db_disk_s: 0.0,
            db_calls: 4,
        };
        p.set_demand(RequestType::Home, d);
        assert_eq!(p.demand(RequestType::Home), d);
    }

    #[test]
    fn disk_scale_multiplies_only_disk() {
        let base = DemandProfile::testbed();
        let scaled = DemandProfile::testbed().with_disk_scale(5.0);
        let mix = Mix::browsing();
        assert!(
            (scaled.mean_db_disk_demand(&mix) - 5.0 * base.mean_db_disk_demand(&mix)).abs() < 1e-12
        );
        assert_eq!(
            scaled.mean_db_cpu_demand(&mix),
            base.mean_db_cpu_demand(&mix)
        );
        assert_eq!(scaled.mean_app_demand(&mix), base.mean_app_demand(&mix));
    }

    #[test]
    #[should_panic(expected = "at least one DB call")]
    fn db_work_without_calls_panics() {
        let mut p = DemandProfile::testbed();
        p.set_demand(
            RequestType::Home,
            Demand {
                app_cpu_s: 0.1,
                db_cpu_s: 0.1,
                db_disk_s: 0.0,
                db_calls: 0,
            },
        );
    }
}
