//! The discrete-event simulation engine.
//!
//! Requests flow through the two tiers as in the paper's testbed: an
//! emulated browser issues a request; the app tier assigns a worker thread
//! (held for the whole request, including database waits — the request
//! *dead time* of Section I); the request alternates app-tier CPU bursts
//! with database calls, each of which acquires a connection, burns DB CPU,
//! and possibly performs disk I/O. Completion returns the response to the
//! browser, which thinks and issues again.
//!
//! Events are processed in `(time, sequence)` order from a binary heap;
//! all randomness comes from one seeded RNG, so runs are reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webcap_tpcw::{EmulatedBrowser, RequestClass, RequestType, TrafficProgram};

use crate::config::{SimConfig, TierId};
use crate::histogram::RtHistogram;
use crate::resources::{FcfsDisk, JobId, PsCpu, TokenPool};
use crate::telemetry::{RunSummary, SystemSample, TierSample};
use crate::time::{SimDuration, SimTime};

/// Output of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// One sample per sampling period, in time order.
    pub samples: Vec<SystemSample>,
    /// Aggregate summary.
    pub summary: RunSummary,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// An EB's think time ended; issue the next request (or retire).
    Issue { eb: usize },
    /// App-tier CPU finished its shortest job (if `generation` is current).
    AppCpuDone { generation: u64 },
    /// DB-tier CPU finished its shortest job (if `generation` is current).
    DbCpuDone { generation: u64 },
    /// The DB disk finished its in-service operation.
    DiskDone,
    /// A DB call crossed the network and arrives at the connection pool.
    DbArrive { req: JobId },
    /// A finished DB call crossed back; resume the app-tier burst.
    AppResume { req: JobId },
    /// Telemetry sampling tick (also adjusts the EB population).
    Tick,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct Request {
    eb: usize,
    class: RequestClass,
    issued_at: SimTime,
    /// Remaining DB calls after the current burst.
    db_calls_left: u32,
    /// App CPU work per burst (total split across `db_calls + 1` bursts).
    app_burst_work: f64,
    /// DB CPU work per call.
    db_cpu_per_call: f64,
    /// DB disk time per call.
    db_disk_per_call: f64,
}

#[derive(Debug)]
struct EbState {
    browser: EmulatedBrowser,
    active: bool,
}

/// Per-interval event counters, reset at every tick.
#[derive(Debug, Default, Clone)]
struct IntervalCounters {
    response_times: RtHistogram,
    issued: u64,
    issued_browse: u64,
    completed: u64,
    completed_browse: u64,
    response_time_sum_s: f64,
    response_time_max_s: f64,
    app_arrivals: u64,
    app_completions: u64,
    db_arrivals: u64,
    db_completions: u64,
    app_browse_work: f64,
    app_order_work: f64,
    db_browse_work: f64,
    db_order_work: f64,
}

/// Cumulative resource statistics at the previous tick, used to derive
/// per-interval deltas.
#[derive(Debug, Default, Clone, Copy)]
struct TierCumulative {
    busy_s: f64,
    work_s: f64,
    job_time: f64,
    pool_in_use_int: f64,
    pool_queue_int: f64,
    disk_busy_s: f64,
    disk_queue_int: f64,
    disk_ops: u64,
}

/// The two-tier website simulator.
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    program: TrafficProgram,
    clock: SimTime,
    end: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Scheduled>>,
    rng: StdRng,
    app_cpu: PsCpu,
    db_cpu: PsCpu,
    app_pool: TokenPool,
    db_pool: TokenPool,
    disk: FcfsDisk,
    ebs: Vec<EbState>,
    retire_quota: u32,
    requests: HashMap<JobId, Request>,
    next_request_id: JobId,
    counters: IntervalCounters,
    prev: [TierCumulative; 2],
    samples: Vec<SystemSample>,
    in_flight: u32,
    target_ebs: u32,
    last_tick: SimTime,
    background: [f64; 2],
    /// Dedicated RNG for the background-interference process so the
    /// environment trajectory is identical across runs that share a seed
    /// but differ in workload or configuration (paired experiments).
    bg_rng: StdRng,
}

impl Simulation {
    /// Build a simulation of `program` on the testbed described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation (see [`SimConfig::validate`]).
    pub fn new(cfg: SimConfig, program: TrafficProgram) -> Simulation {
        cfg.validate();
        let app_cpu = PsCpu::new(
            cfg.app.cores,
            cfg.app.effective_speed(),
            cfg.app.contention_alpha,
        );
        let db_cpu = PsCpu::new(
            cfg.db.cores,
            cfg.db.effective_speed(),
            cfg.db.contention_alpha,
        );
        let app_pool = TokenPool::new(cfg.app.pool_size);
        let db_pool = TokenPool::new(cfg.db.pool_size);
        let end = SimTime::from_secs_f64(program.duration_s());
        // One sample per period: reserve the whole run's telemetry up
        // front instead of growing through repeated reallocation.
        let expected_samples = (program.duration_s() / cfg.sample_period_s).ceil() as usize + 1;
        let rng = StdRng::seed_from_u64(cfg.seed);
        let sim_cfg_bg_app = cfg.app.background.mean;
        let sim_cfg_bg_db = cfg.db.background.mean;
        let seed_for_bg = cfg.seed ^ 0xB6_B6_B6;
        let mut sim = Simulation {
            cfg,
            program,
            clock: SimTime::ZERO,
            end,
            seq: 0,
            events: BinaryHeap::new(),
            rng,
            app_cpu,
            db_cpu,
            app_pool,
            db_pool,
            disk: FcfsDisk::new(),
            ebs: Vec::new(),
            retire_quota: 0,
            requests: HashMap::new(),
            next_request_id: 0,
            counters: IntervalCounters::default(),
            prev: [TierCumulative::default(); 2],
            samples: Vec::with_capacity(expected_samples),
            in_flight: 0,
            target_ebs: 0,
            last_tick: SimTime::ZERO,
            background: [sim_cfg_bg_app, sim_cfg_bg_db],
            bg_rng: StdRng::seed_from_u64(seed_for_bg),
        };
        let bg0 = sim.background;
        sim.app_cpu.set_background(SimTime::ZERO, bg0[0]);
        sim.db_cpu.set_background(SimTime::ZERO, bg0[1]);
        let initial = sim.program.at(0.0).ebs;
        sim.adjust_population(initial);
        let period = SimDuration::from_secs_f64(sim.cfg.sample_period_s);
        sim.schedule(SimTime::ZERO + period, Event::Tick);
        sim
    }

    /// Run to the end of the traffic program and return the telemetry.
    pub fn run(mut self) -> SimOutput {
        while let Some(Reverse(next)) = self.events.pop() {
            if next.time > self.end {
                break;
            }
            self.clock = next.time;
            self.dispatch(next.event);
        }
        let summary = RunSummary::from_samples(&self.samples);
        SimOutput {
            samples: self.samples,
            summary,
        }
    }

    fn schedule(&mut self, time: SimTime, event: Event) {
        self.seq += 1;
        self.events.push(Reverse(Scheduled {
            time,
            seq: self.seq,
            event,
        }));
    }

    fn schedule_after(&mut self, delay_s: f64, event: Event) {
        let t = self.clock + SimDuration::from_secs_f64(delay_s);
        self.schedule(t, event);
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Issue { eb } => self.on_issue(eb),
            Event::AppCpuDone { generation } => self.on_app_cpu_done(generation),
            Event::DbCpuDone { generation } => self.on_db_cpu_done(generation),
            Event::DiskDone => self.on_disk_done(),
            Event::DbArrive { req } => self.on_db_arrive(req),
            Event::AppResume { req } => self.start_app_burst(req),
            Event::Tick => self.on_tick(),
        }
    }

    // ------------------------------------------------------------------
    // Client side
    // ------------------------------------------------------------------

    fn on_issue(&mut self, eb: usize) {
        if !self.ebs[eb].active {
            return;
        }
        if self.retire_quota > 0 {
            self.retire_quota -= 1;
            self.ebs[eb].active = false;
            return;
        }
        let snapshot = self.program.at(self.clock.as_secs_f64());
        let rtype = self.ebs[eb]
            .browser
            .next_request(&snapshot.mix, &mut self.rng);
        let class = rtype.class();
        self.counters.issued += 1;
        if class == RequestClass::Browse {
            self.counters.issued_browse += 1;
        }
        self.in_flight += 1;

        let req_id = self.next_request_id;
        self.next_request_id += 1;
        let request = self.build_request(eb, rtype);
        self.requests.insert(req_id, request);

        self.counters.app_arrivals += 1;
        if self.app_pool.try_acquire(self.clock) {
            self.start_app_burst(req_id);
        } else {
            self.app_pool.enqueue(self.clock, req_id);
        }
    }

    fn build_request(&mut self, eb: usize, rtype: RequestType) -> Request {
        let base = self.cfg.profile.demand(rtype);
        let app_noise = self.cfg.profile.noise(&mut self.rng);
        let db_noise = self.cfg.profile.noise(&mut self.rng);
        let disk_noise = self.cfg.profile.noise(&mut self.rng);
        let bursts = f64::from(base.db_calls + 1);
        let calls = f64::from(base.db_calls.max(1));
        Request {
            eb,
            class: rtype.class(),
            issued_at: self.clock,
            db_calls_left: base.db_calls,
            app_burst_work: base.app_cpu_s * app_noise / bursts,
            db_cpu_per_call: base.db_cpu_s * db_noise / calls,
            db_disk_per_call: base.db_disk_s * disk_noise / calls,
        }
    }

    fn finish_request(&mut self, req_id: JobId) {
        // Hand the worker thread to the next queued request, if any.
        if let Some(waiter) = self.app_pool.release(self.clock) {
            self.start_app_burst(waiter);
        }
        let req = self
            .requests
            .remove(&req_id)
            .expect("finishing unknown request");
        self.counters.app_completions += 1;
        self.counters.completed += 1;
        if req.class == RequestClass::Browse {
            self.counters.completed_browse += 1;
        }
        let rt = self.clock.seconds_since(req.issued_at);
        self.counters.response_time_sum_s += rt;
        self.counters.response_time_max_s = self.counters.response_time_max_s.max(rt);
        self.counters.response_times.record(rt);
        self.in_flight -= 1;

        // The browser thinks, then issues again.
        let think = self.ebs[req.eb].browser.think_time(&mut self.rng);
        self.schedule_after(think, Event::Issue { eb: req.eb });
    }

    // ------------------------------------------------------------------
    // Application tier
    // ------------------------------------------------------------------

    fn start_app_burst(&mut self, req_id: JobId) {
        let req = &self.requests[&req_id];
        let work = req.app_burst_work;
        match req.class {
            RequestClass::Browse => self.counters.app_browse_work += work,
            RequestClass::Order => self.counters.app_order_work += work,
        }
        self.app_cpu.push(self.clock, req_id, work);
        self.reschedule_app_cpu();
    }

    fn reschedule_app_cpu(&mut self) {
        if let Some(t) = self.app_cpu.next_completion(self.clock) {
            let generation = self.app_cpu.generation();
            self.schedule(t, Event::AppCpuDone { generation });
        }
    }

    fn on_app_cpu_done(&mut self, generation: u64) {
        if generation != self.app_cpu.generation() {
            return; // stale
        }
        let (req_id, _) = self.app_cpu.pop_completed(self.clock);
        self.reschedule_app_cpu();
        let req = self
            .requests
            .get_mut(&req_id)
            .expect("unknown request on app CPU");
        if req.db_calls_left > 0 {
            req.db_calls_left -= 1;
            let delay = self.cfg.network_delay_s;
            self.schedule_after(delay, Event::DbArrive { req: req_id });
        } else {
            self.finish_request(req_id);
        }
    }

    // ------------------------------------------------------------------
    // Database tier
    // ------------------------------------------------------------------

    fn on_db_arrive(&mut self, req_id: JobId) {
        self.counters.db_arrivals += 1;
        if self.db_pool.try_acquire(self.clock) {
            self.start_db_cpu(req_id);
        } else {
            self.db_pool.enqueue(self.clock, req_id);
        }
    }

    fn start_db_cpu(&mut self, req_id: JobId) {
        let req = &self.requests[&req_id];
        let work = req.db_cpu_per_call;
        match req.class {
            RequestClass::Browse => self.counters.db_browse_work += work,
            RequestClass::Order => self.counters.db_order_work += work,
        }
        self.db_cpu.push(self.clock, req_id, work);
        self.reschedule_db_cpu();
    }

    fn reschedule_db_cpu(&mut self) {
        if let Some(t) = self.db_cpu.next_completion(self.clock) {
            let generation = self.db_cpu.generation();
            self.schedule(t, Event::DbCpuDone { generation });
        }
    }

    fn on_db_cpu_done(&mut self, generation: u64) {
        if generation != self.db_cpu.generation() {
            return; // stale
        }
        let (req_id, _) = self.db_cpu.pop_completed(self.clock);
        self.reschedule_db_cpu();
        let disk_s = self.requests[&req_id].db_disk_per_call;
        if disk_s > 0.0 {
            if let Some(done) = self.disk.submit(self.clock, req_id, disk_s) {
                self.schedule(done, Event::DiskDone);
            }
        } else {
            self.finish_db_call(req_id);
        }
    }

    fn on_disk_done(&mut self) {
        let (finished, next) = self.disk.complete(self.clock);
        if let Some((_, done)) = next {
            self.schedule(done, Event::DiskDone);
        }
        self.finish_db_call(finished);
    }

    fn finish_db_call(&mut self, req_id: JobId) {
        self.counters.db_completions += 1;
        if let Some(waiter) = self.db_pool.release(self.clock) {
            self.start_db_cpu(waiter);
        }
        let delay = self.cfg.network_delay_s;
        self.schedule_after(delay, Event::AppResume { req: req_id });
    }

    // ------------------------------------------------------------------
    // Telemetry and population control
    // ------------------------------------------------------------------

    fn adjust_population(&mut self, target: u32) {
        self.target_ebs = target;
        let active = self.ebs.iter().filter(|e| e.active).count() as u32;
        let effective = active.saturating_sub(self.retire_quota);
        if target > effective {
            let mut need = target - effective;
            // First cancel pending retirements.
            let cancel = need.min(self.retire_quota);
            self.retire_quota -= cancel;
            need -= cancel;
            for _ in 0..need {
                let id = self.ebs.len();
                self.ebs.push(EbState {
                    browser: EmulatedBrowser::with_think_time(id as u64, self.cfg.think),
                    active: true,
                });
                // Stagger session starts across a think time to avoid a
                // synchronized arrival pulse.
                let offset = self.rng.random::<f64>() * self.cfg.think.mean_s();
                let t = self.clock + SimDuration::from_secs_f64(offset);
                self.schedule(t, Event::Issue { eb: id });
            }
        } else {
            self.retire_quota += effective - target;
        }
    }

    fn tier_cumulative(&mut self, tier: TierId) -> TierCumulative {
        let now = self.clock;
        match tier {
            TierId::App => {
                self.app_cpu.advance(now);
                let (busy_s, work_s, job_time) = self.app_cpu.stats();
                let (pool_in_use_int, pool_queue_int, _) = self.app_pool.stats(now);
                TierCumulative {
                    busy_s,
                    work_s,
                    job_time,
                    pool_in_use_int,
                    pool_queue_int,
                    disk_busy_s: 0.0,
                    disk_queue_int: 0.0,
                    disk_ops: 0,
                }
            }
            TierId::Db => {
                self.db_cpu.advance(now);
                let (busy_s, work_s, job_time) = self.db_cpu.stats();
                let (pool_in_use_int, pool_queue_int, _) = self.db_pool.stats(now);
                let (disk_busy_s, disk_queue_int, disk_ops) = self.disk.stats(now);
                TierCumulative {
                    busy_s,
                    work_s,
                    job_time,
                    pool_in_use_int,
                    pool_queue_int,
                    disk_busy_s,
                    disk_queue_int,
                    disk_ops,
                }
            }
        }
    }

    fn tier_sample(&mut self, tier: TierId, interval: f64) -> TierSample {
        let cum = self.tier_cumulative(tier);
        let prev = self.prev[tier.index()];
        self.prev[tier.index()] = cum;
        let c = &self.counters;
        let (arrivals, completions, browse_w, order_w) = match tier {
            TierId::App => (
                c.app_arrivals,
                c.app_completions,
                c.app_browse_work,
                c.app_order_work,
            ),
            TierId::Db => (
                c.db_arrivals,
                c.db_completions,
                c.db_browse_work,
                c.db_order_work,
            ),
        };
        let (pool_in_use_end, pool_queue_end) = match tier {
            TierId::App => (self.app_pool.in_use(), self.app_pool.queue_len()),
            TierId::Db => (self.db_pool.in_use(), self.db_pool.queue_len()),
        };
        TierSample {
            utilization: ((cum.busy_s - prev.busy_s) / interval).clamp(0.0, 1.0),
            delivered_work_s: cum.work_s - prev.work_s,
            avg_runnable: (cum.job_time - prev.job_time) / interval,
            pool_in_use_avg: (cum.pool_in_use_int - prev.pool_in_use_int) / interval,
            pool_queue_avg: (cum.pool_queue_int - prev.pool_queue_int) / interval,
            pool_queue_end,
            pool_in_use_end,
            disk_utilization: ((cum.disk_busy_s - prev.disk_busy_s) / interval).clamp(0.0, 1.0),
            disk_queue_avg: (cum.disk_queue_int - prev.disk_queue_int) / interval,
            disk_ops: cum.disk_ops - prev.disk_ops,
            arrivals,
            completions,
            browse_work_submitted_s: browse_w,
            order_work_submitted_s: order_w,
        }
    }

    fn on_tick(&mut self) {
        let interval = self.clock.seconds_since(self.last_tick);
        if interval > 0.0 {
            let app = self.tier_sample(TierId::App, interval);
            let db = self.tier_sample(TierId::Db, interval);
            let c = std::mem::take(&mut self.counters);
            let snapshot = self.program.at(self.clock.as_secs_f64());
            self.samples.push(SystemSample {
                t_s: self.clock.as_secs_f64(),
                interval_s: interval,
                ebs_target: self.target_ebs,
                ebs_active: self.ebs.iter().filter(|e| e.active).count() as u32,
                mix_id: snapshot.mix.id(),
                issued: c.issued,
                issued_browse: c.issued_browse,
                completed: c.completed,
                completed_browse: c.completed_browse,
                response_time_sum_s: c.response_time_sum_s,
                response_time_max_s: c.response_time_max_s,
                in_flight: self.in_flight,
                response_times: c.response_times,
                app,
                db,
            });
        }
        self.last_tick = self.clock;

        let target = self.program.at(self.clock.as_secs_f64()).ebs;
        self.adjust_population(target);
        self.step_background();

        let next = self.clock + SimDuration::from_secs_f64(self.cfg.sample_period_s);
        if next <= self.end {
            self.schedule(next, Event::Tick);
        }
    }

    /// One Ornstein–Uhlenbeck step of each tier's background interference,
    /// then reschedule the CPUs at the new effective capacity.
    fn step_background(&mut self) {
        for tier in TierId::ALL {
            let bg_cfg = self.cfg.tier(tier).background;
            if bg_cfg.step_sd == 0.0 && bg_cfg.mean == self.background[tier.index()] {
                continue;
            }
            // Box–Muller Gaussian innovation from the dedicated RNG.
            let u1: f64 = self.bg_rng.random::<f64>().max(1e-12);
            let u2: f64 = self.bg_rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let cur = self.background[tier.index()];
            let next = (cur + bg_cfg.revert * (bg_cfg.mean - cur) + bg_cfg.step_sd * z)
                .clamp(0.0, bg_cfg.max);
            self.background[tier.index()] = next;
            match tier {
                TierId::App => {
                    self.app_cpu.set_background(self.clock, next);
                    self.reschedule_app_cpu();
                }
                TierId::Db => {
                    self.db_cpu.set_background(self.clock, next);
                    self.reschedule_db_cpu();
                }
            }
        }
    }
}

/// Convenience: build and run in one call.
pub fn run(cfg: SimConfig, program: TrafficProgram) -> SimOutput {
    Simulation::new(cfg, program).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcap_tpcw::Mix;

    fn quick_cfg(seed: u64) -> SimConfig {
        SimConfig::testbed(seed)
    }

    #[test]
    fn light_load_completes_everything_quickly() {
        let program = TrafficProgram::steady(Mix::shopping(), 20, 60.0);
        let out = run(quick_cfg(1), program);
        assert_eq!(out.samples.len(), 60);
        assert!(
            out.summary.completed > 50,
            "completed {}",
            out.summary.completed
        );
        // At 20 EBs the system is far below capacity: sub-100 ms responses.
        assert!(
            out.summary.mean_response_time_s < 0.2,
            "mean rt {}",
            out.summary.mean_response_time_s
        );
        // Issued ≈ completed (closed loop, no pile-up).
        assert!(out.summary.issued - out.summary.completed < 25);
    }

    #[test]
    fn deterministic_across_runs() {
        let program = TrafficProgram::ramp(Mix::ordering(), 10, 80, 60.0);
        let a = run(quick_cfg(42), program.clone());
        let b = run(quick_cfg(42), program);
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let program = TrafficProgram::steady(Mix::shopping(), 50, 30.0);
        let a = run(quick_cfg(1), program.clone());
        let b = run(quick_cfg(2), program);
        assert_ne!(a.summary.completed, b.summary.completed);
    }

    #[test]
    fn throughput_grows_with_load_when_underloaded() {
        let low = run(
            quick_cfg(3),
            TrafficProgram::steady(Mix::shopping(), 20, 120.0),
        );
        let high = run(
            quick_cfg(3),
            TrafficProgram::steady(Mix::shopping(), 80, 120.0),
        );
        assert!(
            high.summary.mean_throughput > 2.5 * low.summary.mean_throughput,
            "low {} high {}",
            low.summary.mean_throughput,
            high.summary.mean_throughput
        );
    }

    #[test]
    fn ordering_overload_saturates_app_tier() {
        // Far beyond the ~46 req/s app capacity of the ordering mix.
        let program = TrafficProgram::steady(Mix::ordering(), 700, 180.0);
        let out = run(quick_cfg(4), program);
        let tail = &out.samples[120..];
        let app_util: f64 = tail.iter().map(|s| s.app.utilization).sum::<f64>() / tail.len() as f64;
        let db_util: f64 = tail.iter().map(|s| s.db.utilization).sum::<f64>() / tail.len() as f64;
        assert!(app_util > 0.98, "app util {app_util}");
        assert!(db_util < 0.85, "db util {db_util} should not saturate");
        // Response times inflate well past think-free levels.
        let rt: f64 = tail
            .iter()
            .filter_map(|s| s.mean_response_time_s())
            .sum::<f64>()
            / tail.len() as f64;
        assert!(rt > 1.0, "rt {rt}");
    }

    #[test]
    fn browsing_overload_saturates_db_tier() {
        // Beyond the ~74 req/s DB capacity of the browsing mix.
        let program = TrafficProgram::steady(Mix::browsing(), 1000, 180.0);
        let out = run(quick_cfg(5), program);
        let tail = &out.samples[120..];
        let db_util: f64 = tail.iter().map(|s| s.db.utilization).sum::<f64>() / tail.len() as f64;
        let app_util: f64 = tail.iter().map(|s| s.app.utilization).sum::<f64>() / tail.len() as f64;
        assert!(db_util > 0.97, "db util {db_util}");
        assert!(app_util < 0.8, "app util {app_util} should not saturate");
    }

    #[test]
    fn population_ramps_and_retires() {
        let program = TrafficProgram::ramp(Mix::shopping(), 10, 100, 60.0).then_steady(
            Mix::shopping(),
            10,
            120.0,
        );
        let out = run(quick_cfg(6), program);
        let mid = &out.samples[55];
        assert!(
            mid.ebs_active > 80,
            "ramp should have grown: {}",
            mid.ebs_active
        );
        let last = out.samples.last().unwrap();
        // Retirement is lazy (EBs finish their think first) but a minute in
        // the population must have come back down.
        assert!(
            last.ebs_active <= 12,
            "retire should shrink: {}",
            last.ebs_active
        );
    }

    #[test]
    fn sample_times_are_regular() {
        let out = run(
            quick_cfg(7),
            TrafficProgram::steady(Mix::shopping(), 10, 10.0),
        );
        for (i, s) in out.samples.iter().enumerate() {
            assert!((s.t_s - (i + 1) as f64).abs() < 1e-6);
            assert!((s.interval_s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn collector_overhead_costs_throughput_when_saturated() {
        let mut cheap = quick_cfg(8);
        let mut costly = quick_cfg(8);
        costly.app.collector_overhead = 0.10;
        cheap.app.collector_overhead = 0.0;
        // The paired background trajectory (dedicated RNG) makes the
        // comparison tight even over a few minutes.
        let program = TrafficProgram::steady(Mix::ordering(), 500, 300.0);
        let a = run(cheap, program.clone());
        let b = run(costly, program);
        let ratio = b.summary.mean_throughput / a.summary.mean_throughput;
        assert!(
            ratio < 0.97,
            "10% overhead should cost ≥3% throughput, ratio {ratio}"
        );
    }

    #[test]
    fn conservation_issued_equals_completed_plus_in_flight() {
        let program = TrafficProgram::steady(Mix::shopping(), 60, 90.0);
        let out = run(quick_cfg(9), program);
        let issued: u64 = out.samples.iter().map(|s| s.issued).sum();
        let completed: u64 = out.samples.iter().map(|s| s.completed).sum();
        let final_in_flight = out.samples.last().unwrap().in_flight as u64;
        assert_eq!(issued, completed + final_in_flight);
    }
}
