//! Logarithmic response-time histograms.
//!
//! Mean response time hides exactly the tail behaviour QoS management
//! cares about (the paper's admission-control motivation is per-request
//! response-time *guarantees*). Each telemetry interval carries a
//! fixed-size log-bucketed histogram, cheap to record, merge, and query
//! for quantiles.

use serde::{Deserialize, Serialize};

/// Number of buckets.
const BUCKETS: usize = 48;
/// Lower edge of bucket 0, seconds.
const MIN_S: f64 = 0.001;
/// Upper edge of the last finite bucket, seconds; larger values clamp.
const MAX_S: f64 = 120.0;

/// A fixed-size logarithmic histogram of response times.
///
/// Buckets are geometrically spaced between 1 ms and 120 s; values outside
/// that range clamp to the outer buckets. Quantiles are resolved to the
/// geometric midpoint of the containing bucket (≤ ~13% relative error,
/// plenty for knee detection).
/// The bucket array lives inline (`[u32; BUCKETS]`, no heap allocation),
/// so creating or resetting a histogram is free — the simulator makes one
/// per telemetry interval. Serde serializes a fixed array exactly like a
/// `Vec` of the same length, so the wire/JSON shape is unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtHistogram {
    counts: [u32; BUCKETS],
    total: u64,
}

impl RtHistogram {
    /// Number of buckets — the length [`bucket_counts`] always has and
    /// [`from_raw_parts`] always requires.
    ///
    /// [`bucket_counts`]: RtHistogram::bucket_counts
    /// [`from_raw_parts`]: RtHistogram::from_raw_parts
    pub const BUCKET_COUNT: usize = BUCKETS;

    /// An empty histogram.
    pub fn new() -> RtHistogram {
        RtHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    /// The raw per-bucket counts, index-aligned with the fixed
    /// log-spaced buckets — what a compact wire codec serializes
    /// instead of the JSON field map.
    pub fn bucket_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Rebuild a histogram from raw parts (the inverse of
    /// [`bucket_counts`] + [`len`]). `None` unless `counts` has exactly
    /// [`BUCKET_COUNT`] entries. `total` is carried verbatim so a
    /// decoder round-trips any histogram value bit-for-bit, even one
    /// whose total a hostile peer set inconsistently — equality and
    /// quantiles then behave exactly as they would have on the sender.
    ///
    /// [`bucket_counts`]: RtHistogram::bucket_counts
    /// [`len`]: RtHistogram::len
    /// [`BUCKET_COUNT`]: RtHistogram::BUCKET_COUNT
    pub fn from_raw_parts(counts: &[u32], total: u64) -> Option<RtHistogram> {
        let counts: [u32; BUCKETS] = counts.try_into().ok()?;
        Some(RtHistogram { counts, total })
    }

    fn bucket_of(seconds: f64) -> usize {
        if !(seconds > MIN_S) {
            return 0;
        }
        let ratio = (MAX_S / MIN_S).ln();
        let frac = ((seconds / MIN_S).ln() / ratio).clamp(0.0, 1.0);
        ((frac * BUCKETS as f64) as usize).min(BUCKETS - 1)
    }

    /// Lower edge of bucket `i`, seconds.
    fn bucket_low(i: usize) -> f64 {
        MIN_S * (MAX_S / MIN_S).powf(i as f64 / BUCKETS as f64)
    }

    /// Record one response time.
    pub fn record(&mut self, seconds: f64) {
        self.counts[Self::bucket_of(seconds)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &RtHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (0 < q ≤ 1) as the geometric midpoint of the
    /// containing bucket; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += u64::from(c);
            if seen >= rank {
                let low = Self::bucket_low(i);
                let high = Self::bucket_low(i + 1);
                return Some((low * high).sqrt());
            }
        }
        Some(MAX_S)
    }

    /// Fraction of recorded samples strictly above the bucket containing
    /// `seconds` — the SLO "error rate" for a response-time deadline.
    ///
    /// Resolution is one bucket (≤ ~13% relative on the threshold): a
    /// sample counts as "above" only when its whole bucket lies above the
    /// threshold's bucket, so the estimate is conservative by at most one
    /// bucket. Returns 0 when empty.
    pub fn fraction_above(&self, seconds: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cut = Self::bucket_of(seconds);
        let above: u64 = self
            .counts
            .iter()
            .skip(cut + 1)
            .map(|&c| u64::from(c))
            .sum();
        above as f64 / self.total as f64
    }

    /// Convenience: the median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Reset all counts.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

impl Default for RtHistogram {
    fn default() -> RtHistogram {
        RtHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_a_point_mass() {
        let mut h = RtHistogram::new();
        for _ in 0..100 {
            h.record(0.25);
        }
        let p50 = h.p50().unwrap();
        // Bucket resolution: within ~15%.
        assert!((p50 - 0.25).abs() / 0.25 < 0.15, "p50 {p50}");
        assert_eq!(h.len(), 100);
    }

    #[test]
    fn tail_is_visible_where_the_mean_hides_it() {
        let mut h = RtHistogram::new();
        for _ in 0..95 {
            h.record(0.1);
        }
        for _ in 0..5 {
            h.record(10.0);
        }
        // Mean would be ~0.6 s; p95 must expose the multi-second tail.
        assert!(h.p99().unwrap() > 5.0);
        assert!(h.p50().unwrap() < 0.2);
    }

    #[test]
    fn clamping_and_empty_behaviour() {
        let mut h = RtHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p95(), None);
        h.record(1e-9);
        h.record(1e9);
        assert_eq!(h.len(), 2);
        assert!(h.quantile(1.0).unwrap() <= MAX_S * 1.01);
    }

    #[test]
    fn json_shape_matches_a_plain_sequence() {
        // The inline bucket array must keep serializing as a JSON array,
        // byte-compatible with the previous `Vec<u32>` field.
        let mut h = RtHistogram::new();
        h.record(0.05);
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.starts_with("{\"counts\":[0,"), "json {json}");
        let back: RtHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = RtHistogram::new();
        let mut b = RtHistogram::new();
        for _ in 0..10 {
            a.record(0.05);
            b.record(2.0);
        }
        a.merge(&b);
        assert_eq!(a.len(), 20);
        assert!(a.p50().unwrap() < 0.5);
        assert!(a.quantile(0.99).unwrap() > 1.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn zero_quantile_panics() {
        let _ = RtHistogram::new().quantile(0.0);
    }

    #[test]
    fn raw_parts_round_trip() {
        let mut h = RtHistogram::new();
        for v in [0.002, 0.05, 1.5, 80.0] {
            h.record(v);
        }
        let back = RtHistogram::from_raw_parts(h.bucket_counts(), h.len()).unwrap();
        assert_eq!(back, h);
        assert_eq!(h.bucket_counts().len(), RtHistogram::BUCKET_COUNT);
        assert!(RtHistogram::from_raw_parts(&[1, 2, 3], 6).is_none());
    }

    #[test]
    fn fraction_above_splits_a_bimodal_distribution() {
        let mut h = RtHistogram::new();
        for _ in 0..90 {
            h.record(0.05);
        }
        for _ in 0..10 {
            h.record(8.0);
        }
        let f = h.fraction_above(1.0);
        assert!((f - 0.1).abs() < 1e-12, "fraction {f}");
        assert_eq!(h.fraction_above(100.0), 0.0, "nothing above the range");
        assert_eq!(RtHistogram::new().fraction_above(1.0), 0.0, "empty");
    }

    proptest! {
        /// Quantiles are monotone in q and bounded by the recorded range
        /// up to bucket resolution.
        #[test]
        fn quantiles_are_monotone(values in prop::collection::vec(0.001f64..100.0, 1..200)) {
            let mut h = RtHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut last = 0.0;
            for &q in &qs {
                let v = h.quantile(q).unwrap();
                prop_assert!(v >= last, "quantile not monotone at {}", q);
                last = v;
            }
            let max = values.iter().copied().fold(0.0f64, f64::max);
            prop_assert!(last <= max * 1.3 + 1e-3, "q1.0 {} vs max {}", last, max);
        }

        /// `fraction_above` is monotone non-increasing in the threshold
        /// and bounded by [0, 1].
        #[test]
        fn fraction_above_is_monotone(
            values in prop::collection::vec(0.001f64..100.0, 1..200),
            thresholds in prop::collection::vec(0.0005f64..150.0, 2..10),
        ) {
            let mut h = RtHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = thresholds.clone();
            sorted.sort_by(f64::total_cmp);
            let mut last = 1.0f64;
            for &t in &sorted {
                let f = h.fraction_above(t);
                prop_assert!((0.0..=1.0).contains(&f), "fraction {} at {}", f, t);
                prop_assert!(f <= last + 1e-12, "not monotone at {}", t);
                last = f;
            }
        }

        /// Total count always equals the number of records after any merge
        /// sequence.
        #[test]
        fn counts_are_conserved(
            a in prop::collection::vec(0.001f64..50.0, 0..100),
            b in prop::collection::vec(0.001f64..50.0, 0..100),
        ) {
            let mut ha = RtHistogram::new();
            let mut hb = RtHistogram::new();
            for &v in &a { ha.record(v); }
            for &v in &b { hb.record(v); }
            ha.merge(&hb);
            prop_assert_eq!(ha.len(), (a.len() + b.len()) as u64);
        }
    }
}
