//! Simulation time: a newtype over integer microseconds.
//!
//! Integer time keeps the event queue ordering exact and the simulation
//! bit-for-bit reproducible across runs and platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Construct from seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(
            s.is_finite() && s >= 0.0,
            "time must be a nonnegative finite number"
        );
        let us = (s * 1e6).round();
        assert!(us <= u64::MAX as f64, "time overflow");
        SimTime(us as u64)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference in seconds (`self − earlier`).
    pub fn seconds_since(&self, earlier: SimTime) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from seconds, rounding to the nearest microsecond and
    /// clamping tiny positive values up to 1 µs so durations representing
    /// real work never collapse to zero.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or NaN.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be a nonnegative finite number"
        );
        let us = (s * 1e6).round() as u64;
        if us == 0 && s > 0.0 {
            SimDuration(1)
        } else {
            SimDuration(us)
        }
    }

    /// Microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(2.0) + SimDuration::from_secs_f64(0.5);
        assert_eq!(t, SimTime::from_secs_f64(2.5));
        let d = SimTime::from_secs_f64(3.0) - SimTime::from_secs_f64(1.0);
        assert_eq!(d, SimDuration::from_secs_f64(2.0));
    }

    #[test]
    fn subtraction_saturates() {
        let d = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(5.0);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimTime::from_secs_f64(1.0).seconds_since(SimTime::from_secs_f64(4.0)),
            0.0
        );
    }

    #[test]
    fn tiny_positive_duration_does_not_vanish() {
        let d = SimDuration::from_secs_f64(1e-9);
        assert_eq!(d.as_micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime::from_micros(5) < SimTime::from_micros(6));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250s");
    }
}
