//! Discrete-event simulator of a two-tier (application + database)
//! website — the testbed substrate for the webcap reproduction.
//!
//! The paper's experiments ran on a physical Tomcat/MySQL testbed driven
//! by TPC-W clients. This crate substitutes a faithful queueing-network
//! simulation (see `DESIGN.md` for the substitution argument):
//!
//! * [`Simulation`] — the engine: emulated browsers issue requests that
//!   hold an app-tier worker thread across CPU bursts and database calls;
//!   each DB call takes a connection, burns DB CPU, and may touch disk.
//! * [`resources`] — processor-sharing CPUs with contention degradation
//!   (capacity declines past saturation), FIFO token pools, a FCFS disk.
//! * [`telemetry`] — per-second [`SystemSample`]s feeding the HPC and OS
//!   metric synthesizers and the capacity meter.
//! * [`SimConfig`] — the paper-like default testbed
//!   ([`SimConfig::testbed`]): single-core app server, dual-core DB
//!   server, 128 worker threads, 10 connections.
//!
//! # Example
//!
//! ```
//! use webcap_sim::{run, SimConfig};
//! use webcap_tpcw::{Mix, TrafficProgram};
//!
//! let program = TrafficProgram::steady(Mix::shopping(), 30, 30.0);
//! let out = run(SimConfig::testbed(7), program);
//! assert_eq!(out.samples.len(), 30);
//! assert!(out.summary.completed > 0);
//! ```

pub mod config;
pub mod demand;
pub mod engine;
pub mod histogram;
pub mod resources;
pub mod telemetry;
pub mod time;

pub use config::{SimConfig, TierConfig, TierId};
pub use demand::{Demand, DemandProfile};
pub use engine::{run, SimOutput, Simulation};
pub use histogram::RtHistogram;
pub use telemetry::{RunSummary, SystemSample, TierSample};
pub use time::{SimDuration, SimTime};
