//! Simulator configuration: tier hardware and global parameters.

use serde::{Deserialize, Serialize};
use webcap_tpcw::ThinkTime;

use crate::demand::DemandProfile;

/// Which tier a quantity refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TierId {
    /// Front-end application server (Tomcat in the paper's testbed).
    App,
    /// Back-end database server (MySQL in the paper's testbed).
    Db,
}

impl TierId {
    /// Both tiers, front to back.
    pub const ALL: [TierId; 2] = [TierId::App, TierId::Db];

    /// Dense index (App = 0, Db = 1).
    pub fn index(&self) -> usize {
        match self {
            TierId::App => 0,
            TierId::Db => 1,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TierId::App => "APP",
            TierId::Db => "DB",
        }
    }

    /// Select this tier's slot from a per-tier pair (indexed by
    /// [`TierId::index`] order). Total by construction — the panic-free
    /// replacement for `pair[tier.index()]`.
    pub fn select<'a, T>(&self, pair: &'a [T; 2]) -> &'a T {
        let [app, db] = pair;
        match self {
            TierId::App => app,
            TierId::Db => db,
        }
    }

    /// Mutable [`TierId::select`].
    pub fn select_mut<'a, T>(&self, pair: &'a mut [T; 2]) -> &'a mut T {
        let [app, db] = pair;
        match self {
            TierId::App => app,
            TierId::Db => db,
        }
    }
}

impl std::fmt::Display for TierId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hardware and software configuration of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Number of CPU cores.
    pub cores: u32,
    /// Core speed in work units per second (1.0 = reference core).
    pub speed: f64,
    /// Contention degradation coefficient α (see
    /// [`crate::resources::PsCpu`]).
    pub contention_alpha: f64,
    /// Size of the tier's token pool: worker threads on the app tier, DB
    /// connections on the DB tier.
    pub pool_size: usize,
    /// Fraction of CPU capacity consumed by the metrics collector running
    /// on this tier (0.0 = no collection). Models the paper's Section V-D
    /// runtime-overhead experiment.
    pub collector_overhead: f64,
    /// Background interference process (OS daemons, JVM garbage
    /// collection, buffer-cache churn): the capacity fluctuation that
    /// makes saturated throughput wiggle in real testbeds.
    pub background: BackgroundLoad,
}

/// An Ornstein–Uhlenbeck (mean-reverting random walk) background load,
/// updated once per telemetry tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundLoad {
    /// Long-run mean fraction of capacity consumed.
    pub mean: f64,
    /// Per-tick innovation standard deviation.
    pub step_sd: f64,
    /// Mean-reversion rate per tick (0 = pure random walk).
    pub revert: f64,
    /// Hard upper bound on the fraction.
    pub max: f64,
}

impl BackgroundLoad {
    /// No background interference at all.
    pub fn none() -> BackgroundLoad {
        BackgroundLoad {
            mean: 0.0,
            step_sd: 0.0,
            revert: 1.0,
            max: 0.0,
        }
    }

    /// The default testbed interference: 5% mean with a slow wander of
    /// several percent (revert 0.06 gives an O(15 s) correlation time, so
    /// the fluctuation survives 30-second aggregation like the GC/daemon
    /// activity it stands in for).
    pub fn testbed() -> BackgroundLoad {
        BackgroundLoad {
            mean: 0.05,
            step_sd: 0.02,
            revert: 0.06,
            max: 0.30,
        }
    }

    fn validate(&self, name: &str) {
        assert!(
            (0.0..=0.95).contains(&self.mean) && self.max <= 0.95 && self.mean <= self.max + 1e-12,
            "{name}: background mean must be within [0, max]"
        );
        assert!(
            self.step_sd >= 0.0 && self.step_sd.is_finite(),
            "{name}: bad step_sd"
        );
        assert!(
            (0.0..=1.0).contains(&self.revert),
            "{name}: revert must be in [0,1]"
        );
    }
}

impl TierConfig {
    /// Effective core speed after collector overhead.
    pub fn effective_speed(&self) -> f64 {
        self.speed * (1.0 - self.collector_overhead)
    }

    fn validate(&self, name: &str) {
        self.background.validate(name);
        assert!(self.cores > 0, "{name}: need at least one core");
        assert!(
            self.speed > 0.0 && self.speed.is_finite(),
            "{name}: speed must be positive"
        );
        assert!(
            self.contention_alpha >= 0.0,
            "{name}: alpha must be nonnegative"
        );
        assert!(self.pool_size > 0, "{name}: pool must be nonempty");
        assert!(
            (0.0..1.0).contains(&self.collector_overhead),
            "{name}: collector overhead must be in [0,1)"
        );
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Application tier.
    pub app: TierConfig,
    /// Database tier.
    pub db: TierConfig,
    /// One-way network delay between tiers, seconds (applied on each hop
    /// of a DB call).
    pub network_delay_s: f64,
    /// Service demand table.
    pub profile: DemandProfile,
    /// Telemetry sampling period, seconds (the paper samples every 1 s).
    pub sample_period_s: f64,
    /// Client think-time distribution.
    pub think: ThinkTime,
}

impl SimConfig {
    /// The paper-like default testbed: a single-core app server (Pentium 4
    /// class), a dual-core DB server (Pentium D class), 128 worker
    /// threads, 10 DB connections, 0.5 ms network hops, 1 s sampling.
    pub fn testbed(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            app: TierConfig {
                cores: 1,
                speed: 1.0,
                contention_alpha: 0.004,
                pool_size: 128,
                collector_overhead: 0.0,
                background: BackgroundLoad::testbed(),
            },
            db: TierConfig {
                cores: 2,
                speed: 1.0,
                // With the small connection pool capping concurrency, a
                // strong per-job penalty (buffer-pool thrashing between
                // concurrent scans) produces the sharp post-saturation
                // throughput drop the paper describes — which also makes
                // overloaded throughput alias with near-knee underloaded
                // throughput, so load level alone cannot reveal the state.
                // Strong enough for a visible post-saturation decline
                // (~12% below peak with a full pool) yet weak enough that
                // the bistable congestion-collapse band stays narrow and a
                // near-knee plateau does not tip over from one burst.
                contention_alpha: 0.020,
                // Tomcat-era DBCP-style small pool: a handful of heavy
                // queries is enough to overload the DB, which is exactly
                // the regime the paper studies.
                pool_size: 10,
                collector_overhead: 0.0,
                background: BackgroundLoad::testbed(),
            },
            network_delay_s: 0.0005,
            profile: DemandProfile::testbed(),
            sample_period_s: 1.0,
            think: ThinkTime::tpcw(),
        }
    }

    /// Validate all invariants.
    ///
    /// # Panics
    ///
    /// Panics on any invalid parameter; called by the engine at
    /// construction.
    pub fn validate(&self) {
        self.app.validate("app");
        self.db.validate("db");
        assert!(
            self.network_delay_s >= 0.0 && self.network_delay_s.is_finite(),
            "network delay must be nonnegative"
        );
        assert!(
            self.sample_period_s > 0.0 && self.sample_period_s.is_finite(),
            "sample period must be positive"
        );
    }

    /// The tier config for `tier`.
    pub fn tier(&self, tier: TierId) -> &TierConfig {
        match tier {
            TierId::App => &self.app,
            TierId::Db => &self.db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_validates() {
        SimConfig::testbed(1).validate();
    }

    #[test]
    fn tier_indexing() {
        assert_eq!(TierId::App.index(), 0);
        assert_eq!(TierId::Db.index(), 1);
        assert_eq!(TierId::ALL[1], TierId::Db);
        assert_eq!(TierId::Db.to_string(), "DB");
    }

    #[test]
    fn effective_speed_subtracts_overhead() {
        let mut cfg = SimConfig::testbed(0);
        cfg.db.collector_overhead = 0.04;
        assert!((cfg.db.effective_speed() - 0.96).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pool must be nonempty")]
    fn zero_pool_rejected() {
        let mut cfg = SimConfig::testbed(0);
        cfg.app.pool_size = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "overhead must be in")]
    fn full_overhead_rejected() {
        let mut cfg = SimConfig::testbed(0);
        cfg.app.collector_overhead = 1.0;
        cfg.validate();
    }
}
