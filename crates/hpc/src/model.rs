//! The counter-synthesis model: micro-architecturally plausible counter
//! values driven by simulated tier state.
//!
//! The response surfaces encode the effects the paper's approach relies
//! on:
//!
//! * **Instruction throughput tracks utilization** — cycles scale with CPU
//!   busy time, instructions with delivered work.
//! * **Concurrency pollutes caches** — as more sessions execute
//!   concurrently (runnable jobs + held pool tokens), the combined working
//!   set overflows the L2, so the miss ratio and stall fraction climb and
//!   IPC falls. This continues *past* the saturation knee (overload pins
//!   the pool at its capacity), which is precisely the signal that remains
//!   visible to hardware counters when OS-level utilization has already
//!   pegged at 100%.
//! * **Instruction mix is hardware-visible** — browse-class work (large
//!   scans, joins) has a lower base IPC and higher memory traffic per
//!   instruction than order-class OLTP work. OS metrics carry no such
//!   composition channel.
//!
//! Counter noise is small and multiplicative (hardware counts are exact;
//! residual variation comes from code-path diversity), in contrast to the
//! coarse, quantized OS metrics of `webcap-os`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use webcap_sim::{TierId, TierSample};

use crate::events::HpcEvent;

/// One tier's counter readings over a sampling interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    counts: [u64; HpcEvent::COUNT],
    interval_s: f64,
}

impl CounterSample {
    /// Raw count of one event.
    pub fn count(&self, event: HpcEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Event rate per second.
    pub fn rate(&self, event: HpcEvent) -> f64 {
        self.count(event) as f64 / self.interval_s
    }

    /// Interval length in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// All counts in [`HpcEvent::ALL`] order.
    pub fn counts(&self) -> &[u64; HpcEvent::COUNT] {
        &self.counts
    }
}

/// Derived per-interval metrics — the attribute values performance
/// synopses are trained on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Instructions per cycle.
    pub ipc: f64,
    /// µops per cycle.
    pub upc: f64,
    /// L2 miss ratio (misses / references).
    pub l2_miss_rate: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
    /// Trace-cache misses per kilo-instruction.
    pub tc_mpki: f64,
    /// ITLB misses per kilo-instruction.
    pub itlb_mpki: f64,
    /// DTLB misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// Mispredicted fraction of retired branches.
    pub branch_mispredict_rate: f64,
    /// Bus transactions per kilo-cycle.
    pub bus_per_kcycle: f64,
    /// Fraction of cycles stalled on resources.
    pub stall_fraction: f64,
    /// Instructions retired per second.
    pub instr_per_s: f64,
}

impl DerivedMetrics {
    /// Compute derived metrics from raw counts.
    pub fn from_sample(s: &CounterSample) -> DerivedMetrics {
        let instr = s.count(HpcEvent::InstructionsRetired) as f64;
        let cycles = (s.count(HpcEvent::CyclesUnhalted) as f64).max(1.0);
        let ki = (instr / 1000.0).max(1e-9);
        let l2_ref = (s.count(HpcEvent::L2References) as f64).max(1.0);
        let branches = (s.count(HpcEvent::BranchesRetired) as f64).max(1.0);
        DerivedMetrics {
            ipc: instr / cycles,
            upc: s.count(HpcEvent::UopsRetired) as f64 / cycles,
            l2_miss_rate: s.count(HpcEvent::L2Misses) as f64 / l2_ref,
            l2_mpki: s.count(HpcEvent::L2Misses) as f64 / ki,
            l1d_mpki: s.count(HpcEvent::L1DMisses) as f64 / ki,
            tc_mpki: s.count(HpcEvent::TraceCacheMisses) as f64 / ki,
            itlb_mpki: s.count(HpcEvent::ItlbMisses) as f64 / ki,
            dtlb_mpki: s.count(HpcEvent::DtlbMisses) as f64 / ki,
            branch_mispredict_rate: s.count(HpcEvent::BranchMispredicts) as f64 / branches,
            bus_per_kcycle: s.count(HpcEvent::BusTransactions) as f64 / (cycles / 1000.0),
            stall_fraction: (s.count(HpcEvent::StallCycles) as f64 / cycles).min(1.0),
            instr_per_s: instr / s.interval_s(),
        }
    }

    /// Feature names, aligned with [`DerivedMetrics::to_features`].
    pub fn feature_names(prefix: &str) -> Vec<String> {
        [
            "ipc",
            "upc",
            "l2_miss_rate",
            "l2_mpki",
            "l1d_mpki",
            "tc_mpki",
            "itlb_mpki",
            "dtlb_mpki",
            "branch_mispredict_rate",
            "bus_per_kcycle",
            "stall_fraction",
            "instr_per_s",
        ]
        .iter()
        .map(|n| format!("{prefix}{n}"))
        .collect()
    }

    /// Arithmetic mean of a set of metric snapshots (used to aggregate
    /// per-second samples into the paper's 30-second intervals).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn mean(samples: &[DerivedMetrics]) -> DerivedMetrics {
        assert!(!samples.is_empty(), "cannot average no samples");
        let n = samples.len() as f64;
        let sum = |f: &dyn Fn(&DerivedMetrics) -> f64| samples.iter().map(f).sum::<f64>() / n;
        DerivedMetrics {
            ipc: sum(&|m| m.ipc),
            upc: sum(&|m| m.upc),
            l2_miss_rate: sum(&|m| m.l2_miss_rate),
            l2_mpki: sum(&|m| m.l2_mpki),
            l1d_mpki: sum(&|m| m.l1d_mpki),
            tc_mpki: sum(&|m| m.tc_mpki),
            itlb_mpki: sum(&|m| m.itlb_mpki),
            dtlb_mpki: sum(&|m| m.dtlb_mpki),
            branch_mispredict_rate: sum(&|m| m.branch_mispredict_rate),
            bus_per_kcycle: sum(&|m| m.bus_per_kcycle),
            stall_fraction: sum(&|m| m.stall_fraction),
            instr_per_s: sum(&|m| m.instr_per_s),
        }
    }

    /// The metrics as a feature vector (order matches
    /// [`DerivedMetrics::feature_names`]).
    pub fn to_features(&self) -> Vec<f64> {
        vec![
            self.ipc,
            self.upc,
            self.l2_miss_rate,
            self.l2_mpki,
            self.l1d_mpki,
            self.tc_mpki,
            self.itlb_mpki,
            self.dtlb_mpki,
            self.branch_mispredict_rate,
            self.bus_per_kcycle,
            self.stall_fraction,
            self.instr_per_s,
        ]
    }
}

/// Per-tier micro-architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierArch {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Number of cores (must match the simulator tier).
    pub cores: u32,
    /// Simulator work units one core delivers per second at zero
    /// contention (must match the simulator tier's `speed`).
    pub sim_speed: f64,
    /// IPC of the tier's code at low concurrency on a balanced mix.
    pub base_ipc: f64,
    /// L2 references per instruction at baseline.
    pub l2_ref_per_instr: f64,
    /// Baseline L2 miss ratio.
    pub base_l2_miss_ratio: f64,
    /// Baseline stall fraction.
    pub base_stall_fraction: f64,
}

impl TierArch {
    /// Pentium 4 (2.0 GHz, 1 core) — the paper's app server.
    pub fn pentium4_app() -> TierArch {
        TierArch {
            clock_hz: 2.0e9,
            cores: 1,
            sim_speed: 1.0,
            base_ipc: 1.15,
            l2_ref_per_instr: 0.020,
            base_l2_miss_ratio: 0.045,
            base_stall_fraction: 0.14,
        }
    }

    /// Pentium D (2.8 GHz, 2 cores) — the paper's DB server.
    pub fn pentium_d_db() -> TierArch {
        TierArch {
            clock_hz: 2.8e9,
            cores: 2,
            sim_speed: 1.0,
            base_ipc: 1.00,
            l2_ref_per_instr: 0.030,
            base_l2_miss_ratio: 0.060,
            base_stall_fraction: 0.16,
        }
    }
}

/// The counter synthesizer: holds per-tier architecture parameters and a
/// noise level, and turns [`TierSample`]s into [`CounterSample`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpcModel {
    app: TierArch,
    db: TierArch,
    /// Multiplicative noise σ applied to synthesized quantities.
    noise_sigma: f64,
}

impl HpcModel {
    /// The paper-like default: P4 app server, Pentium D DB server, 2 %
    /// counter noise.
    pub fn testbed() -> HpcModel {
        HpcModel {
            app: TierArch::pentium4_app(),
            db: TierArch::pentium_d_db(),
            noise_sigma: 0.02,
        }
    }

    /// Override the noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_noise(mut self, sigma: f64) -> HpcModel {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "noise must be nonnegative"
        );
        self.noise_sigma = sigma;
        self
    }

    /// The architecture parameters of a tier.
    pub fn arch(&self, tier: TierId) -> &TierArch {
        match tier {
            TierId::App => &self.app,
            TierId::Db => &self.db,
        }
    }

    fn noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.noise_sigma == 0.0 {
            return 1.0;
        }
        // Box–Muller Gaussian, clamped to stay positive.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (1.0 + self.noise_sigma * z).max(0.05)
    }

    /// Synthesize one interval's counters for `tier` from its simulator
    /// sample.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        tier: TierId,
        ts: &TierSample,
        interval_s: f64,
        rng: &mut R,
    ) -> CounterSample {
        assert!(interval_s > 0.0, "interval must be positive");
        let arch = self.arch(tier);
        let cores = f64::from(arch.cores);

        // Busy cycles across cores; a small floor models OS housekeeping.
        let util = ts.utilization.max(0.005);
        let cycles = util * arch.clock_hz * cores * interval_s;

        // Working-set pressure: the threads actually *executing*
        // concurrently. Threads blocked on a downstream tier or on disk
        // sleep and do not thrash the cache — which is exactly why the
        // front-end's counters stay quiet when the database is the
        // bottleneck (Table I's diagonal structure).
        let pollution = (1.0 + ts.avg_runnable / cores).ln();

        // Instruction-mix composition (hardware-visible): browse work is
        // scan/join heavy and needs fewer instructions per unit of time
        // because it stalls more.
        let browse = ts.browse_work_fraction();
        let mix_ipc_penalty = match tier {
            TierId::Db => 0.22 * browse,
            TierId::App => 0.06 * (1.0 - browse),
        };

        // Instructions are tied to the *work the simulator delivered*: a
        // request comprises a fixed instruction stream, so instructions
        // retired scale with completed work, while cycles scale with busy
        // time. Their ratio (IPC) therefore degrades exactly when
        // contention makes the same work burn more cycles — consistent
        // with the simulator's capacity-degradation model.
        let ipc_ref = arch.base_ipc * (1.0 - mix_ipc_penalty);
        let work_floor = 0.003 * cores * arch.sim_speed * interval_s;
        let work = ts.delivered_work_s.max(work_floor);
        let instr = work / arch.sim_speed * ipc_ref * arch.clock_hz * self.noise(rng);

        let l2_ref = instr * arch.l2_ref_per_instr * (1.0 + 0.25 * browse) * self.noise(rng);
        let mix_miss_boost = match tier {
            TierId::Db => 0.55 * browse,
            TierId::App => 0.10 * (1.0 - browse),
        };
        let l2_miss_ratio = (arch.base_l2_miss_ratio
            * (1.0 + mix_miss_boost)
            * (1.0 + 0.45 * pollution)
            * self.noise(rng))
        .min(0.95);
        let l2_miss = l2_ref * l2_miss_ratio;

        let stall_fraction = (arch.base_stall_fraction
            * (1.0 + 0.30 * browse)
            * (1.0 + 0.35 * pollution)
            * self.noise(rng))
        .min(0.92);

        let l1d = instr * 0.012 * (1.0 + 0.15 * pollution) * self.noise(rng);
        let tc = instr * 0.003 * (1.0 + 0.12 * pollution) * self.noise(rng);
        let itlb = instr * 0.0004 * (1.0 + 0.10 * pollution) * self.noise(rng);
        let dtlb = instr * 0.0015 * (1.0 + 0.20 * pollution) * self.noise(rng);
        let branches = instr * 0.18 * self.noise(rng);
        let mispredicts = branches * (0.045 * (1.0 + 0.12 * pollution)).min(0.25) * self.noise(rng);
        let bus = (l2_miss * 1.15 + instr * 0.0005) * self.noise(rng);
        let uops = instr * 1.45 * self.noise(rng);
        let loads = instr * 0.32 * self.noise(rng);
        let stores = instr * 0.14 * self.noise(rng);

        let mut counts = [0u64; HpcEvent::COUNT];
        let mut set = |e: HpcEvent, v: f64| counts[e.index()] = v.max(0.0) as u64;
        set(HpcEvent::InstructionsRetired, instr);
        set(HpcEvent::CyclesUnhalted, cycles);
        set(HpcEvent::UopsRetired, uops);
        set(HpcEvent::L1DMisses, l1d);
        set(HpcEvent::L2References, l2_ref);
        set(HpcEvent::L2Misses, l2_miss);
        set(HpcEvent::TraceCacheMisses, tc);
        set(HpcEvent::ItlbMisses, itlb);
        set(HpcEvent::DtlbMisses, dtlb);
        set(HpcEvent::BranchesRetired, branches);
        set(HpcEvent::BranchMispredicts, mispredicts);
        set(HpcEvent::BusTransactions, bus);
        set(HpcEvent::StallCycles, stall_fraction * cycles);
        set(HpcEvent::LoadsRetired, loads);
        set(HpcEvent::StoresRetired, stores);
        CounterSample { counts, interval_s }
    }
}

impl Default for HpcModel {
    fn default() -> HpcModel {
        HpcModel::testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tier_sample(util: f64, pool: f64, runnable: f64, browse: f64) -> TierSample {
        TierSample {
            utilization: util,
            // Work tracks utilization with mild contention loss as the
            // pool fills (mirrors the simulator's degradation).
            delivered_work_s: util / (1.0 + 0.004 * pool),
            avg_runnable: runnable,
            pool_in_use_avg: pool,
            pool_queue_avg: 0.0,
            pool_queue_end: 0,
            pool_in_use_end: pool as usize,
            disk_utilization: 0.0,
            disk_queue_avg: 0.0,
            disk_ops: 0,
            arrivals: 100,
            completions: 100,
            browse_work_submitted_s: browse,
            order_work_submitted_s: 1.0 - browse,
        }
    }

    #[test]
    fn cycles_track_utilization() {
        let m = HpcModel::testbed().with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let lo = m.sample(TierId::App, &tier_sample(0.2, 3.0, 1.0, 0.5), 1.0, &mut rng);
        let hi = m.sample(TierId::App, &tier_sample(0.9, 3.0, 1.0, 0.5), 1.0, &mut rng);
        let ratio =
            hi.count(HpcEvent::CyclesUnhalted) as f64 / lo.count(HpcEvent::CyclesUnhalted) as f64;
        assert!((ratio - 4.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn concurrency_raises_miss_rate_and_lowers_ipc() {
        let m = HpcModel::testbed().with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let light = m.sample(TierId::Db, &tier_sample(0.95, 6.0, 3.0, 0.8), 1.0, &mut rng);
        let heavy = m.sample(
            TierId::Db,
            &tier_sample(1.0, 32.0, 22.0, 0.8),
            1.0,
            &mut rng,
        );
        let dl = DerivedMetrics::from_sample(&light);
        let dh = DerivedMetrics::from_sample(&heavy);
        assert!(
            dh.l2_miss_rate > 1.15 * dl.l2_miss_rate,
            "{} vs {}",
            dh.l2_miss_rate,
            dl.l2_miss_rate
        );
        assert!(dh.ipc < dl.ipc);
        assert!(dh.stall_fraction > dl.stall_fraction);
    }

    #[test]
    fn browse_mix_is_visible_in_db_counters() {
        let m = HpcModel::testbed().with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let scan = m.sample(TierId::Db, &tier_sample(0.9, 10.0, 5.0, 1.0), 1.0, &mut rng);
        let oltp = m.sample(TierId::Db, &tier_sample(0.9, 10.0, 5.0, 0.0), 1.0, &mut rng);
        let ds = DerivedMetrics::from_sample(&scan);
        let d_oltp = DerivedMetrics::from_sample(&oltp);
        assert!(ds.ipc < d_oltp.ipc, "scans lower IPC");
        assert!(ds.l2_miss_rate > d_oltp.l2_miss_rate, "scans miss more");
    }

    #[test]
    fn derived_metrics_are_finite_and_bounded() {
        let m = HpcModel::testbed();
        let mut rng = StdRng::seed_from_u64(4);
        for util in [0.0, 0.3, 1.0] {
            for pool in [0.0, 16.0, 128.0] {
                let s = m.sample(
                    TierId::App,
                    &tier_sample(util, pool, pool / 2.0, 0.5),
                    1.0,
                    &mut rng,
                );
                let d = DerivedMetrics::from_sample(&s);
                for v in d.to_features() {
                    assert!(v.is_finite() && v >= 0.0, "bad feature {v}");
                }
                assert!(d.l2_miss_rate <= 1.0);
                assert!(d.stall_fraction <= 1.0);
            }
        }
    }

    #[test]
    fn feature_names_align_with_vector() {
        let names = DerivedMetrics::feature_names("db_");
        let m = HpcModel::testbed();
        let mut rng = StdRng::seed_from_u64(5);
        let s = m.sample(TierId::Db, &tier_sample(0.5, 8.0, 4.0, 0.6), 1.0, &mut rng);
        let d = DerivedMetrics::from_sample(&s);
        assert_eq!(names.len(), d.to_features().len());
        assert!(names[0].starts_with("db_"));
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let m = HpcModel::testbed().with_noise(0.0);
        let ts = tier_sample(0.7, 10.0, 4.0, 0.5);
        let mut r1 = StdRng::seed_from_u64(10);
        let mut r2 = StdRng::seed_from_u64(99);
        let a = m.sample(TierId::App, &ts, 1.0, &mut r1);
        let b = m.sample(TierId::App, &ts, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn idle_tier_still_counts_housekeeping() {
        let m = HpcModel::testbed().with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let s = m.sample(TierId::App, &tier_sample(0.0, 0.0, 0.0, 0.5), 1.0, &mut rng);
        assert!(s.count(HpcEvent::CyclesUnhalted) > 0);
        assert!(s.count(HpcEvent::InstructionsRetired) > 0);
    }
}
