//! A PerfCtr-style counter reader facade.
//!
//! The paper reads counters "in all physical CPUs using the global mode in
//! PerfCtr" with a lightweight tool that only initializes and reads the
//! registers. [`CounterReader`] mirrors that interface: counters are
//! monotonically increasing totals since `open`, and a caller samples by
//! taking differences between consecutive reads — exactly how the paper's
//! collector (and perf-event users generally) operate.

use webcap_sim::{TierId, TierSample};

use crate::events::HpcEvent;
use crate::model::{CounterSample, HpcModel};

/// Hardware counter width on NetBurst: 40 bits. Raw register values wrap
/// at this modulus; [`counter_delta`] recovers differences across a single
/// wrap, exactly as the paper's lightweight reader (and every perf tool)
/// must.
pub const COUNTER_BITS: u32 = 40;
const COUNTER_MODULUS: u64 = 1 << COUNTER_BITS;

/// Difference `current − previous` of a wrapping hardware counter.
///
/// Correct as long as at most one wrap happened between the two reads —
/// at ~3 GHz the cycle counter wraps every ~6 minutes, far longer than the
/// 1-second sampling period.
pub fn counter_delta(previous: u64, current: u64) -> u64 {
    debug_assert!(previous < COUNTER_MODULUS && current < COUNTER_MODULUS);
    if current >= previous {
        current - previous
    } else {
        COUNTER_MODULUS - previous + current
    }
}

/// Cumulative per-tier counter state, advanced by feeding simulator
/// samples and read like a hardware counter file. Raw reads wrap at the
/// 40-bit register width like the real thing; use [`counter_delta`] when
/// differencing.
#[derive(Debug, Clone)]
pub struct CounterReader {
    model: HpcModel,
    tier: TierId,
    totals: [u64; HpcEvent::COUNT],
    last_interval: Option<CounterSample>,
}

impl CounterReader {
    /// Open a reader for one tier (analogous to opening the PerfCtr
    /// device on that machine).
    pub fn open(model: HpcModel, tier: TierId) -> CounterReader {
        CounterReader {
            model,
            tier,
            totals: [0; HpcEvent::COUNT],
            last_interval: None,
        }
    }

    /// Advance the counters by one simulator interval.
    pub fn advance<R: rand::Rng + ?Sized>(
        &mut self,
        ts: &TierSample,
        interval_s: f64,
        rng: &mut R,
    ) {
        let sample = self.model.sample(self.tier, ts, interval_s, rng);
        for e in HpcEvent::ALL {
            self.totals[e.index()] = (self.totals[e.index()] + sample.count(e)) % COUNTER_MODULUS;
        }
        self.last_interval = Some(sample);
    }

    /// Read the raw register values (wrapping at the 40-bit width, like
    /// real counters; recover differences with [`counter_delta`]).
    pub fn read(&self) -> [u64; HpcEvent::COUNT] {
        self.totals
    }

    /// Cumulative total of one event.
    pub fn total(&self, event: HpcEvent) -> u64 {
        self.totals[event.index()]
    }

    /// The most recent interval sample, if any interval has elapsed.
    pub fn last_interval(&self) -> Option<&CounterSample> {
        self.last_interval.as_ref()
    }

    /// The tier this reader watches.
    pub fn tier(&self) -> TierId {
        self.tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn busy_sample() -> TierSample {
        TierSample {
            utilization: 0.8,
            delivered_work_s: 0.8,
            avg_runnable: 4.0,
            pool_in_use_avg: 10.0,
            pool_queue_avg: 0.0,
            pool_queue_end: 0,
            pool_in_use_end: 10,
            disk_utilization: 0.0,
            disk_queue_avg: 0.0,
            disk_ops: 0,
            arrivals: 50,
            completions: 50,
            browse_work_submitted_s: 0.4,
            order_work_submitted_s: 0.4,
        }
    }

    #[test]
    fn totals_accumulate_and_wrap_like_registers() {
        let mut reader = CounterReader::open(HpcModel::testbed(), TierId::App);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(reader.total(HpcEvent::CyclesUnhalted), 0);
        for _ in 0..5 {
            reader.advance(&busy_sample(), 1.0, &mut rng);
            for e in HpcEvent::ALL {
                assert!(
                    reader.total(e) < COUNTER_MODULUS,
                    "{e} exceeded register width"
                );
            }
        }
        assert!(reader.total(HpcEvent::InstructionsRetired) > 0);
    }

    #[test]
    fn differencing_recovers_interval() {
        let mut reader = CounterReader::open(HpcModel::testbed(), TierId::Db);
        let mut rng = StdRng::seed_from_u64(2);
        reader.advance(&busy_sample(), 1.0, &mut rng);
        let first = reader.read();
        reader.advance(&busy_sample(), 1.0, &mut rng);
        let second = reader.read();
        let diff = counter_delta(
            first[HpcEvent::InstructionsRetired.index()],
            second[HpcEvent::InstructionsRetired.index()],
        );
        let last = reader.last_interval().unwrap();
        assert_eq!(diff, last.count(HpcEvent::InstructionsRetired));
        assert_eq!(reader.tier(), TierId::Db);
    }

    #[test]
    fn counter_delta_handles_a_wrap() {
        let near_top = COUNTER_MODULUS - 100;
        assert_eq!(counter_delta(near_top, 50), 150);
        assert_eq!(counter_delta(100, 250), 150);
        assert_eq!(counter_delta(0, 0), 0);
    }

    #[test]
    fn many_intervals_never_exceed_register_width() {
        // A 2.8 GHz dual-core tier runs ~5.6e9 cycles per busy second; the
        // 40-bit register (~1.1e12) wraps after ~200 seconds. Differencing
        // across each 1 s interval must survive that.
        let mut reader = CounterReader::open(HpcModel::testbed(), TierId::Db);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = reader.read();
        let mut wrapped = false;
        for _ in 0..400 {
            reader.advance(&busy_sample(), 1.0, &mut rng);
            let cur = reader.read();
            let idx = HpcEvent::CyclesUnhalted.index();
            if cur[idx] < prev[idx] {
                wrapped = true;
            }
            let delta = counter_delta(prev[idx], cur[idx]);
            assert!(delta > 1e9 as u64 && delta < 8e9 as u64, "delta {delta}");
            prev = cur;
        }
        assert!(
            wrapped,
            "the cycle counter should have wrapped in ~400 busy seconds"
        );
    }
}
