//! Hardware performance-counter synthesis for the webcap testbed.
//!
//! The paper collects hardware counter statistics on each tier through the
//! PerfCtr kernel patch and trains performance synopses on them. Lacking
//! physical NetBurst machines, this crate synthesizes counters from
//! simulator tier state with micro-architecturally plausible response
//! surfaces (see [`model`] for the modeling rationale):
//!
//! * [`HpcEvent`] — the NetBurst-flavoured event set.
//! * [`HpcModel`] — turns a [`webcap_sim::TierSample`] into a
//!   [`CounterSample`] of raw counts.
//! * [`DerivedMetrics`] — IPC, L2 miss rate, stall fraction, … — the
//!   attribute values synopses are trained on.
//! * [`CounterReader`] — a PerfCtr-style monotone-totals facade.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use webcap_hpc::{DerivedMetrics, HpcModel};
//! use webcap_sim::{TierId, TierSample};
//!
//! let model = HpcModel::testbed();
//! let tier_state = TierSample { utilization: 0.9, pool_in_use_avg: 12.0, ..Default::default() };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let counters = model.sample(TierId::Db, &tier_state, 1.0, &mut rng);
//! let derived = DerivedMetrics::from_sample(&counters);
//! assert!(derived.ipc > 0.0 && derived.l2_miss_rate < 1.0);
//! ```

pub mod events;
pub mod model;
pub mod reader;

pub use events::HpcEvent;
pub use model::{CounterSample, DerivedMetrics, HpcModel, TierArch};
pub use reader::{counter_delta, CounterReader, COUNTER_BITS};
