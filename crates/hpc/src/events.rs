//! The hardware performance-counter event set.
//!
//! The paper's testbed read counters on Intel NetBurst CPUs (Pentium 4 /
//! Pentium D) through the PerfCtr kernel patch in global mode. The event
//! set below is a NetBurst-flavoured selection of the counters such a
//! setup exposes: instruction/µop retirement, cache hierarchy behaviour,
//! the trace cache, TLBs, branches, front-side-bus transactions, and
//! resource stalls.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware counter event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HpcEvent {
    /// Instructions retired.
    InstructionsRetired,
    /// Unhalted core cycles (summed across cores).
    CyclesUnhalted,
    /// Micro-operations retired.
    UopsRetired,
    /// L1 data-cache misses.
    L1DMisses,
    /// L2 cache references (loads + RFOs reaching L2).
    L2References,
    /// L2 cache misses.
    L2Misses,
    /// Trace-cache (decoded µop cache) misses — NetBurst specific.
    TraceCacheMisses,
    /// Instruction-TLB misses.
    ItlbMisses,
    /// Data-TLB misses.
    DtlbMisses,
    /// Branch instructions retired.
    BranchesRetired,
    /// Mispredicted branches retired.
    BranchMispredicts,
    /// Front-side-bus transactions (memory traffic).
    BusTransactions,
    /// Cycles stalled on resource contention (memory, ROB, store buffer).
    StallCycles,
    /// Retired memory load µops.
    LoadsRetired,
    /// Retired memory store µops.
    StoresRetired,
}

impl HpcEvent {
    /// All events, in fixed report order.
    pub const ALL: [HpcEvent; 15] = [
        HpcEvent::InstructionsRetired,
        HpcEvent::CyclesUnhalted,
        HpcEvent::UopsRetired,
        HpcEvent::L1DMisses,
        HpcEvent::L2References,
        HpcEvent::L2Misses,
        HpcEvent::TraceCacheMisses,
        HpcEvent::ItlbMisses,
        HpcEvent::DtlbMisses,
        HpcEvent::BranchesRetired,
        HpcEvent::BranchMispredicts,
        HpcEvent::BusTransactions,
        HpcEvent::StallCycles,
        HpcEvent::LoadsRetired,
        HpcEvent::StoresRetired,
    ];

    /// Number of events.
    pub const COUNT: usize = 15;

    /// Dense index aligned with [`HpcEvent::ALL`].
    pub fn index(&self) -> usize {
        HpcEvent::ALL
            .iter()
            .position(|e| e == self)
            .expect("event is in ALL")
    }

    /// PerfCtr-style event mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            HpcEvent::InstructionsRetired => "instr_retired",
            HpcEvent::CyclesUnhalted => "cycles_unhalted",
            HpcEvent::UopsRetired => "uops_retired",
            HpcEvent::L1DMisses => "l1d_miss",
            HpcEvent::L2References => "l2_ref",
            HpcEvent::L2Misses => "l2_miss",
            HpcEvent::TraceCacheMisses => "tc_miss",
            HpcEvent::ItlbMisses => "itlb_miss",
            HpcEvent::DtlbMisses => "dtlb_miss",
            HpcEvent::BranchesRetired => "br_retired",
            HpcEvent::BranchMispredicts => "br_mispred",
            HpcEvent::BusTransactions => "bus_trans",
            HpcEvent::StallCycles => "stall_cycles",
            HpcEvent::LoadsRetired => "loads_retired",
            HpcEvent::StoresRetired => "stores_retired",
        }
    }
}

impl fmt::Display for HpcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, e) in HpcEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        assert_eq!(HpcEvent::ALL.len(), HpcEvent::COUNT);
    }

    #[test]
    fn mnemonics_unique() {
        let mut names: Vec<&str> = HpcEvent::ALL.iter().map(|e| e.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HpcEvent::COUNT);
    }

    #[test]
    fn display_is_mnemonic() {
        assert_eq!(HpcEvent::L2Misses.to_string(), "l2_miss");
    }
}
