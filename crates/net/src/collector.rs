//! The front-end collector: accept one connection per tier, reassemble
//! per-second [`SystemSample`]s by timestamp alignment, quarantine any
//! window touched by loss or reconnection, and feed the surviving
//! windows to the online meter.
//!
//! # Gap semantics
//!
//! The collector **never averages over holes**. Aggregation windows are
//! fixed spans of `window_len` consecutive second-keys (`key =
//! round(t_s)`), anchored at `window_origin`; window `w` covers keys
//! `origin + w·len ..= origin + (w+1)·len − 1`. A window is *poisoned* —
//! permanently excluded from prediction — when:
//!
//! * **a sequence gap** on either tier skips keys: every window
//!   containing a missing key is poisoned (detected the moment the
//!   first post-gap sample arrives, and at `Bye` for trailing loss);
//! * **a reconnection** straddles it: the window holding the last
//!   pre-disconnect key (unless that key ends its window) and the
//!   window holding the first post-reconnect key (unless that key
//!   starts its window) are poisoned, so no emitted window ever mixes
//!   two sessions mid-stream.
//!
//! Because each tier's frames arrive in order on one connection and a
//! window only completes when *both* tiers have delivered *all* of its
//! keys, every poisoning event for a window is observed before the
//! window could complete — a window is never un-emitted. The emitted
//! decision stream is therefore a pure function of the two per-tier
//! frame sequences, which is what lets the fault-injection test demand
//! byte-identical JSON against an in-process replay.
//!
//! On any discontinuity the partial-window state is discarded via
//! [`OnlineMonitor::reset`]: the monitor is reset before feeding window
//! `w` unless `w − 1` was the previously fed window.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use webcap_core::{CapacityMeter, OnlineDecision, OnlineMonitor};
use webcap_sim::TierId;

use crate::frame::{
    encode_payload, metric_schema_hash, read_frame, try_extract_frame, write_frame, Frame,
    WireCodec, WireSample, MIN_PROTO_VERSION, PROTO_VERSION,
};
use crate::transport::{is_timeout, Conn, Listener};

/// Collector runtime configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Second-key of the first sample of the deployment's stream
    /// (`round(t_s)` of sequence 0); anchors window boundaries. The
    /// simulator's first per-second sample ends at `t = 1 s`.
    pub window_origin: i64,
    /// Read timeout for the handshake `Hello`.
    pub handshake_timeout: Duration,
    /// Per-connection read timeout; a session silent for longer (no
    /// samples, no heartbeats) is dropped.
    pub read_timeout: Duration,
    /// Stop when no events arrive for this long and no session is
    /// active.
    pub idle_timeout: Duration,
    /// Number of distinct tiers expected to say `Bye` before the
    /// collector concludes the run.
    pub expected_tiers: usize,
    /// Overload bound on each lane's buffered bytes, in *both*
    /// directions: a poll round stops reading once this much inbound is
    /// buffered unparsed (fairness against a blasting peer), and a lane
    /// whose outbound ack backlog exceeds it — a peer that writes but
    /// never reads — is shed. Must comfortably exceed one maximum frame
    /// (`MAX_FRAME_LEN` + header) or legitimate frames could never
    /// complete; the default is twice that.
    pub max_lane_buffered_bytes: usize,
    /// Overload bound on a lane that sits mid-frame without completing
    /// one: after this many consecutive poll rounds holding a partial
    /// frame and extracting nothing, the lane is shed. This is the
    /// accumulated-idle defence against half-open peers (silent after a
    /// partial header) and hostile slow writers (dribbling bytes so the
    /// plain idle clock never fires) — both previously pinned a lane
    /// forever whenever another lane kept the poller busy. The default
    /// matches `read_timeout` at the 1 ms poll cadence.
    pub stall_poll_budget: u32,
    /// Overload bound on handshaken connections queued behind a tier's
    /// live session; beyond it new dials are shed (closed) instead of
    /// growing the queue — a redial storm must not grow memory.
    pub max_waiting_conns: usize,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            window_origin: 1,
            handshake_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(10),
            expected_tiers: 2,
            max_lane_buffered_bytes: 2 * (crate::frame::MAX_FRAME_LEN as usize + 8),
            stall_poll_budget: 2000,
            max_waiting_conns: 8,
        }
    }
}

/// Why the collector shed a connection (or a dial) under overload. Every
/// shed is deliberate and accounted: the affected tier's in-flight
/// window is quarantined exactly like loss, never silently averaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedKind {
    /// The peer's outbound (ack) backlog exceeded the lane byte bound —
    /// it writes but never reads.
    WriteBacklog,
    /// The lane sat mid-frame past the stall budget — a half-open peer
    /// or a hostile slow writer.
    StalledFrame,
    /// A handshaken dial arrived with the tier's waiting queue already
    /// full.
    DialBacklog,
}

impl std::fmt::Display for ShedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShedKind::WriteBacklog => "write-backlog",
            ShedKind::StalledFrame => "stalled-frame",
            ShedKind::DialBacklog => "dial-backlog",
        })
    }
}

/// End-of-run account of what the collector saw and decided.
#[derive(Debug, Clone)]
pub struct CollectorReport {
    /// Emitted decisions, in window order.
    pub decisions: Vec<(i64, OnlineDecision)>,
    /// Windows quarantined by gaps or reconnections.
    pub poisoned_windows: Vec<i64>,
    /// Windows still partially buffered at shutdown (incomplete, never
    /// emitted).
    pub pending_windows: Vec<i64>,
    /// Sessions accepted per tier (reconnects show up here).
    pub sessions: [u64; 2],
    /// Sample frames received per tier.
    pub samples: [u64; 2],
    /// Connections refused at handshake (version/schema mismatch).
    pub rejected_handshakes: u64,
    /// Protocol-order surprises survived (duplicate keys, data for
    /// finalized windows); nonzero values indicate a misbehaving agent.
    pub anomalies: u64,
    /// Connections (or dials) shed by the overload policy, with the
    /// reason for each — the audit trail the overload tests read.
    pub sheds: Vec<(TierId, ShedKind)>,
}

/// Most windows a single sequence gap may individually poison. A
/// legitimate outage of any survivable length stays far below this
/// (2^20 windows ≈ a year of 30 s windows); a hostile or corrupt
/// sequence jump (e.g. a `seq` near `u64::MAX`) would otherwise make
/// the gap-poisoning loop insert billions of ledger entries — an
/// unbounded-memory DoS. Beyond the clamp only the gap's first span
/// and its landing window are poisoned and the overflow is counted as
/// an anomaly; safety is unaffected, because the skipped windows have
/// no samples and therefore can never complete or emit.
pub const MAX_GAP_WINDOWS: i64 = 1 << 20;

/// The pure reassembly state machine, single-threaded and fully
/// deterministic — the socketed [`run_collector`] drives it, and unit
/// tests drive it directly.
#[derive(Debug)]
pub struct Assembler {
    monitor: OnlineMonitor,
    window_len: i64,
    origin: i64,
    /// key → per-tier sample, for windows still being joined.
    pending: BTreeMap<i64, [Option<WireSample>; 2]>,
    /// window → count of keys with both tiers present.
    joined: BTreeMap<i64, i64>,
    poisoned: BTreeSet<i64>,
    last_key: [Option<i64>; 2],
    fresh_session: [bool; 2],
    had_session: [bool; 2],
    prev_fed: Option<i64>,
    emitted: BTreeSet<i64>,
    anomalies: u64,
    /// Reusable pair buffer for [`Assembler::emit`]: one allocation for
    /// the whole run instead of one per emitted window.
    scratch: Vec<(WireSample, WireSample)>,
}

impl Assembler {
    /// Wrap a trained meter; `origin` is the key of the stream's first
    /// sample (see [`CollectorConfig::window_origin`]).
    pub fn new(meter: CapacityMeter, origin: i64) -> Assembler {
        let window_len = meter.config().window_len as i64;
        Assembler {
            // The monitor seed is irrelevant on the collected-metrics
            // path (agents synthesize); zero by convention.
            monitor: OnlineMonitor::new(meter, 0),
            window_len,
            origin,
            pending: BTreeMap::new(),
            joined: BTreeMap::new(),
            poisoned: BTreeSet::new(),
            last_key: [None, None],
            fresh_session: [false, false],
            had_session: [false, false],
            prev_fed: None,
            emitted: BTreeSet::new(),
            anomalies: 0,
            scratch: Vec::with_capacity(window_len.max(0) as usize),
        }
    }

    /// Window index holding `key`.
    pub fn window_of(&self, key: i64) -> i64 {
        (key - self.origin).div_euclid(self.window_len)
    }

    fn first_key(&self, window: i64) -> i64 {
        self.origin + window * self.window_len
    }

    fn last_key_of(&self, window: i64) -> i64 {
        self.first_key(window) + self.window_len - 1
    }

    /// Note a (re)connection on `tier`. The first session is just the
    /// stream starting; later ones arm the straddle-poisoning rules,
    /// applied when the session's first sample shows where the
    /// discontinuity fell.
    pub fn on_session_start(&mut self, tier: TierId) {
        if *tier.select(&self.had_session) {
            *tier.select_mut(&mut self.fresh_session) = true;
        } else {
            *tier.select_mut(&mut self.had_session) = true;
        }
    }

    fn poison(&mut self, window: i64) {
        if window < 0 || self.emitted.contains(&window) {
            // Emitted-then-poisoned cannot happen for ordered per-tier
            // streams (see module docs); count it rather than trust it.
            self.anomalies += 1;
            return;
        }
        if self.poisoned.insert(window) {
            let keys: Vec<i64> = self
                .pending
                .range(self.first_key(window)..=self.last_key_of(window))
                .map(|(k, _)| *k)
                .collect();
            for k in keys {
                self.pending.remove(&k);
            }
            self.joined.remove(&window);
        }
    }

    /// Feed one received sample; emitted decisions go to `sink`.
    pub fn on_sample(
        &mut self,
        tier: TierId,
        ws: WireSample,
        sink: &mut dyn FnMut(i64, &OnlineDecision),
    ) {
        let key = ws.t_s.round() as i64;

        if *tier.select(&self.fresh_session) {
            *tier.select_mut(&mut self.fresh_session) = false;
            if let Some(k_old) = *tier.select(&self.last_key) {
                if k_old != self.last_key_of(self.window_of(k_old)) {
                    self.poison(self.window_of(k_old));
                }
            }
            if key != self.first_key(self.window_of(key)) {
                self.poison(self.window_of(key));
            }
        }

        let expected = tier.select(&self.last_key).map_or(self.origin, |l| l + 1);
        if key < expected {
            // Duplicate or out-of-order: impossible on one ordered
            // stream, so never silently fold it into an aggregate.
            self.anomalies += 1;
            return;
        }
        if key > expected {
            self.poison_gap(self.window_of(expected), self.window_of(key - 1));
        }
        *tier.select_mut(&mut self.last_key) = Some(key);

        let window = self.window_of(key);
        if self.poisoned.contains(&window) {
            return;
        }
        let entry = self.pending.entry(key).or_default();
        let slot = tier.select_mut(entry);
        if slot.is_some() {
            self.anomalies += 1;
            return;
        }
        *slot = Some(ws);
        if entry.iter().all(Option::is_some) {
            let joined = self.joined.entry(window).or_insert(0);
            *joined += 1;
            if *joined == self.window_len {
                self.emit(window, sink);
            }
        }
    }

    /// Poison every window of an inclusive gap span, clamped to
    /// [`MAX_GAP_WINDOWS`] so a hostile sequence jump cannot grow the
    /// poison ledger without bound. The landing window is always
    /// poisoned so the gap's right edge stays quarantined even when the
    /// middle is elided.
    fn poison_gap(&mut self, first_w: i64, last_w: i64) {
        let clamped = last_w.min(first_w.saturating_add(MAX_GAP_WINDOWS - 1));
        for w in first_w..=clamped {
            self.poison(w);
        }
        if clamped < last_w {
            self.anomalies += 1;
            self.poison(last_w);
        }
    }

    /// A tier finished cleanly, announcing its final sequence; detect
    /// trailing loss (frames dropped after the last one we received).
    pub fn on_bye(&mut self, tier: TierId, last_seq: u64) {
        let final_key = self.origin + last_seq as i64;
        let expected = tier.select(&self.last_key).map_or(self.origin, |l| l + 1);
        if final_key >= expected {
            self.poison_gap(self.window_of(expected), self.window_of(final_key));
            *tier.select_mut(&mut self.last_key) = Some(final_key);
        }
    }

    /// A tier's session ended *abnormally* — EOF, overload shed, or an
    /// idle/stall timeout, with no `Bye`. The window its last key sits
    /// in mid-stream is quarantined immediately (unless the break fell
    /// exactly on a window boundary): the lane's in-flight window must
    /// never wait on a reconnect that may not come to be poisoned. A
    /// later reconnect re-applies the same straddle rule, which is
    /// idempotent on the poison ledger, so eager quarantine changes no
    /// byte of any surviving window.
    pub fn on_session_abort(&mut self, tier: TierId) {
        if let Some(k) = *tier.select(&self.last_key) {
            if k != self.last_key_of(self.window_of(k)) {
                self.poison(self.window_of(k));
            }
        }
    }

    fn emit(&mut self, window: i64, sink: &mut dyn FnMut(i64, &OnlineDecision)) {
        // Collect the window's joined pairs first: a protocol violation
        // (app-tier sample without front-end stats) must poison the
        // window *before* anything is fed to the monitor. The pair
        // buffer is taken from (and handed back to) `scratch`, so its
        // allocation is reused across windows.
        let mut pairs = std::mem::take(&mut self.scratch);
        pairs.clear();
        let mut complete = true;
        for key in self.first_key(window)..=self.last_key_of(window) {
            match self.pending.remove(&key) {
                Some([Some(app), Some(db)]) if app.app.is_some() => pairs.push((app, db)),
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            self.anomalies += 1;
            self.poison(window);
            pairs.clear();
            self.scratch = pairs;
            return;
        }
        self.joined.remove(&window);

        // Partial-window / stale-history reset on any discontinuity.
        if self.prev_fed != Some(window - 1) {
            self.monitor.reset();
        }
        let mut decision = None;
        for (app, db) in pairs.drain(..) {
            // `complete` already verified every app sample carries
            // stats, but stay panic-free: treat a miss as the protocol
            // violation it is. (Draining on break still empties the
            // buffer — `drain`'s drop removes the whole range.)
            let Some(stats) = app.app else {
                decision = None;
                break;
            };
            let sample = stats.into_sample(app.t_s, app.interval_s, app.tier, db.tier);
            decision = self
                .monitor
                .push_collected(sample, [app.hpc, db.hpc], [app.os, db.os]);
        }
        pairs.clear();
        self.scratch = pairs;
        // `window_len` samples complete a window, so the monitor must
        // have produced a decision; if it somehow did not, quarantine
        // the window rather than panic the collector.
        let Some(decision) = decision else {
            self.anomalies += 1;
            self.monitor.reset();
            self.prev_fed = None;
            self.poison(window);
            return;
        };
        self.prev_fed = Some(window);
        self.emitted.insert(window);
        sink(window, &decision);
    }

    /// Windows quarantined so far.
    pub fn poisoned_windows(&self) -> Vec<i64> {
        self.poisoned.iter().copied().collect()
    }

    /// Windows with partial data still buffered.
    pub fn pending_windows(&self) -> Vec<i64> {
        let mut out = BTreeSet::new();
        for key in self.pending.keys() {
            out.insert(self.window_of(*key));
        }
        out.into_iter().collect()
    }

    /// Protocol-order surprises counted.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// The wrapped monitor's lifetime counters `(samples_seen,
    /// decisions_made)` — what a snapshot persists.
    pub fn monitor_counters(&self) -> (u64, u64) {
        (self.monitor.samples_seen(), self.monitor.decisions_made())
    }

    /// The trained meter inside the monitor (read-only, for
    /// snapshotting).
    pub fn meter(&self) -> &CapacityMeter {
        self.monitor.meter()
    }

    /// Capture the boundary-persistent reassembly state for a snapshot.
    ///
    /// Partial-window buffers (`pending`, `joined`) are deliberately
    /// *not* captured: a snapshot is only ever restored across a process
    /// boundary, where every agent reconnects, and the straddle-
    /// poisoning rules already quarantine any window cut by that
    /// discontinuity — exactly as they do for a mid-run reconnect. What
    /// must survive is the per-tier stream position (`last_key`,
    /// `had_session`), the monitor-feed continuity marker (`prev_fed`),
    /// and the emitted/poisoned ledgers that keep a restarted collector
    /// from re-emitting or un-poisoning a window.
    pub fn export_state(&self) -> AssemblerState {
        AssemblerState {
            last_key: self.last_key,
            had_session: self.had_session,
            prev_fed: self.prev_fed,
            emitted: self.emitted.iter().copied().collect(),
            poisoned: self.poisoned.iter().copied().collect(),
            anomalies: self.anomalies,
        }
    }

    /// Rebuild an assembler from a snapshot: a fresh assembler around
    /// the persisted meter, with the boundary state restored and every
    /// tier that had a session marked `fresh_session` — so each tier's
    /// first post-restart sample runs the same straddle-poisoning rules
    /// as a mid-run reconnect. A restart at a window boundary therefore
    /// continues byte-identically; a restart mid-window quarantines
    /// exactly the cut windows.
    pub fn resume(
        meter: CapacityMeter,
        origin: i64,
        state: &AssemblerState,
        samples_seen: u64,
        decisions_made: u64,
    ) -> Assembler {
        let mut a = Assembler::new(meter, origin);
        a.monitor.restore_counters(samples_seen, decisions_made);
        a.last_key = state.last_key;
        a.had_session = state.had_session;
        a.fresh_session = state.had_session;
        a.prev_fed = state.prev_fed;
        a.emitted = state.emitted.iter().copied().collect();
        a.poisoned = state.poisoned.iter().copied().collect();
        a.anomalies = state.anomalies;
        a
    }
}

/// The part of [`Assembler`] state that survives a collector restart
/// (see [`Assembler::export_state`] for what is excluded and why).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssemblerState {
    /// Last key received per tier.
    pub last_key: [Option<i64>; 2],
    /// Whether each tier ever had a session.
    pub had_session: [bool; 2],
    /// The window most recently fed to the monitor, if the feed is
    /// continuous.
    pub prev_fed: Option<i64>,
    /// Windows already emitted (never to be re-emitted).
    pub emitted: Vec<i64>,
    /// Windows quarantined (never to be trusted).
    pub poisoned: Vec<i64>,
    /// Protocol-order surprises counted so far.
    pub anomalies: u64,
}

pub(crate) enum Event {
    SessionStart {
        tier: TierId,
    },
    Sample {
        tier: TierId,
        ws: Box<WireSample>,
    },
    Bye {
        tier: TierId,
        last_seq: u64,
    },
    /// A session ended. `graceful` is true only when the peer said
    /// `Bye`; an abnormal end (EOF, shed, stall) quarantines the
    /// tier's in-flight window via [`Assembler::on_session_abort`].
    SessionEnd {
        tier: TierId,
        graceful: bool,
    },
    /// The overload policy dropped a connection or dial.
    Shed {
        tier: TierId,
        kind: ShedKind,
    },
    Rejected,
}

/// Handshake an accepted connection: expect `Hello`, check the dialect,
/// answer `Ack{0}` or `Reject`. Returns the agent's tier and the wire
/// codec its capabilities selected for the rest of the session.
///
/// The handshake itself is always JSON in both directions — that is what
/// lets a v2 peer read the `Reject` explaining why it was turned away.
/// Any version in `MIN_PROTO_VERSION..=PROTO_VERSION` is accepted (a v2
/// `Hello` simply carries no capabilities and defaults to the JSON
/// codec); anything outside the range is rejected with a frame carrying
/// both peers' versions so the operator can see who needs upgrading.
pub(crate) fn handshake(conn: &mut Conn, cfg: &CollectorConfig) -> io::Result<(TierId, WireCodec)> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(cfg.handshake_timeout))?;
    let hello = match read_frame(conn) {
        Ok(frame) => frame,
        Err(e) => {
            // A peer speaking bytes we cannot parse gets a Reject (it
            // may still be listening) before the connection drops; a
            // transport error gets nothing — the peer is gone.
            if e.is_corrupt() {
                let _ = write_frame(
                    conn,
                    &Frame::Reject {
                        reason: format!("malformed handshake: {e}"),
                        ours: PROTO_VERSION,
                        theirs: 0,
                    },
                );
            }
            return Err(e.into());
        }
    };
    let Frame::Hello {
        tier,
        proto_version,
        metric_schema_hash: hash,
        caps,
    } = hello
    else {
        let reason = "expected Hello".to_string();
        let _ = write_frame(
            conn,
            &Frame::Reject {
                reason: reason.clone(),
                ours: PROTO_VERSION,
                theirs: 0,
            },
        );
        return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
    };
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&proto_version) {
        let reason = format!(
            "protocol version {proto_version} outside supported \
             {MIN_PROTO_VERSION}..={PROTO_VERSION}"
        );
        let _ = write_frame(
            conn,
            &Frame::Reject {
                reason: reason.clone(),
                ours: PROTO_VERSION,
                theirs: proto_version,
            },
        );
        return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
    }
    let expected_hash = metric_schema_hash(tier);
    if hash != expected_hash {
        let reason = format!(
            "metric schema hash {hash:#018x} != {expected_hash:#018x} for {}",
            tier.label()
        );
        let _ = write_frame(
            conn,
            &Frame::Reject {
                reason: reason.clone(),
                ours: PROTO_VERSION,
                theirs: proto_version,
            },
        );
        return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
    }
    write_frame(conn, &Frame::Ack { seq: 0 })?;
    Ok((tier, caps.codec))
}

/// Why a live session ended, as the poller observed it.
enum LaneEnd {
    /// Peer said `Bye`, hit EOF, went silent past the read timeout, or
    /// sent a frame kind that has no business mid-session.
    Closed,
    /// The overload policy dropped the session; announce the shed
    /// before the (abnormal) session end.
    Shed(ShedKind),
    /// The event channel is gone: the collector run is over, stop
    /// servicing everything.
    Fatal,
}

/// One tier's live connection inside the poller: the nonblocking socket
/// plus its frame-reassembly and pending-write buffers. All buffers are
/// reused for the connection's lifetime — servicing a frame on the
/// steady path allocates nothing beyond the decoded `Frame` itself.
struct ConnState {
    conn: Conn,
    tier: TierId,
    /// Codec negotiated at handshake; acks and rejects go back in it.
    codec: WireCodec,
    /// Unparsed inbound bytes.
    rbuf: Vec<u8>,
    /// Outbound bytes the socket has not yet accepted.
    wbuf: Vec<u8>,
    /// Encode scratch for outbound frames.
    scratch: Vec<u8>,
    /// Accumulated poller sleep since this connection last produced
    /// bytes — the event-loop stand-in for a blocking read timeout.
    idle: Duration,
    /// Consecutive poll rounds spent holding a partial frame without
    /// completing one. The plain `idle` clock only accumulates while
    /// the *whole* poller sleeps, so a half-open or dribbling peer
    /// could sit mid-frame forever whenever another lane kept the loop
    /// busy; this counter accrues per round regardless and sheds the
    /// lane at [`CollectorConfig::stall_poll_budget`].
    stalled_polls: u32,
    /// The peer said `Bye`: the close that follows is graceful and must
    /// not quarantine the in-flight window.
    graceful: bool,
}

impl ConnState {
    fn new(conn: Conn, tier: TierId, codec: WireCodec) -> ConnState {
        ConnState {
            conn,
            tier,
            codec,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            scratch: Vec::new(),
            idle: Duration::ZERO,
            stalled_polls: 0,
            graceful: false,
        }
    }

    /// Encode `frame` in the session codec and queue its wire bytes.
    fn queue_frame(&mut self, frame: &Frame) -> bool {
        let Ok(magic) = encode_payload(frame, self.codec, &mut self.scratch) else {
            return false;
        };
        let Ok(len) = u32::try_from(self.scratch.len()) else {
            return false;
        };
        self.wbuf.extend_from_slice(&magic.to_le_bytes());
        self.wbuf.extend_from_slice(&len.to_le_bytes());
        self.wbuf.extend_from_slice(&self.scratch);
        true
    }

    /// Push queued bytes to the socket until it stops accepting them.
    /// `Ok(())` means "no fatal error" — bytes may remain queued.
    fn flush(&mut self) -> io::Result<()> {
        while !self.wbuf.is_empty() {
            match self.conn.write(&self.wbuf) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if is_timeout(&e) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// One tier's slot in the poller: at most one live session, plus
/// handshaken replacements waiting for the live one to finish. Sessions
/// stay serialized **per tier** — a replacement is promoted only after
/// the previous session's `SessionEnd` — so the assembler sees each
/// tier's events in connection order, exactly as the old
/// thread-per-connection reader join did.
#[derive(Default)]
struct TierLane {
    active: Option<ConnState>,
    waiting: VecDeque<(Conn, WireCodec)>,
}

/// Service one live connection: read whatever the socket has, parse and
/// dispatch every complete frame, flush pending acks. Returns how the
/// session ended, or `None` while it stays live.
fn service_conn(
    state: &mut ConnState,
    cfg: &CollectorConfig,
    tx: &mpsc::Sender<Event>,
    chunk: &mut [u8],
) -> Option<LaneEnd> {
    let mut eof = false;
    loop {
        // Overload fairness: once a full lane budget of bytes is
        // buffered unparsed, stop reading and process what we have —
        // a peer blasting faster than we drain must not starve the
        // other lanes (or grow `rbuf` without bound this round).
        if state.rbuf.len() >= cfg.max_lane_buffered_bytes {
            break;
        }
        match state.conn.read(chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                state.idle = Duration::ZERO;
                if let Some(part) = chunk.get(..n) {
                    state.rbuf.extend_from_slice(part);
                }
            }
            Err(e) if is_timeout(&e) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                eof = true;
                break;
            }
        }
    }

    // Drain every complete frame buffered so far.
    let mut extracted_any = false;
    loop {
        let frame = match try_extract_frame(&state.rbuf) {
            Ok(Some((frame, consumed))) => {
                state.rbuf.drain(..consumed);
                extracted_any = true;
                frame
            }
            Ok(None) => break,
            Err(e) => {
                // A corrupt frame earns the peer a Reject naming the
                // parse failure before the session drops.
                state.queue_frame(&Frame::Reject {
                    reason: format!("unreadable frame: {e}"),
                    ours: PROTO_VERSION,
                    theirs: 0,
                });
                return Some(LaneEnd::Closed);
            }
        };
        match frame {
            Frame::Sample(ws) => {
                let seq = ws.seq;
                if tx
                    .send(Event::Sample {
                        tier: state.tier,
                        ws: Box::new(ws),
                    })
                    .is_err()
                {
                    return Some(LaneEnd::Fatal);
                }
                state.queue_frame(&Frame::Ack { seq });
            }
            Frame::SampleBatch(batch) => {
                // A batch is exactly its samples in order: one event and
                // one ack per element, indistinguishable downstream from
                // the same samples sent one frame each.
                for ws in batch {
                    let seq = ws.seq;
                    if tx
                        .send(Event::Sample {
                            tier: state.tier,
                            ws: Box::new(ws),
                        })
                        .is_err()
                    {
                        return Some(LaneEnd::Fatal);
                    }
                    state.queue_frame(&Frame::Ack { seq });
                }
            }
            Frame::Heartbeat { seq } => {
                state.queue_frame(&Frame::Ack { seq });
            }
            Frame::Bye { last_seq } => {
                state.graceful = true;
                let _ = tx.send(Event::Bye {
                    tier: state.tier,
                    last_seq,
                });
                return Some(LaneEnd::Closed);
            }
            _ => return Some(LaneEnd::Closed),
        }
    }

    // Stall accounting: a lane holding a partial frame that completed
    // nothing this round is mid-frame stalled — whether the peer is
    // half-open (silent after a partial header) or dribbling bytes to
    // dodge the idle clock. Unlike `idle`, this counter accrues every
    // service round even while other lanes keep the poller busy.
    if extracted_any || state.rbuf.is_empty() {
        state.stalled_polls = 0;
    } else {
        state.stalled_polls = state.stalled_polls.saturating_add(1);
        if state.stalled_polls >= cfg.stall_poll_budget {
            state.queue_frame(&Frame::Reject {
                reason: format!(
                    "overload: mid-frame stall past {} poll rounds",
                    cfg.stall_poll_budget
                ),
                ours: PROTO_VERSION,
                theirs: 0,
            });
            let _ = state.flush();
            return Some(LaneEnd::Shed(ShedKind::StalledFrame));
        }
    }

    if state.flush().is_err() {
        return Some(LaneEnd::Closed);
    }
    // A peer that writes but never reads grows `wbuf` without bound; a
    // full lane budget of unacknowledged outbound bytes is a shed, not
    // a block — the collector never waits on a hostile socket.
    if state.wbuf.len() > cfg.max_lane_buffered_bytes {
        return Some(LaneEnd::Shed(ShedKind::WriteBacklog));
    }
    if eof || state.idle >= cfg.read_timeout {
        return Some(LaneEnd::Closed);
    }
    None
}

/// Accept loop: a single poller thread owning every connection.
/// Handshakes run synchronously on accept (they are short and bounded by
/// `handshake_timeout`); established sessions switch to nonblocking
/// sockets serviced round-robin with buffered acks, replacing the old
/// thread-per-connection blocking readers while keeping the per-tier
/// event order they produced.
pub(crate) fn accept_loop(
    listener: Listener,
    cfg: CollectorConfig,
    tx: mpsc::Sender<Event>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = listener.set_nonblocking(true);
    let mut lanes: [TierLane; 2] = [TierLane::default(), TierLane::default()];
    let mut chunk = vec![0u8; 16 * 1024];
    let poll_sleep = Duration::from_millis(1);

    'poll: while !shutdown.load(Ordering::Relaxed) {
        // Phase 1: accept and handshake every waiting connection.
        loop {
            let mut conn = match listener.accept() {
                Ok(c) => c,
                Err(e) if is_timeout(&e) => break,
                Err(_) => break 'poll,
            };
            match handshake(&mut conn, &cfg) {
                Ok((tier, codec)) => {
                    if conn.set_nonblocking(true).is_err() {
                        let _ = conn.shutdown();
                        continue;
                    }
                    let Some(lane) = lanes.get_mut(tier.index()) else {
                        let _ = conn.shutdown();
                        continue;
                    };
                    if lane.waiting.len() >= cfg.max_waiting_conns {
                        // Redial storm: shed the newest dial instead of
                        // growing the queue. The peer sees a clean close
                        // and retries on its own backoff schedule.
                        let _ = conn.shutdown();
                        if tx
                            .send(Event::Shed {
                                tier,
                                kind: ShedKind::DialBacklog,
                            })
                            .is_err()
                        {
                            break 'poll;
                        }
                        continue;
                    }
                    lane.waiting.push_back((conn, codec));
                }
                Err(_) => {
                    let _ = tx.send(Event::Rejected);
                    let _ = conn.shutdown();
                }
            }
        }

        // Phase 2: service live sessions and promote replacements.
        let mut progressed = false;
        for (lane, tier) in lanes.iter_mut().zip(TierId::ALL) {
            if let Some(state) = lane.active.as_mut() {
                let end = service_conn(state, &cfg, &tx, &mut chunk);
                match end {
                    None => {}
                    Some(LaneEnd::Fatal) => break 'poll,
                    Some(LaneEnd::Closed) | Some(LaneEnd::Shed(_)) => {
                        // A shed is announced before the session end so
                        // the supervisor sees the overload cause first;
                        // a shed close is never graceful — the assembler
                        // quarantines the lane's in-flight window.
                        if let Some(LaneEnd::Shed(kind)) = end {
                            if tx.send(Event::Shed { tier, kind }).is_err() {
                                break 'poll;
                            }
                        }
                        let mut state = lane.active.take();
                        if let Some(state) = state.as_mut() {
                            let _ = state.flush();
                            let _ = state.conn.shutdown();
                            if tx
                                .send(Event::SessionEnd {
                                    tier: state.tier,
                                    graceful: state.graceful,
                                })
                                .is_err()
                            {
                                break 'poll;
                            }
                        }
                        progressed = true;
                    }
                }
            }
            if lane.active.is_none() {
                if let Some((conn, codec)) = lane.waiting.pop_front() {
                    if tx.send(Event::SessionStart { tier }).is_err() {
                        break 'poll;
                    }
                    lane.active = Some(ConnState::new(conn, tier, codec));
                    progressed = true;
                }
            }
        }

        if !progressed {
            std::thread::sleep(poll_sleep);
            for lane in lanes.iter_mut() {
                if let Some(state) = lane.active.as_mut() {
                    state.idle += poll_sleep;
                }
            }
        }
    }

    // Teardown: flush and close whatever is still connected so peers see
    // a clean shutdown, announcing each end (best effort — the channel
    // may already be gone).
    for lane in lanes.iter_mut() {
        if let Some(mut state) = lane.active.take() {
            let _ = state.flush();
            let _ = state.conn.shutdown();
            let _ = tx.send(Event::SessionEnd {
                tier: state.tier,
                graceful: state.graceful,
            });
        }
        while let Some((conn, _)) = lane.waiting.pop_front() {
            let _ = conn.shutdown();
        }
    }
}

/// Run the collector on a bound listener until every expected tier says
/// `Bye` (or the idle timeout passes with no live session). Each
/// emitted decision is also streamed to `on_decision` as it happens.
pub fn run_collector(
    listener: Listener,
    meter: CapacityMeter,
    cfg: &CollectorConfig,
    mut on_decision: impl FnMut(i64, &OnlineDecision),
) -> io::Result<CollectorReport> {
    let (tx, rx) = mpsc::channel();
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_handle = {
        let cfg = cfg.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, cfg, tx, shutdown))
    };

    let mut assembler = Assembler::new(meter, cfg.window_origin);
    let mut decisions: Vec<(i64, OnlineDecision)> = Vec::new();
    let mut sessions = [0u64; 2];
    let mut samples = [0u64; 2];
    let mut rejected = 0u64;
    let mut sheds: Vec<(TierId, ShedKind)> = Vec::new();
    let mut byes: BTreeSet<usize> = BTreeSet::new();
    let mut active: i64 = 0;

    loop {
        match rx.recv_timeout(cfg.idle_timeout) {
            Ok(Event::SessionStart { tier }) => {
                active += 1;
                *tier.select_mut(&mut sessions) += 1;
                assembler.on_session_start(tier);
            }
            Ok(Event::Sample { tier, ws }) => {
                *tier.select_mut(&mut samples) += 1;
                assembler.on_sample(tier, *ws, &mut |w, d| {
                    decisions.push((w, d.clone()));
                    on_decision(w, d);
                });
            }
            Ok(Event::Bye { tier, last_seq }) => {
                assembler.on_bye(tier, last_seq);
                byes.insert(tier.index());
                if byes.len() >= cfg.expected_tiers {
                    break;
                }
            }
            Ok(Event::SessionEnd { tier, graceful }) => {
                active -= 1;
                if !graceful {
                    assembler.on_session_abort(tier);
                }
            }
            Ok(Event::Shed { tier, kind }) => {
                sheds.push((tier, kind));
            }
            Ok(Event::Rejected) => {
                rejected += 1;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if active <= 0 {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    shutdown.store(true, Ordering::Relaxed);
    let _ = accept_handle.join();

    Ok(CollectorReport {
        poisoned_windows: assembler.poisoned_windows(),
        pending_windows: assembler.pending_windows(),
        anomalies: assembler.anomalies(),
        decisions,
        sessions,
        samples,
        rejected_handshakes: rejected,
        sheds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcap_core::MeterConfig;
    use webcap_sim::TierSample;

    fn tiny_assembler(window_len: usize) -> Assembler {
        // One shared trained meter (training is seconds, cloning is
        // cheap); every test here uses the default 30-sample window.
        static METER: std::sync::OnceLock<CapacityMeter> = std::sync::OnceLock::new();
        let meter = METER
            .get_or_init(|| {
                CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("test meter trains")
            })
            .clone();
        assert_eq!(meter.config().window_len, window_len, "shared test meter");
        Assembler::new(meter, 1)
    }

    fn wire(seq: u64, with_app: bool) -> WireSample {
        WireSample {
            seq,
            t_s: seq as f64 + 1.0,
            interval_s: 1.0,
            tier: TierSample {
                utilization: 0.3,
                delivered_work_s: 0.3,
                arrivals: 20,
                completions: 20,
                ..TierSample::default()
            },
            hpc: vec![0.5; 12],
            os: vec![0.1; 64],
            app: with_app.then(|| crate::frame::AppStats {
                ebs_target: 10,
                ebs_active: 10,
                mix_id: webcap_tpcw::MixId::Ordering,
                issued: 20,
                issued_browse: 10,
                completed: 20,
                completed_browse: 10,
                response_time_sum_s: 2.0,
                response_time_max_s: 0.4,
                in_flight: 1,
                response_times: webcap_sim::RtHistogram::new(),
            }),
        }
    }

    #[test]
    fn window_math_is_origin_anchored() {
        let a = tiny_assembler(30);
        assert_eq!(a.window_of(1), 0);
        assert_eq!(a.window_of(30), 0);
        assert_eq!(a.window_of(31), 1);
        assert_eq!(a.first_key(1), 31);
        assert_eq!(a.last_key_of(1), 60);
    }

    #[test]
    fn complete_windows_emit_and_gaps_poison() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        // Window 0 complete on both tiers; window 1 has a one-frame gap
        // on the DB tier (seq 35 dropped); window 2 complete again.
        for seq in 0..90u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            if seq != 35 {
                a.on_sample(TierId::Db, wire(seq, false), &mut sink);
            }
        }
        a.on_bye(TierId::App, 89);
        a.on_bye(TierId::Db, 89);
        assert_eq!(emitted, vec![0, 2]);
        assert_eq!(a.poisoned_windows(), vec![1]);
        assert_eq!(a.pending_windows(), Vec::<i64>::new());
        assert_eq!(a.anomalies(), 0);
    }

    #[test]
    fn reconnect_mid_window_poisons_the_straddled_window() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        for seq in 0..90u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            if seq == 40 {
                // The APP agent reconnects between seq 39 and 40 — both
                // inside window 1 — losing nothing, but the session
                // boundary still quarantines the straddled window.
                a.on_session_start(TierId::App);
            }
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        a.on_bye(TierId::App, 89);
        a.on_bye(TierId::Db, 89);
        assert_eq!(emitted, vec![0, 2]);
        assert_eq!(a.poisoned_windows(), vec![1]);
    }

    #[test]
    fn reconnect_on_a_window_boundary_poisons_nothing() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        for seq in 0..60u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            if seq == 30 {
                // Clean break exactly between windows 0 and 1.
                a.on_session_start(TierId::Db);
            }
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert_eq!(emitted, vec![0, 1]);
        assert!(a.poisoned_windows().is_empty());
    }

    #[test]
    fn trailing_loss_is_detected_at_bye() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        // DB tier's last two frames (seqs 58, 59) never arrive; its Bye
        // announces last_seq 59, exposing the trailing gap.
        for seq in 0..60u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            if seq < 58 {
                a.on_sample(TierId::Db, wire(seq, false), &mut sink);
            }
        }
        a.on_bye(TierId::App, 59);
        a.on_bye(TierId::Db, 59);
        assert_eq!(emitted, vec![0]);
        assert_eq!(a.poisoned_windows(), vec![1]);
    }

    #[test]
    fn leading_loss_poisons_the_first_window() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        // The APP tier's very first frame went missing.
        for seq in 0..60u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            if seq != 0 {
                a.on_sample(TierId::App, wire(seq, true), &mut sink);
            }
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert_eq!(emitted, vec![1]);
        assert_eq!(a.poisoned_windows(), vec![0]);
    }

    #[test]
    fn boundary_resume_replays_byte_identically() {
        // Uninterrupted run over two windows...
        let mut full = tiny_assembler(30);
        let mut full_decisions = Vec::new();
        full.on_session_start(TierId::App);
        full.on_session_start(TierId::Db);
        for seq in 0..60u64 {
            let mut sink = |w: i64, d: &OnlineDecision| {
                full_decisions.push((w, serde_json::to_string(d).unwrap()));
            };
            full.on_sample(TierId::App, wire(seq, true), &mut sink);
            full.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        // ...versus a crash exactly at the window-0 boundary.
        let mut first = tiny_assembler(30);
        let mut resumed_decisions = Vec::new();
        first.on_session_start(TierId::App);
        first.on_session_start(TierId::Db);
        for seq in 0..30u64 {
            let mut sink = |w: i64, d: &OnlineDecision| {
                resumed_decisions.push((w, serde_json::to_string(d).unwrap()));
            };
            first.on_sample(TierId::App, wire(seq, true), &mut sink);
            first.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        let state = first.export_state();
        let (seen, made) = first.monitor_counters();
        let meter = first.meter().clone();
        let mut second = Assembler::resume(meter, 1, &state, seen, made);
        // Restart means both agents reconnect.
        second.on_session_start(TierId::App);
        second.on_session_start(TierId::Db);
        for seq in 30..60u64 {
            let mut sink = |w: i64, d: &OnlineDecision| {
                resumed_decisions.push((w, serde_json::to_string(d).unwrap()));
            };
            second.on_sample(TierId::App, wire(seq, true), &mut sink);
            second.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert_eq!(full_decisions, resumed_decisions);
        assert!(second.poisoned_windows().is_empty());
        let (seen2, made2) = second.monitor_counters();
        assert_eq!((seen2, made2), (60, 2), "counters are cumulative");
    }

    #[test]
    fn mid_window_resume_quarantines_the_cut_window() {
        let mut first = tiny_assembler(30);
        let mut emitted = Vec::new();
        first.on_session_start(TierId::App);
        first.on_session_start(TierId::Db);
        // Crash mid-window-1 (after seq 44).
        for seq in 0..45u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            first.on_sample(TierId::App, wire(seq, true), &mut sink);
            first.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        let state = first.export_state();
        let (seen, made) = first.monitor_counters();
        let mut second = Assembler::resume(first.meter().clone(), 1, &state, seen, made);
        second.on_session_start(TierId::App);
        second.on_session_start(TierId::Db);
        for seq in 45..90u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            second.on_sample(TierId::App, wire(seq, true), &mut sink);
            second.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        second.on_bye(TierId::App, 89);
        second.on_bye(TierId::Db, 89);
        assert_eq!(emitted, vec![0, 2], "cut window 1 never emits");
        assert_eq!(second.poisoned_windows(), vec![1]);
    }

    #[test]
    fn app_sample_without_front_end_stats_poisons_not_panics() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        for seq in 0..30u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            // Protocol violation: app tier omits AppStats.
            a.on_sample(TierId::App, wire(seq, false), &mut sink);
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert!(emitted.is_empty());
        assert_eq!(a.poisoned_windows(), vec![0]);
        assert!(a.anomalies() > 0);
    }
}
