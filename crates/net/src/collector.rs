//! The front-end collector: accept one connection per tier, reassemble
//! per-second [`SystemSample`]s by timestamp alignment, quarantine any
//! window touched by loss or reconnection, and feed the surviving
//! windows to the online meter.
//!
//! # Gap semantics
//!
//! The collector **never averages over holes**. Aggregation windows are
//! fixed spans of `window_len` consecutive second-keys (`key =
//! round(t_s)`), anchored at `window_origin`; window `w` covers keys
//! `origin + w·len ..= origin + (w+1)·len − 1`. A window is *poisoned* —
//! permanently excluded from prediction — when:
//!
//! * **a sequence gap** on either tier skips keys: every window
//!   containing a missing key is poisoned (detected the moment the
//!   first post-gap sample arrives, and at `Bye` for trailing loss);
//! * **a reconnection** straddles it: the window holding the last
//!   pre-disconnect key (unless that key ends its window) and the
//!   window holding the first post-reconnect key (unless that key
//!   starts its window) are poisoned, so no emitted window ever mixes
//!   two sessions mid-stream.
//!
//! Because each tier's frames arrive in order on one connection and a
//! window only completes when *both* tiers have delivered *all* of its
//! keys, every poisoning event for a window is observed before the
//! window could complete — a window is never un-emitted. The emitted
//! decision stream is therefore a pure function of the two per-tier
//! frame sequences, which is what lets the fault-injection test demand
//! byte-identical JSON against an in-process replay.
//!
//! On any discontinuity the partial-window state is discarded via
//! [`OnlineMonitor::reset`]: the monitor is reset before feeding window
//! `w` unless `w − 1` was the previously fed window.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use webcap_core::{CapacityMeter, OnlineDecision, OnlineMonitor};
use webcap_sim::TierId;

use crate::frame::{metric_schema_hash, read_frame, write_frame, Frame, WireSample, PROTO_VERSION};
use crate::transport::{is_timeout, Conn, Listener};

/// Collector runtime configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Second-key of the first sample of the deployment's stream
    /// (`round(t_s)` of sequence 0); anchors window boundaries. The
    /// simulator's first per-second sample ends at `t = 1 s`.
    pub window_origin: i64,
    /// Read timeout for the handshake `Hello`.
    pub handshake_timeout: Duration,
    /// Per-connection read timeout; a session silent for longer (no
    /// samples, no heartbeats) is dropped.
    pub read_timeout: Duration,
    /// Stop when no events arrive for this long and no session is
    /// active.
    pub idle_timeout: Duration,
    /// Number of distinct tiers expected to say `Bye` before the
    /// collector concludes the run.
    pub expected_tiers: usize,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            window_origin: 1,
            handshake_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(10),
            expected_tiers: 2,
        }
    }
}

/// End-of-run account of what the collector saw and decided.
#[derive(Debug, Clone)]
pub struct CollectorReport {
    /// Emitted decisions, in window order.
    pub decisions: Vec<(i64, OnlineDecision)>,
    /// Windows quarantined by gaps or reconnections.
    pub poisoned_windows: Vec<i64>,
    /// Windows still partially buffered at shutdown (incomplete, never
    /// emitted).
    pub pending_windows: Vec<i64>,
    /// Sessions accepted per tier (reconnects show up here).
    pub sessions: [u64; 2],
    /// Sample frames received per tier.
    pub samples: [u64; 2],
    /// Connections refused at handshake (version/schema mismatch).
    pub rejected_handshakes: u64,
    /// Protocol-order surprises survived (duplicate keys, data for
    /// finalized windows); nonzero values indicate a misbehaving agent.
    pub anomalies: u64,
}

/// The pure reassembly state machine, single-threaded and fully
/// deterministic — the socketed [`run_collector`] drives it, and unit
/// tests drive it directly.
#[derive(Debug)]
pub struct Assembler {
    monitor: OnlineMonitor,
    window_len: i64,
    origin: i64,
    /// key → per-tier sample, for windows still being joined.
    pending: BTreeMap<i64, [Option<WireSample>; 2]>,
    /// window → count of keys with both tiers present.
    joined: BTreeMap<i64, i64>,
    poisoned: BTreeSet<i64>,
    last_key: [Option<i64>; 2],
    fresh_session: [bool; 2],
    had_session: [bool; 2],
    prev_fed: Option<i64>,
    emitted: BTreeSet<i64>,
    anomalies: u64,
    /// Reusable pair buffer for [`Assembler::emit`]: one allocation for
    /// the whole run instead of one per emitted window.
    scratch: Vec<(WireSample, WireSample)>,
}

impl Assembler {
    /// Wrap a trained meter; `origin` is the key of the stream's first
    /// sample (see [`CollectorConfig::window_origin`]).
    pub fn new(meter: CapacityMeter, origin: i64) -> Assembler {
        let window_len = meter.config().window_len as i64;
        Assembler {
            // The monitor seed is irrelevant on the collected-metrics
            // path (agents synthesize); zero by convention.
            monitor: OnlineMonitor::new(meter, 0),
            window_len,
            origin,
            pending: BTreeMap::new(),
            joined: BTreeMap::new(),
            poisoned: BTreeSet::new(),
            last_key: [None, None],
            fresh_session: [false, false],
            had_session: [false, false],
            prev_fed: None,
            emitted: BTreeSet::new(),
            anomalies: 0,
            scratch: Vec::with_capacity(window_len.max(0) as usize),
        }
    }

    /// Window index holding `key`.
    pub fn window_of(&self, key: i64) -> i64 {
        (key - self.origin).div_euclid(self.window_len)
    }

    fn first_key(&self, window: i64) -> i64 {
        self.origin + window * self.window_len
    }

    fn last_key_of(&self, window: i64) -> i64 {
        self.first_key(window) + self.window_len - 1
    }

    /// Note a (re)connection on `tier`. The first session is just the
    /// stream starting; later ones arm the straddle-poisoning rules,
    /// applied when the session's first sample shows where the
    /// discontinuity fell.
    pub fn on_session_start(&mut self, tier: TierId) {
        let t = tier.index();
        if self.had_session[t] {
            self.fresh_session[t] = true;
        } else {
            self.had_session[t] = true;
        }
    }

    fn poison(&mut self, window: i64) {
        if window < 0 || self.emitted.contains(&window) {
            // Emitted-then-poisoned cannot happen for ordered per-tier
            // streams (see module docs); count it rather than trust it.
            self.anomalies += 1;
            return;
        }
        if self.poisoned.insert(window) {
            let keys: Vec<i64> = self
                .pending
                .range(self.first_key(window)..=self.last_key_of(window))
                .map(|(k, _)| *k)
                .collect();
            for k in keys {
                self.pending.remove(&k);
            }
            self.joined.remove(&window);
        }
    }

    /// Feed one received sample; emitted decisions go to `sink`.
    pub fn on_sample(
        &mut self,
        tier: TierId,
        ws: WireSample,
        sink: &mut dyn FnMut(i64, &OnlineDecision),
    ) {
        let t = tier.index();
        let key = ws.t_s.round() as i64;

        if self.fresh_session[t] {
            self.fresh_session[t] = false;
            if let Some(k_old) = self.last_key[t] {
                if k_old != self.last_key_of(self.window_of(k_old)) {
                    self.poison(self.window_of(k_old));
                }
            }
            if key != self.first_key(self.window_of(key)) {
                self.poison(self.window_of(key));
            }
        }

        let expected = self.last_key[t].map_or(self.origin, |l| l + 1);
        if key < expected {
            // Duplicate or out-of-order: impossible on one ordered
            // stream, so never silently fold it into an aggregate.
            self.anomalies += 1;
            return;
        }
        if key > expected {
            for w in self.window_of(expected)..=self.window_of(key - 1) {
                self.poison(w);
            }
        }
        self.last_key[t] = Some(key);

        let window = self.window_of(key);
        if self.poisoned.contains(&window) {
            return;
        }
        let entry = self.pending.entry(key).or_default();
        if entry[t].is_some() {
            self.anomalies += 1;
            return;
        }
        entry[t] = Some(ws);
        if entry.iter().all(Option::is_some) {
            let joined = self.joined.entry(window).or_insert(0);
            *joined += 1;
            if *joined == self.window_len {
                self.emit(window, sink);
            }
        }
    }

    /// A tier finished cleanly, announcing its final sequence; detect
    /// trailing loss (frames dropped after the last one we received).
    pub fn on_bye(&mut self, tier: TierId, last_seq: u64) {
        let t = tier.index();
        let final_key = self.origin + last_seq as i64;
        let expected = self.last_key[t].map_or(self.origin, |l| l + 1);
        if final_key >= expected {
            for w in self.window_of(expected)..=self.window_of(final_key) {
                self.poison(w);
            }
            self.last_key[t] = Some(final_key);
        }
    }

    fn emit(&mut self, window: i64, sink: &mut dyn FnMut(i64, &OnlineDecision)) {
        // Collect the window's joined pairs first: a protocol violation
        // (app-tier sample without front-end stats) must poison the
        // window *before* anything is fed to the monitor. The pair
        // buffer is taken from (and handed back to) `scratch`, so its
        // allocation is reused across windows.
        let mut pairs = std::mem::take(&mut self.scratch);
        pairs.clear();
        let mut complete = true;
        for key in self.first_key(window)..=self.last_key_of(window) {
            match self.pending.remove(&key) {
                Some([Some(app), Some(db)]) if app.app.is_some() => pairs.push((app, db)),
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            self.anomalies += 1;
            self.poison(window);
            pairs.clear();
            self.scratch = pairs;
            return;
        }
        self.joined.remove(&window);

        // Partial-window / stale-history reset on any discontinuity.
        if self.prev_fed != Some(window - 1) {
            self.monitor.reset();
        }
        let mut decision = None;
        for (app, db) in pairs.drain(..) {
            // `complete` already verified every app sample carries
            // stats, but stay panic-free: treat a miss as the protocol
            // violation it is. (Draining on break still empties the
            // buffer — `drain`'s drop removes the whole range.)
            let Some(stats) = app.app else {
                decision = None;
                break;
            };
            let sample = stats.into_sample(app.t_s, app.interval_s, app.tier, db.tier);
            decision = self
                .monitor
                .push_collected(sample, [app.hpc, db.hpc], [app.os, db.os]);
        }
        pairs.clear();
        self.scratch = pairs;
        // `window_len` samples complete a window, so the monitor must
        // have produced a decision; if it somehow did not, quarantine
        // the window rather than panic the collector.
        let Some(decision) = decision else {
            self.anomalies += 1;
            self.monitor.reset();
            self.prev_fed = None;
            self.poison(window);
            return;
        };
        self.prev_fed = Some(window);
        self.emitted.insert(window);
        sink(window, &decision);
    }

    /// Windows quarantined so far.
    pub fn poisoned_windows(&self) -> Vec<i64> {
        self.poisoned.iter().copied().collect()
    }

    /// Windows with partial data still buffered.
    pub fn pending_windows(&self) -> Vec<i64> {
        let mut out = BTreeSet::new();
        for key in self.pending.keys() {
            out.insert(self.window_of(*key));
        }
        out.into_iter().collect()
    }

    /// Protocol-order surprises counted.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// The wrapped monitor's lifetime counters `(samples_seen,
    /// decisions_made)` — what a snapshot persists.
    pub fn monitor_counters(&self) -> (u64, u64) {
        (self.monitor.samples_seen(), self.monitor.decisions_made())
    }

    /// The trained meter inside the monitor (read-only, for
    /// snapshotting).
    pub fn meter(&self) -> &CapacityMeter {
        self.monitor.meter()
    }

    /// Capture the boundary-persistent reassembly state for a snapshot.
    ///
    /// Partial-window buffers (`pending`, `joined`) are deliberately
    /// *not* captured: a snapshot is only ever restored across a process
    /// boundary, where every agent reconnects, and the straddle-
    /// poisoning rules already quarantine any window cut by that
    /// discontinuity — exactly as they do for a mid-run reconnect. What
    /// must survive is the per-tier stream position (`last_key`,
    /// `had_session`), the monitor-feed continuity marker (`prev_fed`),
    /// and the emitted/poisoned ledgers that keep a restarted collector
    /// from re-emitting or un-poisoning a window.
    pub fn export_state(&self) -> AssemblerState {
        AssemblerState {
            last_key: self.last_key,
            had_session: self.had_session,
            prev_fed: self.prev_fed,
            emitted: self.emitted.iter().copied().collect(),
            poisoned: self.poisoned.iter().copied().collect(),
            anomalies: self.anomalies,
        }
    }

    /// Rebuild an assembler from a snapshot: a fresh assembler around
    /// the persisted meter, with the boundary state restored and every
    /// tier that had a session marked `fresh_session` — so each tier's
    /// first post-restart sample runs the same straddle-poisoning rules
    /// as a mid-run reconnect. A restart at a window boundary therefore
    /// continues byte-identically; a restart mid-window quarantines
    /// exactly the cut windows.
    pub fn resume(
        meter: CapacityMeter,
        origin: i64,
        state: &AssemblerState,
        samples_seen: u64,
        decisions_made: u64,
    ) -> Assembler {
        let mut a = Assembler::new(meter, origin);
        a.monitor.restore_counters(samples_seen, decisions_made);
        a.last_key = state.last_key;
        a.had_session = state.had_session;
        a.fresh_session = state.had_session;
        a.prev_fed = state.prev_fed;
        a.emitted = state.emitted.iter().copied().collect();
        a.poisoned = state.poisoned.iter().copied().collect();
        a.anomalies = state.anomalies;
        a
    }
}

/// The part of [`Assembler`] state that survives a collector restart
/// (see [`Assembler::export_state`] for what is excluded and why).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssemblerState {
    /// Last key received per tier.
    pub last_key: [Option<i64>; 2],
    /// Whether each tier ever had a session.
    pub had_session: [bool; 2],
    /// The window most recently fed to the monitor, if the feed is
    /// continuous.
    pub prev_fed: Option<i64>,
    /// Windows already emitted (never to be re-emitted).
    pub emitted: Vec<i64>,
    /// Windows quarantined (never to be trusted).
    pub poisoned: Vec<i64>,
    /// Protocol-order surprises counted so far.
    pub anomalies: u64,
}

pub(crate) enum Event {
    SessionStart { tier: TierId },
    Sample { tier: TierId, ws: Box<WireSample> },
    Bye { tier: TierId, last_seq: u64 },
    SessionEnd { tier: TierId },
    Rejected,
}

/// Handshake an accepted connection: expect `Hello`, check the dialect,
/// answer `Ack{0}` or `Reject`. Returns the agent's tier.
pub(crate) fn handshake(conn: &mut Conn, cfg: &CollectorConfig) -> io::Result<TierId> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(cfg.handshake_timeout))?;
    let hello = match read_frame(conn) {
        Ok(frame) => frame,
        Err(e) => {
            // A peer speaking bytes we cannot parse gets a Reject (it
            // may still be listening) before the connection drops; a
            // transport error gets nothing — the peer is gone.
            if e.is_corrupt() {
                let _ = write_frame(
                    conn,
                    &Frame::Reject {
                        reason: format!("malformed handshake: {e}"),
                    },
                );
            }
            return Err(e.into());
        }
    };
    let Frame::Hello {
        tier,
        proto_version,
        metric_schema_hash: hash,
    } = hello
    else {
        let reason = "expected Hello".to_string();
        let _ = write_frame(
            conn,
            &Frame::Reject {
                reason: reason.clone(),
            },
        );
        return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
    };
    if proto_version != PROTO_VERSION {
        let reason = format!("protocol version {proto_version} != {PROTO_VERSION}");
        let _ = write_frame(
            conn,
            &Frame::Reject {
                reason: reason.clone(),
            },
        );
        return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
    }
    let expected_hash = metric_schema_hash(tier);
    if hash != expected_hash {
        let reason = format!(
            "metric schema hash {hash:#018x} != {expected_hash:#018x} for {}",
            tier.label()
        );
        let _ = write_frame(
            conn,
            &Frame::Reject {
                reason: reason.clone(),
            },
        );
        return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
    }
    write_frame(conn, &Frame::Ack { seq: 0 })?;
    Ok(tier)
}

/// Per-connection reader: forward samples (acking each) until the
/// session dies or says `Bye`.
pub(crate) fn reader_loop(
    mut conn: Conn,
    tier: TierId,
    cfg: &CollectorConfig,
    tx: &mpsc::Sender<Event>,
) {
    let _ = conn.set_read_timeout(Some(cfg.read_timeout));
    loop {
        match read_frame(&mut conn) {
            Ok(Frame::Sample(ws)) => {
                let seq = ws.seq;
                if tx
                    .send(Event::Sample {
                        tier,
                        ws: Box::new(ws),
                    })
                    .is_err()
                    || write_frame(&mut conn, &Frame::Ack { seq }).is_err()
                {
                    break;
                }
            }
            Ok(Frame::Heartbeat { seq }) => {
                if write_frame(&mut conn, &Frame::Ack { seq }).is_err() {
                    break;
                }
            }
            Ok(Frame::Bye { last_seq }) => {
                let _ = tx.send(Event::Bye { tier, last_seq });
                break;
            }
            Ok(_) => break,
            Err(e) => {
                // A corrupt frame earns the peer a Reject naming the
                // parse failure before the session drops; a transport
                // error (timeout included — a live idle agent
                // heartbeats well inside it) means the session is dead.
                if e.is_corrupt() {
                    let _ = write_frame(
                        &mut conn,
                        &Frame::Reject {
                            reason: format!("unreadable frame: {e}"),
                        },
                    );
                }
                break;
            }
        }
    }
    let _ = conn.shutdown();
    let _ = tx.send(Event::SessionEnd { tier });
}

/// Accept loop: handshake each connection and hand it a reader thread.
/// Readers are serialized **per tier** — the previous session's reader
/// is joined before the replacement starts — so the assembler sees each
/// tier's events in connection order.
pub(crate) fn accept_loop(
    listener: Listener,
    cfg: CollectorConfig,
    tx: mpsc::Sender<Event>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = listener.set_nonblocking(true);
    let mut readers: [Option<std::thread::JoinHandle<()>>; 2] = [None, None];
    while !shutdown.load(Ordering::Relaxed) {
        let mut conn = match listener.accept() {
            Ok(c) => c,
            Err(e) if is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(_) => break,
        };
        let tier = match handshake(&mut conn, &cfg) {
            Ok(t) => t,
            Err(_) => {
                let _ = tx.send(Event::Rejected);
                let _ = conn.shutdown();
                continue;
            }
        };
        if let Some(old) = readers[tier.index()].take() {
            let _ = old.join();
        }
        if tx.send(Event::SessionStart { tier }).is_err() {
            break;
        }
        let tx_reader = tx.clone();
        let cfg_reader = cfg.clone();
        readers[tier.index()] = Some(std::thread::spawn(move || {
            reader_loop(conn, tier, &cfg_reader, &tx_reader);
        }));
    }
    for r in readers.iter_mut() {
        if let Some(h) = r.take() {
            let _ = h.join();
        }
    }
}

/// Run the collector on a bound listener until every expected tier says
/// `Bye` (or the idle timeout passes with no live session). Each
/// emitted decision is also streamed to `on_decision` as it happens.
pub fn run_collector(
    listener: Listener,
    meter: CapacityMeter,
    cfg: &CollectorConfig,
    mut on_decision: impl FnMut(i64, &OnlineDecision),
) -> io::Result<CollectorReport> {
    let (tx, rx) = mpsc::channel();
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_handle = {
        let cfg = cfg.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || accept_loop(listener, cfg, tx, shutdown))
    };

    let mut assembler = Assembler::new(meter, cfg.window_origin);
    let mut decisions: Vec<(i64, OnlineDecision)> = Vec::new();
    let mut sessions = [0u64; 2];
    let mut samples = [0u64; 2];
    let mut rejected = 0u64;
    let mut byes: BTreeSet<usize> = BTreeSet::new();
    let mut active: i64 = 0;

    loop {
        match rx.recv_timeout(cfg.idle_timeout) {
            Ok(Event::SessionStart { tier }) => {
                active += 1;
                sessions[tier.index()] += 1;
                assembler.on_session_start(tier);
            }
            Ok(Event::Sample { tier, ws }) => {
                samples[tier.index()] += 1;
                assembler.on_sample(tier, *ws, &mut |w, d| {
                    decisions.push((w, d.clone()));
                    on_decision(w, d);
                });
            }
            Ok(Event::Bye { tier, last_seq }) => {
                assembler.on_bye(tier, last_seq);
                byes.insert(tier.index());
                if byes.len() >= cfg.expected_tiers {
                    break;
                }
            }
            Ok(Event::SessionEnd { .. }) => {
                active -= 1;
            }
            Ok(Event::Rejected) => {
                rejected += 1;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if active <= 0 {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    shutdown.store(true, Ordering::Relaxed);
    let _ = accept_handle.join();

    Ok(CollectorReport {
        poisoned_windows: assembler.poisoned_windows(),
        pending_windows: assembler.pending_windows(),
        anomalies: assembler.anomalies(),
        decisions,
        sessions,
        samples,
        rejected_handshakes: rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webcap_core::MeterConfig;
    use webcap_sim::TierSample;

    fn tiny_assembler(window_len: usize) -> Assembler {
        // One shared trained meter (training is seconds, cloning is
        // cheap); every test here uses the default 30-sample window.
        static METER: std::sync::OnceLock<CapacityMeter> = std::sync::OnceLock::new();
        let meter = METER
            .get_or_init(|| {
                CapacityMeter::train(&MeterConfig::small_for_tests(31)).expect("test meter trains")
            })
            .clone();
        assert_eq!(meter.config().window_len, window_len, "shared test meter");
        Assembler::new(meter, 1)
    }

    fn wire(seq: u64, with_app: bool) -> WireSample {
        WireSample {
            seq,
            t_s: seq as f64 + 1.0,
            interval_s: 1.0,
            tier: TierSample {
                utilization: 0.3,
                delivered_work_s: 0.3,
                arrivals: 20,
                completions: 20,
                ..TierSample::default()
            },
            hpc: vec![0.5; 12],
            os: vec![0.1; 64],
            app: with_app.then(|| crate::frame::AppStats {
                ebs_target: 10,
                ebs_active: 10,
                mix_id: webcap_tpcw::MixId::Ordering,
                issued: 20,
                issued_browse: 10,
                completed: 20,
                completed_browse: 10,
                response_time_sum_s: 2.0,
                response_time_max_s: 0.4,
                in_flight: 1,
                response_times: webcap_sim::RtHistogram::new(),
            }),
        }
    }

    #[test]
    fn window_math_is_origin_anchored() {
        let a = tiny_assembler(30);
        assert_eq!(a.window_of(1), 0);
        assert_eq!(a.window_of(30), 0);
        assert_eq!(a.window_of(31), 1);
        assert_eq!(a.first_key(1), 31);
        assert_eq!(a.last_key_of(1), 60);
    }

    #[test]
    fn complete_windows_emit_and_gaps_poison() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        // Window 0 complete on both tiers; window 1 has a one-frame gap
        // on the DB tier (seq 35 dropped); window 2 complete again.
        for seq in 0..90u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            if seq != 35 {
                a.on_sample(TierId::Db, wire(seq, false), &mut sink);
            }
        }
        a.on_bye(TierId::App, 89);
        a.on_bye(TierId::Db, 89);
        assert_eq!(emitted, vec![0, 2]);
        assert_eq!(a.poisoned_windows(), vec![1]);
        assert_eq!(a.pending_windows(), Vec::<i64>::new());
        assert_eq!(a.anomalies(), 0);
    }

    #[test]
    fn reconnect_mid_window_poisons_the_straddled_window() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        for seq in 0..90u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            if seq == 40 {
                // The APP agent reconnects between seq 39 and 40 — both
                // inside window 1 — losing nothing, but the session
                // boundary still quarantines the straddled window.
                a.on_session_start(TierId::App);
            }
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        a.on_bye(TierId::App, 89);
        a.on_bye(TierId::Db, 89);
        assert_eq!(emitted, vec![0, 2]);
        assert_eq!(a.poisoned_windows(), vec![1]);
    }

    #[test]
    fn reconnect_on_a_window_boundary_poisons_nothing() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        for seq in 0..60u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            if seq == 30 {
                // Clean break exactly between windows 0 and 1.
                a.on_session_start(TierId::Db);
            }
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert_eq!(emitted, vec![0, 1]);
        assert!(a.poisoned_windows().is_empty());
    }

    #[test]
    fn trailing_loss_is_detected_at_bye() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        // DB tier's last two frames (seqs 58, 59) never arrive; its Bye
        // announces last_seq 59, exposing the trailing gap.
        for seq in 0..60u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            a.on_sample(TierId::App, wire(seq, true), &mut sink);
            if seq < 58 {
                a.on_sample(TierId::Db, wire(seq, false), &mut sink);
            }
        }
        a.on_bye(TierId::App, 59);
        a.on_bye(TierId::Db, 59);
        assert_eq!(emitted, vec![0]);
        assert_eq!(a.poisoned_windows(), vec![1]);
    }

    #[test]
    fn leading_loss_poisons_the_first_window() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        // The APP tier's very first frame went missing.
        for seq in 0..60u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            if seq != 0 {
                a.on_sample(TierId::App, wire(seq, true), &mut sink);
            }
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert_eq!(emitted, vec![1]);
        assert_eq!(a.poisoned_windows(), vec![0]);
    }

    #[test]
    fn boundary_resume_replays_byte_identically() {
        // Uninterrupted run over two windows...
        let mut full = tiny_assembler(30);
        let mut full_decisions = Vec::new();
        full.on_session_start(TierId::App);
        full.on_session_start(TierId::Db);
        for seq in 0..60u64 {
            let mut sink = |w: i64, d: &OnlineDecision| {
                full_decisions.push((w, serde_json::to_string(d).unwrap()));
            };
            full.on_sample(TierId::App, wire(seq, true), &mut sink);
            full.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        // ...versus a crash exactly at the window-0 boundary.
        let mut first = tiny_assembler(30);
        let mut resumed_decisions = Vec::new();
        first.on_session_start(TierId::App);
        first.on_session_start(TierId::Db);
        for seq in 0..30u64 {
            let mut sink = |w: i64, d: &OnlineDecision| {
                resumed_decisions.push((w, serde_json::to_string(d).unwrap()));
            };
            first.on_sample(TierId::App, wire(seq, true), &mut sink);
            first.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        let state = first.export_state();
        let (seen, made) = first.monitor_counters();
        let meter = first.meter().clone();
        let mut second = Assembler::resume(meter, 1, &state, seen, made);
        // Restart means both agents reconnect.
        second.on_session_start(TierId::App);
        second.on_session_start(TierId::Db);
        for seq in 30..60u64 {
            let mut sink = |w: i64, d: &OnlineDecision| {
                resumed_decisions.push((w, serde_json::to_string(d).unwrap()));
            };
            second.on_sample(TierId::App, wire(seq, true), &mut sink);
            second.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert_eq!(full_decisions, resumed_decisions);
        assert!(second.poisoned_windows().is_empty());
        let (seen2, made2) = second.monitor_counters();
        assert_eq!((seen2, made2), (60, 2), "counters are cumulative");
    }

    #[test]
    fn mid_window_resume_quarantines_the_cut_window() {
        let mut first = tiny_assembler(30);
        let mut emitted = Vec::new();
        first.on_session_start(TierId::App);
        first.on_session_start(TierId::Db);
        // Crash mid-window-1 (after seq 44).
        for seq in 0..45u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            first.on_sample(TierId::App, wire(seq, true), &mut sink);
            first.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        let state = first.export_state();
        let (seen, made) = first.monitor_counters();
        let mut second = Assembler::resume(first.meter().clone(), 1, &state, seen, made);
        second.on_session_start(TierId::App);
        second.on_session_start(TierId::Db);
        for seq in 45..90u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            second.on_sample(TierId::App, wire(seq, true), &mut sink);
            second.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        second.on_bye(TierId::App, 89);
        second.on_bye(TierId::Db, 89);
        assert_eq!(emitted, vec![0, 2], "cut window 1 never emits");
        assert_eq!(second.poisoned_windows(), vec![1]);
    }

    #[test]
    fn app_sample_without_front_end_stats_poisons_not_panics() {
        let mut a = tiny_assembler(30);
        let mut emitted = Vec::new();
        a.on_session_start(TierId::App);
        a.on_session_start(TierId::Db);
        for seq in 0..30u64 {
            let mut sink = |w: i64, _: &OnlineDecision| emitted.push(w);
            // Protocol violation: app tier omits AppStats.
            a.on_sample(TierId::App, wire(seq, false), &mut sink);
            a.on_sample(TierId::Db, wire(seq, false), &mut sink);
        }
        assert!(emitted.is_empty());
        assert_eq!(a.poisoned_windows(), vec![0]);
        assert!(a.anomalies() > 0);
    }
}
